//! Service-shaped experiment: the trust-engine replay (E12).

use super::Scale;
use crate::population::ModelKind;
use crate::replay::{replay, ReplayConfig};
use crate::table::Table;

/// E12 — *Table R5*: the repo's first latency-shaped benchmark. Each
/// model serves a deterministic stream of interleaved query/feedback
/// events through the epoch-swapped [`crate::replay`] driver (paper
/// scale: 4 × 300 000 events over 1000 peers, windows of 4096);
/// reported are throughput and p50/p99/p999 per-query latency. The
/// count/epoch columns are bit-identical for any thread count; the
/// throughput and latency columns are wall-clock and machine-dependent
/// by design (like E2's runtime ladder).
pub fn e12_service(scale: Scale) -> Table {
    let mut table = Table::new(
        "E12: trust service replay (throughput + query latency percentiles)",
        &[
            "model",
            "events",
            "queries",
            "feedbacks",
            "epochs",
            "kev_s",
            "p50_us",
            "p99_us",
            "p999_us",
        ],
    );
    for model in ModelKind::ALL {
        let cfg = ReplayConfig {
            n_peers: scale.pick(60, 1000),
            events: scale.pick(4_000, 300_000),
            window: scale.pick(500, 4_096),
            model,
            ..ReplayConfig::default()
        };
        let r = replay(&cfg);
        table.push_row(vec![
            model.label().into(),
            (r.check.events as i64).into(),
            (r.check.queries as i64).into(),
            (r.check.feedbacks as i64).into(),
            (r.check.epochs as i64).into(),
            (r.throughput() / 1_000.0).into(),
            r.p50_us.into(),
            r.p99_us.into(),
            r.p999_us.into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    #[test]
    fn e12_covers_every_model_and_balances_counts() {
        let t = e12_service(Scale::Smoke);
        assert_eq!(t.rows().len(), ModelKind::ALL.len());
        for row in t.rows() {
            let events = num(&row[1]);
            assert_eq!(events, 4000.0, "{row:?}");
            assert_eq!(events, num(&row[2]) + num(&row[3]), "{row:?}");
            assert_eq!(num(&row[4]), 8.0, "4000 events / 500-event windows");
            assert!(num(&row[5]) > 0.0, "throughput must be positive: {row:?}");
            // Percentiles are ordered.
            assert!(num(&row[6]) <= num(&row[7]) && num(&row[7]) <= num(&row[8]));
        }
    }
}
