//! Differential suite for the dense-table trust models.
//!
//! The models moved from `HashMap<PeerId, …>` to population-sized `Vec`
//! storage with an amortized (dirty-flag cached) complaint median and a
//! batched `predict_row_into` read path. This suite pins the refactor to
//! reference implementations retaining the old map-backed semantics:
//!
//! * dense storage ≡ the map semantics on random operation streams with
//!   sparse ids and cold probes (including map-presence subtleties:
//!   ungraded witnesses, zero-weight complaint entries);
//! * `predict_row_into` ≡ per-subject `predict`, bit for bit, for all
//!   four models, for rows shorter and longer than the table;
//! * the cached median ≡ a from-scratch sort oracle under random
//!   mutate/predict interleavings.

use proptest::prelude::*;
use std::collections::HashMap;
use trustex_trust::baselines::{EwmaTrust, MeanTrust};
use trustex_trust::beta::{BetaConfig, BetaTrust};
use trustex_trust::complaints::{ComplaintConfig, ComplaintTrust};
use trustex_trust::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};

/// One step of a random model workout. Ids are drawn from a small range
/// plus occasional far-out ids, so dense tables see sparse growth.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    a: u32,
    b: u32,
    honest: bool,
    round: u64,
}

fn ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..4, 0u32..24, 0u32..24, any::<bool>(), 0u64..30, 0u8..16).prop_map(
            |(kind, a, b, honest, round, stretch)| Op {
                kind,
                // One in 16 draws lands on a far-out id to exercise
                // sparse growth and cold in-range slots.
                a: if stretch == 0 { a + 1000 } else { a },
                b,
                honest,
                round,
            },
        ),
        0..max_len,
    )
}

fn witness_report(witness: u32, subject: u32, honest: bool, round: u64) -> WitnessReport {
    WitnessReport {
        witness: PeerId(witness),
        subject: PeerId(subject),
        conduct: Conduct::from_honest(honest),
        round,
    }
}

/// Probe ids covering touched, cold-in-range and never-grown slots.
fn probes() -> impl Iterator<Item = PeerId> {
    (0u32..26).chain([100, 999, 1000, 1023, 5000]).map(PeerId)
}

fn assert_rows_match(model: &dyn TrustModel, table_hint: usize) {
    for len in [0usize, 1, table_hint / 2, table_hint, table_hint + 7] {
        let mut row = vec![TrustEstimate::UNKNOWN; len];
        model.predict_row_into(&mut row);
        for (i, got) in row.iter().enumerate() {
            let want = model.predict(PeerId(i as u32));
            assert_eq!(
                (want.p_honest, want.confidence),
                (got.p_honest, got.confidence),
                "{} row[{i}] of len {len} diverged from predict",
                model.name()
            );
        }
    }
}

// ---------------------------------------------------------------------
// Reference implementations: the old map-backed storage, verbatim
// semantics (with the late-evidence discount the dense models apply).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct RefEvidence {
    honest: f64,
    dishonest: f64,
    last_round: u64,
}

impl RefEvidence {
    fn observe(&mut self, conduct: Conduct, weight: f64, round: u64, forgetting: f64) {
        if forgetting < 1.0 && round < self.last_round {
            let staleness = forgetting.powf((self.last_round - round) as f64);
            let w = weight * staleness;
            match conduct {
                Conduct::Honest => self.honest += w,
                Conduct::Dishonest => self.dishonest += w,
            }
            return;
        }
        if forgetting < 1.0 && round > self.last_round {
            let f = forgetting.powf((round - self.last_round) as f64);
            self.honest *= f;
            self.dishonest *= f;
        }
        self.last_round = self.last_round.max(round);
        match conduct {
            Conduct::Honest => self.honest += weight,
            Conduct::Dishonest => self.dishonest += weight,
        }
    }
}

/// Map-backed beta model (the pre-dense storage layout).
struct RefBeta {
    config: BetaConfig,
    evidence: HashMap<PeerId, RefEvidence>,
    witness_evidence: HashMap<PeerId, RefEvidence>,
}

impl RefBeta {
    fn new(config: BetaConfig) -> RefBeta {
        RefBeta {
            config,
            evidence: HashMap::new(),
            witness_evidence: HashMap::new(),
        }
    }

    fn grade_witness(&mut self, witness: PeerId, corroborated: bool, round: u64) {
        let forgetting = self.config.forgetting;
        self.witness_evidence.entry(witness).or_default().observe(
            Conduct::from_honest(corroborated),
            1.0,
            round,
            forgetting,
        );
    }

    fn witness_reliability(&self, witness: PeerId) -> f64 {
        match self.witness_evidence.get(&witness) {
            None => self.config.witness_prior,
            Some(e) => {
                (self.config.prior_honest + e.honest)
                    / (self.config.prior_honest
                        + self.config.prior_dishonest
                        + e.honest
                        + e.dishonest)
            }
        }
    }

    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, round: u64) {
        let forgetting = self.config.forgetting;
        self.evidence
            .entry(subject)
            .or_default()
            .observe(conduct, 1.0, round, forgetting);
    }

    fn record_witness(&mut self, report: WitnessReport) {
        let reliability = self.witness_reliability(report.witness);
        let discount = (2.0 * reliability - 1.0).max(0.0);
        let weight = self.config.witness_weight * discount;
        if weight <= 0.0 {
            return;
        }
        let forgetting = self.config.forgetting;
        self.evidence.entry(report.subject).or_default().observe(
            report.conduct,
            weight,
            report.round,
            forgetting,
        );
    }

    fn posterior(&self, subject: PeerId) -> (f64, f64) {
        let e = self.evidence.get(&subject).copied().unwrap_or_default();
        (
            self.config.prior_honest + e.honest,
            self.config.prior_dishonest + e.dishonest,
        )
    }

    fn predict(&self, subject: PeerId) -> f64 {
        let (alpha, beta) = self.posterior(subject);
        alpha / (alpha + beta)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct RefTally {
    received: f64,
    filed: f64,
}

/// Map-backed complaint model with the sort-per-call median (the
/// pre-dense, pre-cache layout — also the from-scratch median oracle).
struct RefComplaints {
    config: ComplaintConfig,
    tallies: HashMap<PeerId, RefTally>,
    population: Option<usize>,
}

impl RefComplaints {
    fn new(config: ComplaintConfig) -> RefComplaints {
        RefComplaints {
            config,
            tallies: HashMap::new(),
            population: None,
        }
    }

    fn add_complaint(&mut self, by: PeerId, about: PeerId, weight: f64) {
        self.tallies.entry(about).or_default().received += weight;
        self.tallies.entry(by).or_default().filed += weight;
    }

    fn record_direct(&mut self, subject: PeerId, conduct: Conduct) {
        if !conduct.is_honest() {
            self.tallies.entry(subject).or_default().received += 1.0;
        }
    }

    fn record_witness(&mut self, report: WitnessReport) {
        if !report.conduct.is_honest() {
            self.add_complaint(report.witness, report.subject, self.config.witness_weight);
        }
    }

    fn complaint_product(&self, peer: PeerId) -> f64 {
        let t = self.tallies.get(&peer).copied().unwrap_or_default();
        (t.received + 1.0) * (t.filed + 1.0)
    }

    fn tally(&self, peer: PeerId) -> (f64, f64) {
        let t = self.tallies.get(&peer).copied().unwrap_or_default();
        (t.received, t.filed)
    }

    /// The old sort-per-call median — the from-scratch oracle the cached
    /// value must always equal.
    fn median_product(&self) -> f64 {
        if self.tallies.is_empty() {
            return 1.0;
        }
        let mut products: Vec<f64> = self
            .tallies
            .values()
            .map(|t| (t.received + 1.0) * (t.filed + 1.0))
            .collect();
        if let Some(n) = self.population {
            let silent = n.saturating_sub(products.len());
            products.extend(std::iter::repeat_n(1.0, silent));
        }
        products.sort_by(f64::total_cmp);
        products[products.len() / 2]
    }

    fn predict(&self, subject: PeerId) -> f64 {
        let product = self.complaint_product(subject);
        let median = self.median_product();
        let ratio = product / (self.config.outlier_factor * median);
        1.0 / (1.0 + ratio * ratio)
    }
}

// ---------------------------------------------------------------------
// The differential properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense beta storage reproduces the map-backed reference bit for
    /// bit — posterior, reliability and prediction — on random streams
    /// of direct records, witness reports and witness grades, for
    /// forgetting ∈ {1, 0.7}, with and without pre-sizing.
    #[test]
    fn beta_dense_matches_map_reference(ops in ops(120), forget in 0u8..2, presize in any::<bool>()) {
        let config = BetaConfig {
            forgetting: if forget == 0 { 1.0 } else { 0.7 },
            ..BetaConfig::default()
        };
        let mut dense = BetaTrust::with_config(config);
        if presize {
            dense.ensure_capacity(24);
        }
        let mut reference = RefBeta::new(config);
        for op in &ops {
            match op.kind {
                0 => {
                    let conduct = Conduct::from_honest(op.honest);
                    dense.record_direct(PeerId(op.a), conduct, op.round);
                    reference.record_direct(PeerId(op.a), conduct, op.round);
                }
                1 => {
                    let report = witness_report(op.a, op.b, op.honest, op.round);
                    dense.record_witness(report);
                    reference.record_witness(report);
                }
                _ => {
                    dense.grade_witness(PeerId(op.a), op.honest, op.round);
                    reference.grade_witness(PeerId(op.a), op.honest, op.round);
                }
            }
        }
        for p in probes() {
            prop_assert_eq!(dense.posterior(p), reference.posterior(p));
            prop_assert_eq!(dense.witness_reliability(p), reference.witness_reliability(p));
            prop_assert_eq!(dense.predict(p).p_honest, reference.predict(p));
        }
        assert_rows_match(&dense, 1024);
    }

    /// Dense complaint storage (tallies, products, median, predictions,
    /// assessments) reproduces the map-backed reference bit for bit —
    /// including the map-presence subtlety that zero-weight witness
    /// complaints create median entries — with and without a declared
    /// population.
    #[test]
    fn complaints_dense_matches_map_reference(
        ops in ops(120),
        population in 0usize..40,
        zero_weight in any::<bool>(),
    ) {
        let config = ComplaintConfig {
            witness_weight: if zero_weight { 0.0 } else { 0.5 },
            ..ComplaintConfig::default()
        };
        let mut dense = ComplaintTrust::with_config(config);
        let mut reference = RefComplaints::new(config);
        if population > 0 {
            dense.set_population(population);
            reference.population = Some(population);
        }
        for op in &ops {
            match op.kind {
                0 => {
                    let conduct = Conduct::from_honest(op.honest);
                    dense.record_direct(PeerId(op.a), conduct, op.round);
                    reference.record_direct(PeerId(op.a), conduct);
                }
                1 => {
                    let report = witness_report(op.a, op.b, op.honest, op.round);
                    dense.record_witness(report);
                    reference.record_witness(report);
                }
                _ => {
                    dense.file_complaint(PeerId(op.a), PeerId(op.b), op.round);
                    reference.add_complaint(PeerId(op.a), PeerId(op.b), 1.0);
                }
            }
        }
        prop_assert_eq!(dense.median_product(), reference.median_product());
        for p in probes() {
            prop_assert_eq!(dense.tally(p), reference.tally(p));
            prop_assert_eq!(dense.complaint_product(p), reference.complaint_product(p));
            prop_assert_eq!(dense.predict(p).p_honest, reference.predict(p));
        }
        assert_rows_match(&dense, 1024);
    }

    /// The cached median equals the from-scratch sort oracle after
    /// *every* prefix of a random mutate/read interleaving — reads both
    /// mid-stream (cache hits and misses) and at the end.
    #[test]
    fn cached_median_matches_fresh_oracle_under_interleaving(
        ops in ops(80),
        population in 0usize..30,
    ) {
        let mut dense = ComplaintTrust::new();
        let mut reference = RefComplaints::new(ComplaintConfig::default());
        if population > 0 {
            dense.set_population(population);
            reference.population = Some(population);
        }
        for op in &ops {
            match op.kind {
                0 => {
                    dense.file_complaint(PeerId(op.a), PeerId(op.b), op.round);
                    reference.add_complaint(PeerId(op.a), PeerId(op.b), 1.0);
                }
                1 => {
                    let conduct = Conduct::from_honest(op.honest);
                    dense.record_direct(PeerId(op.a), conduct, op.round);
                    reference.record_direct(PeerId(op.a), conduct);
                }
                2 => {
                    // Re-declaring the population also invalidates.
                    let n = (op.a as usize) % 30;
                    dense.set_population(n);
                    reference.population = Some(n);
                }
                _ => {
                    // Read-only batch: repeated reads must keep hitting
                    // the (already validated) cache.
                    let m = dense.median_product();
                    prop_assert_eq!(m, dense.median_product());
                }
            }
            prop_assert_eq!(dense.median_product(), reference.median_product());
        }
    }

    /// Dense mean/EWMA baselines match their map-backed references and
    /// their batched rows match per-subject predicts.
    #[test]
    fn baselines_dense_match_map_reference(ops in ops(120)) {
        let mut mean = MeanTrust::new();
        let mut ewma = EwmaTrust::default();
        let mut ref_counts: HashMap<PeerId, (u64, u64)> = HashMap::new();
        let mut ref_scores: HashMap<PeerId, (f64, u64)> = HashMap::new();
        let rate = ewma.rate();
        for op in &ops {
            let (subject, weight) = if op.kind == 0 {
                (PeerId(op.a), 1.0)
            } else {
                (PeerId(op.b), 0.5)
            };
            let conduct = Conduct::from_honest(op.honest);
            if op.kind == 0 {
                mean.record_direct(subject, conduct, op.round);
                ewma.record_direct(subject, conduct, op.round);
            } else {
                let report = witness_report(op.a, subject.0, op.honest, op.round);
                mean.record_witness(report);
                ewma.record_witness(report);
            }
            let c = ref_counts.entry(subject).or_insert((0, 0));
            if op.honest {
                c.0 += 1;
            }
            c.1 += 1;
            let (score, n) = ref_scores.entry(subject).or_insert((0.5, 0));
            let target = if op.honest { 1.0 } else { 0.0 };
            let lambda = rate * weight;
            *score = (1.0 - lambda) * *score + lambda * target;
            *n += 1;
        }
        for p in probes() {
            prop_assert_eq!(mean.counts(p), ref_counts.get(&p).copied().unwrap_or((0, 0)));
            match ref_scores.get(&p) {
                None => prop_assert_eq!(ewma.predict(p).p_honest, 0.5),
                Some((score, _)) => prop_assert_eq!(ewma.predict(p).p_honest, score.clamp(0.0, 1.0)),
            }
        }
        assert_rows_match(&mean, 1024);
        assert_rows_match(&ewma, 1024);
    }
}

/// Mean-model witness reports count at full weight, so the mean
/// reference above folds both op kinds into one path; this pins the
/// subtle difference — the EWMA witness path halves λ — explicitly.
#[test]
fn ewma_witness_weight_regression() {
    let mut m = EwmaTrust::new(0.4);
    m.record_witness(witness_report(9, 1, true, 0));
    // λ·w = 0.2: 0.8·0.5 + 0.2·1 = 0.6.
    assert!((m.predict(PeerId(1)).p_honest - 0.6).abs() < 1e-12);
    m.record_direct(PeerId(1), Conduct::Dishonest, 0);
    // λ = 0.4: 0.6·0.6 = 0.36.
    assert!((m.predict(PeerId(1)).p_honest - 0.36).abs() < 1e-12);
}

/// `predict_row_into`'s default trait implementation (the per-subject
/// loop) agrees with the models' overridden sweeps.
#[test]
fn default_row_impl_agrees_with_overrides() {
    struct ViaDefault<'a>(&'a dyn TrustModel);
    impl TrustModel for ViaDefault<'_> {
        fn record_direct(&mut self, _: PeerId, _: Conduct, _: u64) {
            unreachable!()
        }
        fn record_witness(&mut self, _: WitnessReport) {
            unreachable!()
        }
        fn predict(&self, subject: PeerId) -> TrustEstimate {
            self.0.predict(subject)
        }
        fn name(&self) -> &'static str {
            self.0.name()
        }
    }

    let mut beta = BetaTrust::new();
    let mut complaints = ComplaintTrust::with_population(12);
    let mut mean = MeanTrust::new();
    let mut ewma = EwmaTrust::default();
    for i in 0..10u32 {
        let conduct = Conduct::from_honest(i % 3 != 0);
        beta.record_direct(PeerId(i), conduct, i as u64);
        complaints.record_direct(PeerId(i), conduct, i as u64);
        mean.record_direct(PeerId(i), conduct, i as u64);
        ewma.record_direct(PeerId(i), conduct, i as u64);
    }
    let models: [&dyn TrustModel; 4] = [&beta, &complaints, &mean, &ewma];
    for model in models {
        let mut via_override = vec![TrustEstimate::UNKNOWN; 16];
        let mut via_default = vec![TrustEstimate::UNKNOWN; 16];
        model.predict_row_into(&mut via_override);
        ViaDefault(model).predict_row_into(&mut via_default);
        assert_eq!(via_override, via_default, "{}", model.name());
    }
}
