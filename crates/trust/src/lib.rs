//! # trustex-trust — trust learning models
//!
//! The "trust learning" module of the reference architecture in
//! *Trust-Aware Cooperation* (Figure 1): given records of past behaviour
//! (direct experiences and witness reports), compute probabilistic
//! predictions of future behaviour.
//!
//! Two principled models from the paper's own references, plus two
//! baselines for the accuracy experiments:
//!
//! * [`beta::BetaTrust`] — Bayesian beta-posterior reputation with
//!   witness-reliability discounting and optional forgetting
//!   (Mui, Mohtashemi & Halberstadt, HICSS 2002 — reference \[3\]).
//! * [`complaints::ComplaintTrust`] — complaint-product metric with the
//!   outlier decision rule (Aberer & Despotovic, CIKM 2001 —
//!   reference \[2\]).
//! * [`baselines::MeanTrust`], [`baselines::EwmaTrust`] — naive
//!   baselines.
//!
//! All models implement [`model::TrustModel`] and return
//! [`model::TrustEstimate`]s (probability + confidence); the
//! [`confidence`] module carries the Chernoff-bound machinery Mui et al.
//! use to quantify estimate reliability.
//!
//! ```
//! use trustex_trust::prelude::*;
//!
//! let mut model = BetaTrust::new();
//! model.record_direct(PeerId(1), Conduct::Honest, 0);
//! model.record_direct(PeerId(1), Conduct::Honest, 1);
//! let estimate = model.predict(PeerId(1));
//! assert!(estimate.p_honest > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod beta;
pub mod complaints;
pub mod confidence;
pub mod engine;
pub mod evidence_log;
pub mod model;
mod table;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::baselines::{EwmaTrust, MeanTrust};
    pub use crate::beta::{BetaConfig, BetaTrust};
    pub use crate::complaints::{Assessment, ComplaintConfig, ComplaintTrust};
    pub use crate::confidence::{chernoff_half_width, chernoff_sample_size};
    pub use crate::engine::{TrustEngine, TrustEvent, TrustSnapshot};
    pub use crate::evidence_log::{EvidenceLog, EvidenceRecord, LogReplay};
    pub use crate::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};
}
