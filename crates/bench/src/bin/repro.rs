//! Regenerates every table and figure of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p trustex-bench --bin repro            # all, paper scale
//! cargo run --release -p trustex-bench --bin repro -- --smoke # all, smoke scale
//! cargo run --release -p trustex-bench --bin repro -- e4 e6   # a subset
//! ```

use std::time::Instant;
use trustex_market::experiments::{find, Scale, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let scale = if smoke { Scale::Smoke } else { Scale::Paper };

    let selected: Vec<_> = if ids.is_empty() {
        ALL.iter().collect()
    } else {
        ids.iter()
            .map(|id| {
                find(id).unwrap_or_else(|| {
                    eprintln!("unknown experiment id: {id}");
                    eprintln!(
                        "known ids: {}",
                        ALL.iter().map(|e| e.id).collect::<Vec<_>>().join(", ")
                    );
                    std::process::exit(2);
                })
            })
            .collect()
    };

    println!(
        "# trustex experiment reproduction ({} scale)\n",
        if smoke { "smoke" } else { "paper" }
    );
    for experiment in selected {
        let start = Instant::now();
        let table = (experiment.run)(scale);
        let elapsed = start.elapsed();
        println!("[{}] {} ({elapsed:.2?})", experiment.id, experiment.title);
        println!("{}", table.render());
    }
}
