//! Reporting behaviours: how community members feed the reputation
//! system *after* an exchange.
//!
//! Honest reputation data is what makes trust-aware exchange work; lying
//! reporters are the primary attack on it. The market simulation calls
//! [`ReportingBehavior::report`] with the true observed conduct and
//! publishes whatever comes back.

use serde::{Deserialize, Serialize};
use trustex_netsim::rng::SimRng;
use trustex_trust::model::Conduct;

/// How an agent reports interaction outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReportingBehavior {
    /// Reports the truth.
    Truthful,
    /// Always reports the opposite of what happened.
    Liar,
    /// Reports truthfully about honest partners but also files
    /// unprovoked false complaints against random victims with the given
    /// per-round probability.
    Slanderer {
        /// Probability of filing a fake complaint each round.
        slander_prob: f64,
    },
    /// Never reports anything (free rider on the reputation system).
    Silent,
}

impl ReportingBehavior {
    /// Shapes a true observation into what the agent actually reports;
    /// `None` means no report is filed.
    pub fn report(self, truth: Conduct) -> Option<Conduct> {
        match self {
            ReportingBehavior::Truthful => Some(truth),
            ReportingBehavior::Liar => Some(truth.inverted()),
            ReportingBehavior::Slanderer { .. } => Some(truth),
            ReportingBehavior::Silent => None,
        }
    }

    /// Whether the agent files an unprovoked slander complaint this round.
    pub fn slanders_now(self, rng: &mut SimRng) -> bool {
        match self {
            ReportingBehavior::Slanderer { slander_prob } => rng.chance(slander_prob),
            _ => false,
        }
    }

    /// Whether reports from this behaviour are truthful.
    pub fn is_truthful(self) -> bool {
        matches!(
            self,
            ReportingBehavior::Truthful | ReportingBehavior::Slanderer { .. }
        )
    }

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ReportingBehavior::Truthful => "truthful",
            ReportingBehavior::Liar => "liar",
            ReportingBehavior::Slanderer { .. } => "slanderer",
            ReportingBehavior::Silent => "silent",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthful_passes_through() {
        assert_eq!(
            ReportingBehavior::Truthful.report(Conduct::Honest),
            Some(Conduct::Honest)
        );
        assert_eq!(
            ReportingBehavior::Truthful.report(Conduct::Dishonest),
            Some(Conduct::Dishonest)
        );
    }

    #[test]
    fn liar_inverts() {
        assert_eq!(
            ReportingBehavior::Liar.report(Conduct::Honest),
            Some(Conduct::Dishonest)
        );
        assert_eq!(
            ReportingBehavior::Liar.report(Conduct::Dishonest),
            Some(Conduct::Honest)
        );
    }

    #[test]
    fn silent_reports_nothing() {
        assert_eq!(ReportingBehavior::Silent.report(Conduct::Honest), None);
    }

    #[test]
    fn slanderer_reports_truth_but_slanders() {
        let s = ReportingBehavior::Slanderer { slander_prob: 1.0 };
        assert_eq!(s.report(Conduct::Dishonest), Some(Conduct::Dishonest));
        let mut rng = SimRng::new(1);
        assert!(s.slanders_now(&mut rng));
        assert!(!ReportingBehavior::Truthful.slanders_now(&mut rng));
    }

    #[test]
    fn slander_rate() {
        let s = ReportingBehavior::Slanderer { slander_prob: 0.25 };
        let mut rng = SimRng::new(2);
        let hits = (0..10_000).filter(|_| s.slanders_now(&mut rng)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "{rate}");
    }

    #[test]
    fn truthfulness_classification() {
        assert!(ReportingBehavior::Truthful.is_truthful());
        assert!(ReportingBehavior::Slanderer { slander_prob: 0.1 }.is_truthful());
        assert!(!ReportingBehavior::Liar.is_truthful());
        assert!(!ReportingBehavior::Silent.is_truthful());
    }

    #[test]
    fn labels() {
        assert_eq!(ReportingBehavior::Truthful.label(), "truthful");
        assert_eq!(ReportingBehavior::Liar.label(), "liar");
        assert_eq!(
            ReportingBehavior::Slanderer { slander_prob: 0.1 }.label(),
            "slanderer"
        );
        assert_eq!(ReportingBehavior::Silent.label(), "silent");
    }
}
