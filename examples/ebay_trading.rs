//! An eBay-style community: heavy-tailed auction deals, a mixed honest /
//! dishonest population, and the four scheduling strategies compared —
//! the scenario the paper's introduction motivates via Resnick &
//! Zeckhauser's eBay study.
//!
//! ```text
//! cargo run --release --example ebay_trading
//! ```

use trust_aware_cooperation::market::prelude::*;
use trust_aware_cooperation::market::sim::MarketConfig;
use trustex_agents::profile::PopulationMix;

fn main() {
    println!("eBay-style market: 100 traders, 30% dishonest (a quarter of them lie)\n");
    println!(
        "{:<16} {:>10} {:>12} {:>14} {:>14}",
        "strategy", "completed", "no-trade", "honest gain", "honest losses"
    );
    for strategy in Strategy::ALL {
        let cfg = MarketConfig {
            n_agents: 100,
            rounds: 20,
            sessions_per_round: 100,
            mix: PopulationMix::standard(0.3, 0.25),
            strategy,
            workload: Workload::Ebay,
            seed: 2002,
            ..MarketConfig::default()
        };
        let report = MarketSim::new(cfg).run();
        println!(
            "{:<16} {:>10} {:>12} {:>14.1} {:>14.1}",
            strategy.label(),
            report.completed,
            report.no_trade,
            report.honest_gain,
            report.honest_losses,
        );
    }
    println!(
        "\nThe trust-aware row is the paper's contribution: most of the welfare\n\
         of unsafe trading, a fraction of its losses, and no trades forgone\n\
         once trust is established."
    );
}
