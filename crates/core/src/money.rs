//! Fixed-point money.
//!
//! The safe-exchange conditions of the paper are *exact* inequalities over
//! sums of valuations. Floating point would make "is this sequence safe?"
//! answer differently depending on summation order, so all monetary
//! quantities in `trustex` are [`Money`]: a signed 64-bit count of
//! **micro-units** (10⁻⁶ of the major currency unit).
//!
//! `Money` is signed because temptations, exposure bounds and gains are
//! naturally signed quantities.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Number of micro-units per major unit.
pub const MICROS_PER_UNIT: i64 = 1_000_000;

/// A signed fixed-point amount of money (micro-unit resolution).
///
/// # Examples
///
/// ```
/// use trustex_core::money::Money;
/// let price = Money::from_units(12) + Money::from_micros(500_000);
/// assert_eq!(price.to_string(), "12.500000");
/// assert_eq!(price * 2, Money::from_units(25));
/// assert!(Money::ZERO < price);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Money(i64);

impl Money {
    /// Zero money.
    pub const ZERO: Money = Money(0);
    /// The largest representable amount.
    pub const MAX: Money = Money(i64::MAX);
    /// The smallest (most negative) representable amount.
    pub const MIN: Money = Money(i64::MIN);

    /// Creates an amount from whole major units.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows (|units| > ~9.2 × 10¹²).
    pub const fn from_units(units: i64) -> Money {
        Money(units * MICROS_PER_UNIT)
    }

    /// Creates an amount from raw micro-units.
    pub const fn from_micros(micros: i64) -> Money {
        Money(micros)
    }

    /// Converts a float amount of major units, rounding to the nearest
    /// micro-unit. Intended for test fixtures and workload generators.
    ///
    /// # Panics
    ///
    /// Panics if `units` is not finite or does not fit.
    pub fn from_f64(units: f64) -> Money {
        assert!(units.is_finite(), "money from non-finite float");
        let micros = (units * MICROS_PER_UNIT as f64).round();
        assert!(
            micros >= i64::MIN as f64 && micros <= i64::MAX as f64,
            "money overflow: {units}"
        );
        Money(micros as i64)
    }

    /// Raw micro-units.
    pub const fn as_micros(self) -> i64 {
        self.0
    }

    /// Value in major units as a float (lossy beyond 2⁵³ micro-units).
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_UNIT as f64
    }

    /// `true` when the amount is strictly positive.
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// `true` when the amount is strictly negative.
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// `true` when the amount is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Absolute value (saturating at `Money::MAX` for `Money::MIN`).
    pub const fn abs(self) -> Money {
        Money(self.0.saturating_abs())
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: Money) -> Option<Money> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Money(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` on overflow.
    pub const fn checked_sub(self, rhs: Money) -> Option<Money> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Money(v)),
            None => None,
        }
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Money) -> Money {
        Money(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Money) -> Money {
        Money(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a float factor, rounding to the nearest micro-unit.
    ///
    /// Used by the decision module to scale stakes by probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is NaN or the result overflows.
    pub fn scale(self, factor: f64) -> Money {
        assert!(!factor.is_nan(), "money scale by NaN");
        let v = self.0 as f64 * factor;
        assert!(
            v >= i64::MIN as f64 && v <= i64::MAX as f64,
            "money scale overflow"
        );
        Money(v.round() as i64)
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Money) -> Money {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two amounts.
    pub fn max(self, other: Money) -> Money {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Money, hi: Money) -> Money {
        assert!(lo <= hi, "Money::clamp: lo > hi");
        self.max(lo).min(hi)
    }
}

impl Add for Money {
    type Output = Money;
    /// # Panics
    ///
    /// Panics on overflow (always checked, also in release builds).
    fn add(self, rhs: Money) -> Money {
        self.checked_add(rhs).expect("money addition overflow")
    }
}

impl AddAssign for Money {
    fn add_assign(&mut self, rhs: Money) {
        *self = *self + rhs;
    }
}

impl Sub for Money {
    type Output = Money;
    /// # Panics
    ///
    /// Panics on overflow (always checked, also in release builds).
    fn sub(self, rhs: Money) -> Money {
        self.checked_sub(rhs).expect("money subtraction overflow")
    }
}

impl SubAssign for Money {
    fn sub_assign(&mut self, rhs: Money) {
        *self = *self - rhs;
    }
}

impl Neg for Money {
    type Output = Money;
    fn neg(self) -> Money {
        Money(self.0.checked_neg().expect("money negation overflow"))
    }
}

impl Mul<i64> for Money {
    type Output = Money;
    /// # Panics
    ///
    /// Panics on overflow.
    fn mul(self, rhs: i64) -> Money {
        Money(self.0.checked_mul(rhs).expect("money multiply overflow"))
    }
}

impl Div<i64> for Money {
    type Output = Money;
    /// Integer division on micro-units (truncates toward zero).
    ///
    /// # Panics
    ///
    /// Panics if `rhs == 0`.
    fn div(self, rhs: i64) -> Money {
        Money(self.0 / rhs)
    }
}

impl Sum for Money {
    fn sum<I: Iterator<Item = Money>>(iter: I) -> Money {
        iter.fold(Money::ZERO, |acc, m| acc + m)
    }
}

impl<'a> Sum<&'a Money> for Money {
    fn sum<I: Iterator<Item = &'a Money>>(iter: I) -> Money {
        iter.copied().sum()
    }
}

impl fmt::Display for Money {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { "-" } else { "" };
        let a = self.0.unsigned_abs();
        write!(
            f,
            "{sign}{}.{:06}",
            a / MICROS_PER_UNIT as u64,
            a % MICROS_PER_UNIT as u64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors() {
        assert_eq!(Money::from_units(3).as_micros(), 3_000_000);
        assert_eq!(Money::from_micros(42).as_micros(), 42);
        assert_eq!(Money::from_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(Money::from_f64(-0.000001).as_micros(), -1);
        assert_eq!(Money::ZERO, Money::default());
    }

    #[test]
    fn rounding_from_f64() {
        assert_eq!(Money::from_f64(0.0000014).as_micros(), 1);
        assert_eq!(Money::from_f64(0.0000016).as_micros(), 2);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn from_f64_rejects_nan() {
        Money::from_f64(f64::NAN);
    }

    #[test]
    fn arithmetic() {
        let a = Money::from_units(5);
        let b = Money::from_units(2);
        assert_eq!(a + b, Money::from_units(7));
        assert_eq!(a - b, Money::from_units(3));
        assert_eq!(-a, Money::from_units(-5));
        assert_eq!(a * 3, Money::from_units(15));
        assert_eq!(a / 2, Money::from_f64(2.5));
        let mut c = a;
        c += b;
        c -= Money::from_units(1);
        assert_eq!(c, Money::from_units(6));
    }

    #[test]
    fn sum_iterators() {
        let xs = [Money::from_units(1), Money::from_units(2)];
        let owned: Money = xs.iter().copied().sum();
        let referenced: Money = xs.iter().sum();
        assert_eq!(owned, Money::from_units(3));
        assert_eq!(referenced, Money::from_units(3));
    }

    #[test]
    fn predicates() {
        assert!(Money::from_micros(1).is_positive());
        assert!(Money::from_micros(-1).is_negative());
        assert!(Money::ZERO.is_zero());
        assert_eq!(Money::from_units(-4).abs(), Money::from_units(4));
    }

    #[test]
    fn min_max_clamp() {
        let a = Money::from_units(1);
        let b = Money::from_units(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Money::from_units(5).clamp(a, b), b);
        assert_eq!(Money::from_units(-5).clamp(a, b), a);
        assert_eq!(Money::from_f64(1.5).clamp(a, b), Money::from_f64(1.5));
    }

    #[test]
    #[should_panic(expected = "lo > hi")]
    fn clamp_invalid() {
        Money::ZERO.clamp(Money::from_units(2), Money::from_units(1));
    }

    #[test]
    fn checked_ops_at_extremes() {
        assert_eq!(Money::MAX.checked_add(Money::from_micros(1)), None);
        assert_eq!(Money::MIN.checked_sub(Money::from_micros(1)), None);
        assert_eq!(Money::MAX.saturating_add(Money::from_units(1)), Money::MAX);
        assert_eq!(Money::MIN.saturating_sub(Money::from_units(1)), Money::MIN);
    }

    #[test]
    #[should_panic(expected = "addition overflow")]
    fn add_overflow_panics() {
        let _ = Money::MAX + Money::from_micros(1);
    }

    #[test]
    fn scale_rounds() {
        assert_eq!(Money::from_units(10).scale(0.5), Money::from_units(5));
        assert_eq!(Money::from_micros(3).scale(0.5), Money::from_micros(2)); // 1.5 -> 2
        assert_eq!(Money::from_units(10).scale(0.0), Money::ZERO);
        assert_eq!(Money::from_units(-10).scale(0.5), Money::from_units(-5));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Money::from_units(3).to_string(), "3.000000");
        assert_eq!(Money::from_micros(-1_500_000).to_string(), "-1.500000");
        assert_eq!(Money::from_micros(25).to_string(), "0.000025");
        assert_eq!(Money::ZERO.to_string(), "0.000000");
    }

    #[test]
    fn as_f64_roundtrip() {
        let m = Money::from_micros(1_234_567);
        assert!((m.as_f64() - 1.234567).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn add_commutes(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
            let (x, y) = (Money::from_micros(a), Money::from_micros(b));
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn add_sub_inverse(a in -1_000_000_000i64..1_000_000_000, b in -1_000_000_000i64..1_000_000_000) {
            let (x, y) = (Money::from_micros(a), Money::from_micros(b));
            prop_assert_eq!(x + y - y, x);
        }

        #[test]
        fn ordering_consistent_with_micros(a in any::<i32>(), b in any::<i32>()) {
            let (x, y) = (Money::from_micros(a as i64), Money::from_micros(b as i64));
            prop_assert_eq!(x < y, a < b);
        }

        #[test]
        fn display_parse_roundtrip_sign(a in -1_000_000_000i64..1_000_000_000) {
            let m = Money::from_micros(a);
            let s = m.to_string();
            prop_assert_eq!(s.starts_with('-'), a < 0);
        }

        #[test]
        fn scale_by_one_is_identity(a in -1_000_000_000i64..1_000_000_000) {
            let m = Money::from_micros(a);
            prop_assert_eq!(m.scale(1.0), m);
        }
    }
}
