//! Baseline trust models: plain mean and EWMA.
//!
//! These are the strawmen for experiment E5: they use the same inputs as
//! the principled models but with naive statistics, quantifying how much
//! the Bayesian treatment (priors, discounting, witness reliability)
//! actually buys.

use crate::confidence::evidence_confidence;
use crate::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};
use crate::table::dense_slot;
use serde::{Deserialize, Serialize};
use trustex_persist::codec::{ByteReader, ByteWriter};
use trustex_persist::snapshot::Persistable;
use trustex_persist::PersistError;

/// Arithmetic-mean trust: `p = honest / total`, 0.5 when unseen.
/// Witness reports count exactly like direct experience (no
/// discounting) — deliberately gullible.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeanTrust {
    /// Dense `(honest, total)` counts indexed by [`PeerId::index`];
    /// `total == 0` marks a never-observed subject.
    counts: Vec<(u64, u64)>,
    /// Scorer-weighted aggregation: drop witness reports from reporters
    /// whose own observed mean sits below coin-flip. The crudest form of
    /// the defense the principled models apply continuously — still a
    /// mean, but no longer gullible to known cheaters.
    #[serde(default)]
    scorer_weighted: bool,
}

impl MeanTrust {
    /// Creates an empty model.
    pub fn new() -> MeanTrust {
        MeanTrust::default()
    }

    /// Creates a model pre-sized for a community of `n` peers.
    pub fn with_population(n: usize) -> MeanTrust {
        let mut model = MeanTrust::new();
        model.ensure_capacity(n);
        model
    }

    /// Pre-sizes the count table to hold peers `0..n` (never shrinks).
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.counts.len() < n {
            self.counts.resize(n, (0, 0));
        }
    }

    /// `(honest, total)` observation counts for a subject.
    pub fn counts(&self, subject: PeerId) -> (u64, u64) {
        self.counts.get(subject.index()).copied().unwrap_or((0, 0))
    }

    /// Enables (or disables) the scorer-weighted witness gate; returns
    /// the model for builder-style chaining.
    pub fn scorer_weighted(mut self, on: bool) -> MeanTrust {
        self.scorer_weighted = on;
        self
    }

    fn add(&mut self, subject: PeerId, conduct: Conduct) {
        let e = dense_slot(&mut self.counts, subject);
        if conduct.is_honest() {
            e.0 += 1;
        }
        e.1 += 1;
    }

    fn estimate_of(counts: (u64, u64)) -> TrustEstimate {
        match counts {
            (_, 0) => TrustEstimate::UNKNOWN,
            (h, t) => TrustEstimate::new(h as f64 / t as f64, evidence_confidence(t as f64)),
        }
    }
}

impl TrustModel for MeanTrust {
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, _round: u64) {
        self.add(subject, conduct);
    }

    fn record_witness(&mut self, report: WitnessReport) {
        // Gate, don't weight: integer counts leave no room for fractional
        // discounting, so a witness observed below coin-flip honesty is
        // ignored outright. Cold witnesses (0.5) pass.
        if self.scorer_weighted && self.predict(report.witness).p_honest < 0.5 {
            return;
        }
        self.add(report.subject, report.conduct);
    }

    fn predict(&self, subject: PeerId) -> TrustEstimate {
        Self::estimate_of(self.counts(subject))
    }

    fn predict_row_into(&self, out: &mut [TrustEstimate]) {
        let covered = self.counts.len().min(out.len());
        for (slot, counts) in out[..covered].iter_mut().zip(&self.counts) {
            *slot = Self::estimate_of(*counts);
        }
        out[covered..].fill(TrustEstimate::UNKNOWN);
    }

    fn forget_peer(&mut self, peer: PeerId) {
        if let Some(slot) = self.counts.get_mut(peer.index()) {
            *slot = (0, 0);
        }
    }

    fn name(&self) -> &'static str {
        "mean"
    }
}

/// Exponentially weighted moving average trust.
///
/// `p ← (1 − λ)·p + λ·outcome` per observation, starting from 0.5.
/// Reacts quickly to behaviour changes but never converges, and treats
/// witness reports at weight `λ/2`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EwmaTrust {
    /// Learning rate λ in `(0, 1]`.
    rate: f64,
    /// Dense `(score, observations)` slots indexed by
    /// [`PeerId::index`]; `observations == 0` marks a never-observed
    /// subject (the score slot idles at the 0.5 starting point).
    scores: Vec<(f64, u64)>,
    /// Scorer-weighted aggregation: drop witness reports from reporters
    /// whose own EWMA score sits below coin-flip (see
    /// [`MeanTrust`]'s gate; cold reporters at 0.5 pass).
    #[serde(default)]
    scorer_weighted: bool,
}

/// The dense-slot default for an untouched EWMA score: the 0.5 starting
/// point with zero observations.
const EWMA_COLD: (f64, u64) = (0.5, 0);

impl EwmaTrust {
    /// Creates a model with learning rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate ≤ 1`.
    pub fn new(rate: f64) -> EwmaTrust {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        EwmaTrust {
            rate,
            scores: Vec::new(),
            scorer_weighted: false,
        }
    }

    /// Enables (or disables) the scorer-weighted witness gate; returns
    /// the model for builder-style chaining.
    pub fn scorer_weighted(mut self, on: bool) -> EwmaTrust {
        self.scorer_weighted = on;
        self
    }

    /// Creates a model with learning rate `rate` pre-sized for a
    /// community of `n` peers.
    pub fn with_population(rate: f64, n: usize) -> EwmaTrust {
        let mut model = EwmaTrust::new(rate);
        model.ensure_capacity(n);
        model
    }

    /// Pre-sizes the score table to hold peers `0..n` (never shrinks).
    pub fn ensure_capacity(&mut self, n: usize) {
        if self.scores.len() < n {
            self.scores.resize(n, EWMA_COLD);
        }
    }

    /// The learning rate λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn update(&mut self, subject: PeerId, conduct: Conduct, weight: f64) {
        let index = subject.index();
        if index >= self.scores.len() {
            self.scores.resize(index + 1, EWMA_COLD);
        }
        let (score, n) = &mut self.scores[index];
        let target = if conduct.is_honest() { 1.0 } else { 0.0 };
        let lambda = self.rate * weight;
        *score = (1.0 - lambda) * *score + lambda * target;
        *n += 1;
    }

    fn estimate_of(slot: (f64, u64)) -> TrustEstimate {
        match slot {
            (_, 0) => TrustEstimate::UNKNOWN,
            (score, n) => TrustEstimate::new(score, evidence_confidence(n as f64)),
        }
    }
}

impl Default for EwmaTrust {
    /// λ = 0.2.
    fn default() -> Self {
        EwmaTrust::new(0.2)
    }
}

impl TrustModel for EwmaTrust {
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, _round: u64) {
        self.update(subject, conduct, 1.0);
    }

    fn record_witness(&mut self, report: WitnessReport) {
        if self.scorer_weighted && self.predict(report.witness).p_honest < 0.5 {
            return;
        }
        self.update(report.subject, report.conduct, 0.5);
    }

    fn predict(&self, subject: PeerId) -> TrustEstimate {
        Self::estimate_of(
            self.scores
                .get(subject.index())
                .copied()
                .unwrap_or(EWMA_COLD),
        )
    }

    fn predict_row_into(&self, out: &mut [TrustEstimate]) {
        let covered = self.scores.len().min(out.len());
        for (slot, score) in out[..covered].iter_mut().zip(&self.scores) {
            *slot = Self::estimate_of(*score);
        }
        out[covered..].fill(TrustEstimate::UNKNOWN);
    }

    fn forget_peer(&mut self, peer: PeerId) {
        if let Some(slot) = self.scores.get_mut(peer.index()) {
            *slot = EWMA_COLD;
        }
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

impl Persistable for MeanTrust {
    const TAG: [u8; 4] = *b"MEAN";

    fn encode_state(&self, w: &mut ByteWriter) {
        w.put_bool(self.scorer_weighted);
        w.put_len(self.counts.len());
        for &(honest, total) in &self.counts {
            w.put_u64(honest);
            w.put_u64(total);
        }
    }

    fn decode_state(r: &mut ByteReader) -> Result<Self, PersistError> {
        let scorer_weighted = r.take_bool()?;
        let n = r.take_len(16)?;
        let mut counts = Vec::with_capacity(n);
        for _ in 0..n {
            let honest = r.take_u64()?;
            let total = r.take_u64()?;
            if honest > total {
                return Err(PersistError::Invalid {
                    context: "mean-trust honest count exceeds total",
                });
            }
            counts.push((honest, total));
        }
        Ok(MeanTrust {
            counts,
            scorer_weighted,
        })
    }
}

impl Persistable for EwmaTrust {
    const TAG: [u8; 4] = *b"EWMA";

    fn encode_state(&self, w: &mut ByteWriter) {
        w.put_f64(self.rate);
        w.put_bool(self.scorer_weighted);
        w.put_len(self.scores.len());
        for &(score, n) in &self.scores {
            w.put_f64(score);
            w.put_u64(n);
        }
    }

    fn decode_state(r: &mut ByteReader) -> Result<Self, PersistError> {
        let rate = r.take_finite_f64()?;
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(PersistError::Invalid {
                context: "ewma rate must be in (0, 1]",
            });
        }
        let scorer_weighted = r.take_bool()?;
        let n = r.take_len(16)?;
        let mut scores = Vec::with_capacity(n);
        for _ in 0..n {
            let score = r.take_finite_f64()?;
            let observations = r.take_u64()?;
            // Scores are convex combinations of {0, 1} seeded at 0.5, so
            // anything outside [0, 1] — or a touched-looking cold slot —
            // is a crafted payload, not reachable state.
            if !(0.0..=1.0).contains(&score) {
                return Err(PersistError::Invalid {
                    context: "ewma score out of [0, 1]",
                });
            }
            if observations == 0 && score != EWMA_COLD.0 {
                return Err(PersistError::Invalid {
                    context: "ewma cold slot with non-default score",
                });
            }
            scores.push((score, observations));
        }
        Ok(EwmaTrust {
            rate,
            scores,
            scorer_weighted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_matches_fraction() {
        let mut m = MeanTrust::new();
        let p = PeerId(1);
        for i in 0..10 {
            m.record_direct(p, Conduct::from_honest(i % 5 != 0), 0);
        }
        // 8 honest of 10.
        assert!((m.predict(p).p_honest - 0.8).abs() < 1e-12);
        assert_eq!(m.counts(p), (8, 10));
    }

    #[test]
    fn mean_unknown_is_half() {
        let m = MeanTrust::new();
        assert_eq!(m.predict(PeerId(3)), TrustEstimate::UNKNOWN);
    }

    #[test]
    fn mean_is_gullible_to_witnesses() {
        let mut m = MeanTrust::new();
        let p = PeerId(1);
        m.record_direct(p, Conduct::Honest, 0);
        m.record_witness(WitnessReport {
            witness: PeerId(2),
            subject: p,
            conduct: Conduct::Dishonest,
            round: 0,
        });
        assert!((m.predict(p).p_honest - 0.5).abs() < 1e-12, "full weight");
    }

    #[test]
    fn ewma_tracks_recent_behaviour() {
        let mut m = EwmaTrust::new(0.3);
        let p = PeerId(1);
        for _ in 0..30 {
            m.record_direct(p, Conduct::Honest, 0);
        }
        let high = m.predict(p).p_honest;
        assert!(high > 0.95);
        for _ in 0..10 {
            m.record_direct(p, Conduct::Dishonest, 0);
        }
        let low = m.predict(p).p_honest;
        assert!(low < 0.1, "EWMA must react to the behaviour flip: {low}");
    }

    #[test]
    fn ewma_update_formula() {
        let mut m = EwmaTrust::new(0.5);
        let p = PeerId(1);
        m.record_direct(p, Conduct::Honest, 0);
        // 0.5·0.5 + 0.5·1 = 0.75.
        assert!((m.predict(p).p_honest - 0.75).abs() < 1e-12);
        m.record_direct(p, Conduct::Dishonest, 0);
        // 0.5·0.75 + 0.5·0 = 0.375.
        assert!((m.predict(p).p_honest - 0.375).abs() < 1e-12);
    }

    #[test]
    fn ewma_witness_half_weight() {
        let mut m = EwmaTrust::new(0.5);
        let p = PeerId(1);
        m.record_witness(WitnessReport {
            witness: PeerId(9),
            subject: p,
            conduct: Conduct::Honest,
            round: 0,
        });
        // λ·w = 0.25: 0.75·0.5 + 0.25·1 = 0.625.
        assert!((m.predict(p).p_honest - 0.625).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn ewma_invalid_rate() {
        EwmaTrust::new(0.0);
    }

    #[test]
    fn scorer_gate_blocks_known_cheaters_only() {
        let mut m = MeanTrust::new().scorer_weighted(true);
        let cheater = PeerId(9);
        let stranger = PeerId(8);
        let subject = PeerId(1);
        for _ in 0..4 {
            m.record_direct(cheater, Conduct::Dishonest, 0);
        }
        m.record_witness(WitnessReport {
            witness: cheater,
            subject,
            conduct: Conduct::Dishonest,
            round: 0,
        });
        assert_eq!(m.counts(subject), (0, 0), "cheater's report dropped");
        // A cold stranger (0.5) still passes the gate.
        m.record_witness(WitnessReport {
            witness: stranger,
            subject,
            conduct: Conduct::Honest,
            round: 0,
        });
        assert_eq!(m.counts(subject), (1, 1));

        let mut e = EwmaTrust::new(0.5).scorer_weighted(true);
        for _ in 0..4 {
            e.record_direct(cheater, Conduct::Dishonest, 0);
        }
        e.record_witness(WitnessReport {
            witness: cheater,
            subject,
            conduct: Conduct::Dishonest,
            round: 0,
        });
        assert_eq!(e.predict(subject), TrustEstimate::UNKNOWN);
        e.record_witness(WitnessReport {
            witness: stranger,
            subject,
            conduct: Conduct::Honest,
            round: 0,
        });
        assert!((e.predict(subject).p_honest - 0.625).abs() < 1e-12);
    }

    #[test]
    fn forget_peer_recolds_baselines() {
        let p = PeerId(2);
        let other = PeerId(4);
        let mut m = MeanTrust::with_population(8);
        m.record_direct(p, Conduct::Dishonest, 0);
        m.record_direct(other, Conduct::Honest, 0);
        m.forget_peer(p);
        assert_eq!(m.predict(p), TrustEstimate::UNKNOWN);
        assert_eq!(m.counts(other), (1, 1));
        m.forget_peer(PeerId(999));

        let mut e = EwmaTrust::with_population(0.3, 8);
        e.record_direct(p, Conduct::Dishonest, 0);
        let other_est = {
            e.record_direct(other, Conduct::Honest, 0);
            e.predict(other)
        };
        e.forget_peer(p);
        assert_eq!(e.predict(p), TrustEstimate::UNKNOWN);
        assert_eq!(e.predict(other), other_est);
        e.forget_peer(PeerId(999));
    }

    #[test]
    fn names_and_defaults() {
        assert_eq!(MeanTrust::new().name(), "mean");
        assert_eq!(EwmaTrust::default().name(), "ewma");
        assert!((EwmaTrust::default().rate() - 0.2).abs() < 1e-12);
    }
}
