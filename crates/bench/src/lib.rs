//! # trustex-bench — benchmarks and experiment reproduction
//!
//! This crate carries:
//!
//! * the `repro` binary — regenerates every table/figure of
//!   `EXPERIMENTS.md` (`cargo run --release -p trustex-bench --bin repro`),
//!   optionally a single experiment by id (`… -- e4`) and at smoke scale
//!   (`… -- --smoke`);
//! * one Criterion bench per experiment (`benches/e*.rs`) measuring the
//!   experiment's characteristic operation.
//!
//! The library portion only re-exports a tiny helper shared by the
//! benches.

pub use trustex_market::experiments::{find, Scale, ALL};
pub use trustex_market::table::Table;

/// Renders a table with a trailing blank line (the repro output format).
pub fn render_block(table: &Table) -> String {
    let mut s = table.render();
    s.push('\n');
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_block_appends_newline() {
        let t = Table::new("x", &["a"]);
        assert!(render_block(&t).ends_with("\n\n"));
    }
}
