//! The game-theoretic extension (the paper's stated future work):
//! solve a scheduled exchange as an extensive-form game and find the
//! minimal reputation stake that makes completion subgame-perfect.
//!
//! ```text
//! cargo run --release --example game_theory
//! ```

use trust_aware_cooperation::core::game::{analyze, min_supporting_stake, Stakes};
use trust_aware_cooperation::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.5), (0.5, 2.0)])?;
    let deal = Deal::with_split_surplus(goods)?;
    println!(
        "deal: {} items, price {}, total surplus {}",
        deal.goods().len(),
        deal.price(),
        deal.goods().total_surplus()
    );

    // Schedule under a modest trust-backed margin.
    let margins = SafetyMargins::symmetric(Money::from_f64(0.75))?;
    let plan = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)?;
    let seq = plan.sequence();
    println!("scheduled {} steps under margins {margins}\n", seq.len());

    // Sweep the symmetric outside stake and watch the equilibrium flip.
    println!(
        "{:>10}  {:>10}  {:>22}",
        "stake", "completes?", "first defection"
    );
    for stake_milli in [0i64, 250, 500, 750, 1_000, 1_500] {
        let stake = Money::from_micros(stake_milli * 1_000);
        let eq = analyze(&deal, seq, Stakes::symmetric(stake));
        let defection = match eq.first_defection {
            Some((role, step)) => format!("{role} at step {step}"),
            None => "—".to_owned(),
        };
        println!(
            "{:>10}  {:>10}  {:>22}",
            stake.to_string(),
            eq.completes,
            defection
        );
    }

    // The exact threshold, and its relationship to the margins.
    let stake = min_supporting_stake(&deal, seq).expect("verified sequences are supportable");
    println!(
        "\nminimal symmetric supporting stake: {stake} (granted margin each side: {})",
        margins.eps_supplier()
    );
    println!(
        "theorem: the stake never exceeds the margin — the scheduler's ε is exactly\n\
         the reputation collateral the exchange consumes."
    );

    // Zero stakes: backward induction unravels the whole trade.
    let eq = analyze(&deal, seq, Stakes::ZERO);
    println!(
        "\nwith zero stakes: completes = {}, equilibrium welfare = {} (deal surplus {})",
        eq.completes,
        eq.supplier_value + eq.consumer_value,
        deal.goods().total_surplus()
    );
    Ok(())
}
