//! Game-theoretic analysis of exchange sequences — the paper's stated
//! *future work* ("a game-theoretic extension of this work arising when
//! the partners are interested in maximizing their gains").
//!
//! A scheduled sequence induces a finite extensive-form game: at every
//! prefix state each party may *continue* or *defect*; defection ends
//! the game at the current state minus the defector's outside stake
//! (reputation value destroyed by defecting). [`analyze`] solves the
//! game exactly by backward induction and reports whether faithful
//! completion is the subgame-perfect outcome, and if not, where and by
//! whom the first rational defection happens.
//!
//! The connection to the scheduling theory: a sequence verified under
//! margins `(ε_s, ε_c)` keeps the consumer's temptation ≤ `ε_s` and the
//! supplier's ≤ `ε_c` at every state, so whenever each party's outside
//! stake covers the bound granted *against* it, backward induction
//! confirms completion — the theorem the equilibrium tests pin down.

use crate::deal::Deal;
use crate::money::Money;
use crate::sequence::{Action, ExchangeSequence};
use crate::state::{Progress, Role};
use serde::{Deserialize, Serialize};

/// Outside stakes: the value each party forfeits by defecting
/// (discounted future business, reputation, bond…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stakes {
    /// Value the supplier forfeits on defection.
    pub supplier: Money,
    /// Value the consumer forfeits on defection.
    pub consumer: Money,
}

impl Stakes {
    /// Both parties forfeit the same amount.
    pub const fn symmetric(stake: Money) -> Stakes {
        Stakes {
            supplier: stake,
            consumer: stake,
        }
    }

    /// Nobody has anything to lose — the isolated-exchange setting.
    pub const ZERO: Stakes = Stakes {
        supplier: Money::ZERO,
        consumer: Money::ZERO,
    };

    /// The stake of the given role.
    pub fn of(&self, role: Role) -> Money {
        match role {
            Role::Supplier => self.supplier,
            Role::Consumer => self.consumer,
        }
    }
}

/// The subgame-perfect outcome of an exchange game.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Equilibrium {
    /// Whether rational parties complete the exchange.
    pub completes: bool,
    /// The first rational defection (role, prefix index) when they don't.
    pub first_defection: Option<(Role, usize)>,
    /// The supplier's equilibrium payoff (stake forfeit included).
    pub supplier_value: Money,
    /// The consumer's equilibrium payoff (stake forfeit included).
    pub consumer_value: Money,
}

/// Solves the exchange game induced by `sequence` under `stakes` by
/// backward induction.
///
/// At each prefix state the tempted parties compare "defect now"
/// (current defection gain minus their stake) with the value of
/// continuing into the rest of the game (which already accounts for the
/// opponent's future rational defections). When both prefer to defect at
/// the same state, the one with the larger net advantage moves first
/// (ties: the party acting next moves last, mirroring the execution
/// engine's consult order).
///
/// # Panics
///
/// Panics if the sequence contains structurally invalid actions (replay
/// a verified sequence).
pub fn analyze(deal: &Deal, sequence: &ExchangeSequence, stakes: Stakes) -> Equilibrium {
    // Forward pass: record per-prefix defection gains for both parties.
    let n = sequence.len();
    let mut defect_gain_s = Vec::with_capacity(n + 1);
    let mut defect_gain_c = Vec::with_capacity(n + 1);
    let mut progress = Progress::new(deal);
    defect_gain_s.push(progress.view().supplier_defect_gain());
    defect_gain_c.push(progress.view().consumer_defect_gain());
    for action in sequence.actions() {
        match action {
            Action::Deliver(id) => progress.deliver(*id).expect("valid sequence"),
            Action::Pay(amount) => progress.pay(*amount).expect("valid sequence"),
        }
        defect_gain_s.push(progress.view().supplier_defect_gain());
        defect_gain_c.push(progress.view().consumer_defect_gain());
    }
    // Terminal values: the realized end-state gains (for a complete
    // sequence these are the deal's profit/surplus; for a partial one,
    // whatever the final state yields — walking away at the very end
    // costs no stake because the exchange is over).
    let mut value_s = defect_gain_s[n];
    let mut value_c = defect_gain_c[n];
    let mut completes = true;
    let mut first_defection: Option<(Role, usize)> = None;

    // Backward pass over prefix states n-1 .. 0.
    for i in (0..n).rev() {
        let net_s = (defect_gain_s[i] - stakes.supplier) - value_s;
        let net_c = (defect_gain_c[i] - stakes.consumer) - value_c;
        let defector = if net_s.is_positive() && net_c.is_positive() {
            // Both want out: the larger net advantage moves first.
            if net_s >= net_c {
                Some(Role::Supplier)
            } else {
                Some(Role::Consumer)
            }
        } else if net_s.is_positive() {
            Some(Role::Supplier)
        } else if net_c.is_positive() {
            Some(Role::Consumer)
        } else {
            None
        };
        if let Some(role) = defector {
            completes = false;
            first_defection = Some((role, i));
            value_s = defect_gain_s[i]
                - match role {
                    Role::Supplier => stakes.supplier,
                    Role::Consumer => Money::ZERO,
                };
            value_c = defect_gain_c[i]
                - match role {
                    Role::Consumer => stakes.consumer,
                    Role::Supplier => Money::ZERO,
                };
        }
        // No defection: values flow through unchanged.
    }

    Equilibrium {
        completes,
        first_defection,
        supplier_value: value_s,
        consumer_value: value_c,
    }
}

/// The smallest symmetric stake (to micro-unit precision) under which
/// rational parties complete `sequence`, found by bisection. Returns
/// `None` if even a stake equal to the whole deal value does not induce
/// completion (cannot happen for verified sequences).
pub fn min_supporting_stake(deal: &Deal, sequence: &ExchangeSequence) -> Option<Money> {
    let hi_cap = deal.goods().total_consumer_value() + deal.price();
    if !analyze(deal, sequence, Stakes::symmetric(hi_cap)).completes {
        return None;
    }
    let (mut lo, mut hi) = (0i64, hi_cap.as_micros());
    if analyze(deal, sequence, Stakes::ZERO).completes {
        return Some(Money::ZERO);
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if analyze(deal, sequence, Stakes::symmetric(Money::from_micros(mid))).completes {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(Money::from_micros(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goods::Goods;
    use crate::policy::PaymentPolicy;
    use crate::safety::SafetyMargins;
    use crate::scheduler::{schedule, Algorithm};

    fn deal() -> Deal {
        let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap();
        Deal::new(goods, Money::from_units(9)).unwrap()
    }

    fn planned(deal: &Deal, eps_units: f64) -> ExchangeSequence {
        let margins = SafetyMargins::symmetric(Money::from_f64(eps_units)).unwrap();
        schedule(deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)
            .unwrap()
            .into_sequence()
    }

    #[test]
    fn stakes_covering_margins_support_completion() {
        let d = deal();
        let seq = planned(&d, 1.0); // ε_s = ε_c = 1
        let eq = analyze(&d, &seq, Stakes::symmetric(Money::from_units(1)));
        assert!(eq.completes, "{eq:?}");
        assert_eq!(eq.first_defection, None);
        assert_eq!(eq.supplier_value, d.supplier_profit());
        assert_eq!(eq.consumer_value, d.consumer_surplus());
    }

    #[test]
    fn zero_stakes_unravel_to_no_trade() {
        let d = deal();
        let seq = planned(&d, 1.0);
        let eq = analyze(&d, &seq, Stakes::ZERO);
        assert!(!eq.completes);
        let (_, step) = eq.first_defection.unwrap();
        assert!(step < seq.len());
        // Classic unravelling: anticipating the eventual defection, the
        // parties never create the surplus — equilibrium welfare is
        // strictly below the deal's.
        assert!(
            eq.supplier_value + eq.consumer_value < d.goods().total_surplus(),
            "{eq:?}"
        );
        // Nobody is forced below their walk-away-now payoff at the
        // defection point, so values can't both be negative.
        assert!(!eq.supplier_value.is_negative() || !eq.consumer_value.is_negative());
    }

    #[test]
    fn completion_monotone_in_stakes() {
        let d = deal();
        let seq = planned(&d, 2.0);
        let mut completed_before = false;
        for stake_units in 0..6 {
            let eq = analyze(&d, &seq, Stakes::symmetric(Money::from_units(stake_units)));
            if completed_before {
                assert!(eq.completes, "completion must be monotone in stakes");
            }
            completed_before = eq.completes;
        }
        assert!(completed_before, "large stakes must support completion");
    }

    #[test]
    fn min_supporting_stake_matches_exposure() {
        let d = deal();
        let seq = planned(&d, 1.0);
        let stake = min_supporting_stake(&d, &seq).unwrap();
        // The verified sequence caps both temptations at ε = 1, so a
        // symmetric stake of 1 suffices and nothing much smaller can.
        assert!(stake <= Money::from_units(1));
        assert!(stake > Money::from_f64(0.4), "stake {stake}");
        // Exactness: completes at `stake`, fails just below.
        assert!(analyze(&d, &seq, Stakes::symmetric(stake)).completes);
        let below = stake - Money::from_micros(1);
        assert!(!analyze(&d, &seq, Stakes::symmetric(below)).completes);
    }

    #[test]
    fn asymmetric_stakes_identify_the_weak_side() {
        let d = deal();
        let seq = planned(&d, 1.0);
        // Supplier fully bonded, consumer not: the consumer defects.
        let eq = analyze(
            &d,
            &seq,
            Stakes {
                supplier: Money::from_units(100),
                consumer: Money::ZERO,
            },
        );
        assert!(!eq.completes);
        assert_eq!(eq.first_defection.unwrap().0, Role::Consumer);
        // And symmetrically.
        let eq = analyze(
            &d,
            &seq,
            Stakes {
                supplier: Money::ZERO,
                consumer: Money::from_units(100),
            },
        );
        // With the lazy policy the consumer is the exposed one; the
        // supplier's temptation may never turn positive, in which case
        // completion survives.
        if !eq.completes {
            assert_eq!(eq.first_defection.unwrap().0, Role::Supplier);
        }
    }

    #[test]
    fn pay_first_with_zero_stakes_never_starts() {
        // Backward induction on a prepay-everything schedule: the
        // consumer foresees the supplier absconding after the payment
        // and rationally refuses to begin — the game unravels at step 0.
        let d = deal();
        let ids: Vec<_> = d.goods().ids().collect();
        let mut actions = vec![Action::Pay(d.price())];
        actions.extend(ids.iter().map(|id| Action::Deliver(*id)));
        let seq = ExchangeSequence::new(actions);
        let eq = analyze(&d, &seq, Stakes::ZERO);
        assert!(!eq.completes);
        assert_eq!(eq.first_defection, Some((Role::Consumer, 0)));
        assert_eq!(eq.supplier_value, Money::ZERO);
        assert_eq!(eq.consumer_value, Money::ZERO);
    }

    #[test]
    fn pay_first_with_committed_consumer_shows_the_abscond() {
        // Force the consumer to stay in (huge stake): now the supplier's
        // post-payment temptation materialises as the actual defection.
        let d = deal();
        let ids: Vec<_> = d.goods().ids().collect();
        let mut actions = vec![Action::Pay(d.price())];
        actions.extend(ids.iter().map(|id| Action::Deliver(*id)));
        let seq = ExchangeSequence::new(actions);
        let eq = analyze(
            &d,
            &seq,
            Stakes {
                supplier: Money::ZERO,
                consumer: Money::from_units(100),
            },
        );
        assert!(!eq.completes);
        assert_eq!(eq.first_defection, Some((Role::Supplier, 1)));
        assert_eq!(eq.supplier_value, d.price());
        assert_eq!(eq.consumer_value, -d.price());
    }

    #[test]
    fn min_stake_zero_for_zero_cost_goods() {
        let goods = Goods::from_f64_pairs(&[(0.0, 3.0)]).unwrap();
        let d = Deal::new(goods, Money::from_units(2)).unwrap();
        let seq = schedule(
            &d,
            SafetyMargins::fully_safe(),
            PaymentPolicy::Lazy,
            Algorithm::Greedy,
        )
        .unwrap()
        .into_sequence();
        assert_eq!(min_supporting_stake(&d, &seq), Some(Money::ZERO));
    }

    #[test]
    fn stakes_helpers() {
        let s = Stakes::symmetric(Money::from_units(2));
        assert_eq!(s.of(Role::Supplier), Money::from_units(2));
        assert_eq!(s.of(Role::Consumer), Money::from_units(2));
        assert_eq!(Stakes::ZERO.supplier, Money::ZERO);
    }
}
