//! # trust-aware-cooperation — umbrella crate
//!
//! A complete Rust reproduction of *Trust-Aware Cooperation* (Despotovic,
//! Aberer, Hauswirth; ICDCS 2002): trust-aware scheduling of
//! goods-for-money exchanges, together with every substrate the paper's
//! reference architecture requires (reputation management over P-Grid,
//! Bayesian and complaint-based trust learning, risk-aware decision
//! making, behavioural agent models and an end-to-end market simulator).
//!
//! This crate re-exports the workspace members and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//! Start with [`core`]'s documentation for the theory, or run:
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release -p trustex-bench --bin repro -- --smoke
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use trustex_agents as agents;
pub use trustex_core as core;
pub use trustex_decision as decision;
pub use trustex_market as market;
pub use trustex_netsim as netsim;
pub use trustex_persist as persist;
pub use trustex_reputation as reputation;
pub use trustex_trust as trust;
