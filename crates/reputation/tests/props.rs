//! Property tests for the P-Grid substrate and replica resolution.

use proptest::prelude::*;
use trustex_netsim::net::{NetConfig, Network};
use trustex_netsim::rng::SimRng;
use trustex_reputation::pgrid::{PGrid, PGridConfig};
use trustex_reputation::record::{key_for_peer, BitPath, Complaint, Key};
use trustex_reputation::resolve::{majority_vote, median_count};
use trustex_trust::model::PeerId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routing either lands on a peer responsible for the key or fails
    /// cleanly — it never "answers" from a non-responsible peer.
    #[test]
    fn routing_lands_on_responsible_peers(seed in 0u64..500, key_raw in any::<u32>()) {
        let mut rng = SimRng::new(seed);
        let cfg = PGridConfig { max_depth: 4, ..PGridConfig::default() };
        let grid = PGrid::build(48, cfg, &mut rng);
        let mut net = Network::new(NetConfig::default());
        let key = Key::from_bits(key_raw & 0xFFFF);
        let origin = rng.index(grid.len());
        if let Some((peer, hops, _)) = grid.route(origin, key, None, &mut net, &mut rng) {
            prop_assert!(grid.path(peer).is_prefix_of_key(key, cfg.key_bits));
            prop_assert!(hops <= 4 * cfg.key_bits as u32 + 8);
        }
    }

    /// Every key has at least one responsible peer (the trie partitions
    /// the key space) in a mature grid.
    #[test]
    fn responsibility_covers_key_space(seed in 0u64..100, key_raw in any::<u32>()) {
        let mut rng = SimRng::new(seed);
        let cfg = PGridConfig { max_depth: 3, ..PGridConfig::default() };
        let grid = PGrid::build(64, cfg, &mut rng);
        let key = Key::from_bits(key_raw & 0xFFFF);
        prop_assert!(
            !grid.responsible_peers(key).is_empty(),
            "no peer responsible for key {key_raw:#x}"
        );
    }

    /// Inserted complaints are retrievable via a fresh query from any
    /// origin (no churn, no liars).
    #[test]
    fn insert_query_roundtrip(seed in 0u64..200, subject_raw in 0u32..1000, origin_sel in any::<u16>()) {
        let mut rng = SimRng::new(seed);
        let cfg = PGridConfig { max_depth: 3, ..PGridConfig::default() };
        let mut grid = PGrid::build(48, cfg, &mut rng);
        let mut net = Network::new(NetConfig::default());
        let subject = PeerId(subject_raw);
        let key = key_for_peer(subject, cfg.key_bits);
        let item = Complaint { by: PeerId(1), about: subject, round: 0 };
        let receipt = grid.insert(0, key, item, None, &mut net, &mut rng);
        prop_assume!(receipt.replicas_reached > 0);
        let origin = origin_sel as usize % grid.len();
        let result = grid.query(origin, key, None, &mut net, &mut rng);
        prop_assume!(result.is_resolved());
        prop_assert!(
            result.answers.iter().any(|(_, items)| items.contains(&item)),
            "inserted complaint lost"
        );
    }

    /// BitPath prefix/extension algebra.
    #[test]
    fn bitpath_child_extends_prefix(bits in any::<u32>(), len in 0u8..16, extra in any::<bool>()) {
        let p = BitPath::from_bits(bits, len);
        let c = p.child(extra);
        prop_assert_eq!(c.len(), len + 1);
        prop_assert_eq!(c.common_prefix(p), len);
        prop_assert_eq!(c.bit(len), extra);
    }

    /// A path is a prefix of a key iff all its bits match the key's.
    #[test]
    fn bitpath_prefix_definition(bits in any::<u32>(), len in 0u8..16, key_raw in any::<u32>()) {
        let p = BitPath::from_bits(bits, len);
        let key = Key::from_bits(key_raw & 0xFFFF);
        let manual = (0..len).all(|i| p.bit(i) == key.bit(i, 16));
        prop_assert_eq!(p.is_prefix_of_key(key, 16), manual);
    }

    /// Majority vote output is a subset of the union of the answers and
    /// contains everything unanimous.
    #[test]
    fn majority_vote_sandwich(
        present in prop::collection::vec(any::<bool>(), 3..=7),
        extra_idx in any::<u8>(),
    ) {
        let item = Complaint { by: PeerId(1), about: PeerId(2), round: 0 };
        let rare = Complaint { by: PeerId(3), about: PeerId(2), round: 1 };
        let answers: Vec<Vec<Complaint>> = present
            .iter()
            .enumerate()
            .map(|(i, &has)| {
                let mut v = Vec::new();
                if has { v.push(item); }
                if i == (extra_idx as usize % present.len()) { v.push(rare); }
                v
            })
            .collect();
        let accepted = majority_vote(&answers);
        let yes = present.iter().filter(|b| **b).count();
        let quorum = present.len() / 2 + 1;
        prop_assert_eq!(accepted.contains(&item), yes >= quorum);
        // The rare complaint appears in exactly one answer: never accepted
        // for 3+ replicas.
        prop_assert!(!accepted.contains(&rare));
    }

    /// Median count is bounded by min/max and invariant to outlier
    /// inflation of a single replica.
    #[test]
    fn median_count_robust(mut counts in prop::collection::vec(0u64..100, 3..=9)) {
        let m = median_count(&counts);
        let lo = *counts.iter().min().unwrap();
        let hi = *counts.iter().max().unwrap();
        prop_assert!(m >= lo && m <= hi);
        // Corrupt one replica upwards: the (lower) median never decreases
        // and moves at most to the next order statistic.
        let original = median_count(&counts);
        counts[0] = u64::MAX;
        let corrupted = median_count(&counts);
        prop_assert!(corrupted >= original);
    }
}
