//! The experiment suite: every table and figure of `EXPERIMENTS.md`.
//!
//! The paper itself publishes **no** tables or experimental figures (it
//! is a 2-page paper whose only figure is the architecture diagram), so
//! this suite operationalises its *claims*; `DESIGN.md` §4 maps each
//! experiment to the claim it validates. Every experiment is a
//! deterministic function of [`Scale`] and returns a renderable
//! [`Table`].

use crate::table::Table;

mod adversary;
mod chaos;
mod community;
mod exchange;
mod pipeline;
mod service;
pub(crate) mod storage;

pub use adversary::e11_adversaries;
pub use chaos::e14_chaos;
pub use community::{e4_strategies, e5_trust_accuracy, e8_marketplace, e9_convergence};
pub use exchange::{e1_existence, e2_scaling, e3_relaxation, e7_exposure};
pub use pipeline::e0_pipeline;
pub use service::e12_service;
pub use storage::{e10_ablations, e6_pgrid};

pub use crate::persistence::e13_persistence;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Seconds-scale sizes for tests and CI.
    Smoke,
    /// The sizes reported in `EXPERIMENTS.md`.
    Paper,
}

impl Scale {
    /// Picks the smoke or paper value.
    pub fn pick<T>(self, smoke: T, paper: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Paper => paper,
        }
    }
}

/// An experiment id, name and runner — the registry the `repro` binary
/// iterates.
pub struct Experiment {
    /// Short id, e.g. `"e1"`.
    pub id: &'static str,
    /// Human-readable title.
    pub title: &'static str,
    /// The runner.
    pub run: fn(Scale) -> Table,
}

/// All experiments in presentation order.
pub const ALL: [Experiment; 15] = [
    Experiment {
        id: "e0",
        title: "Figure R1: reference-model pipeline end-to-end",
        run: e0_pipeline,
    },
    Experiment {
        id: "e1",
        title: "Table R1: safe-sequence existence and required margins",
        run: e1_existence,
    },
    Experiment {
        id: "e2",
        title: "Figure R2: scheduler runtime scaling",
        run: e2_scaling,
    },
    Experiment {
        id: "e3",
        title: "Figure R3: trust-aware relaxation enables trades",
        run: e3_relaxation,
    },
    Experiment {
        id: "e4",
        title: "Figure R4: strategy welfare vs dishonest fraction",
        run: e4_strategies,
    },
    Experiment {
        id: "e5",
        title: "Table R2: trust model accuracy under lying witnesses",
        run: e5_trust_accuracy,
    },
    Experiment {
        id: "e6",
        title: "Figure R5: P-Grid routing cost and churn resilience",
        run: e6_pgrid,
    },
    Experiment {
        id: "e7",
        title: "Figure R6: exposure bounds vs trust and risk attitude",
        run: e7_exposure,
    },
    Experiment {
        id: "e8",
        title: "Table R3: end-to-end marketplace comparison",
        run: e8_marketplace,
    },
    Experiment {
        id: "e9",
        title: "Figure R7: trust convergence over rounds",
        run: e9_convergence,
    },
    Experiment {
        id: "e10",
        title: "Table R4: ablations (policy, gossip, replication, risk)",
        run: e10_ablations,
    },
    Experiment {
        id: "e11",
        title: "Table R6: adversary-zoo robustness frontier",
        run: e11_adversaries,
    },
    Experiment {
        id: "e12",
        title: "Table R5: trust service replay (throughput + latency percentiles)",
        run: e12_service,
    },
    Experiment {
        id: "e13",
        title: "Table R7: durable evidence (warm start, crash recovery, log replay)",
        run: e13_persistence,
    },
    Experiment {
        id: "e14",
        title: "Table R8: message-level chaos (loss/partition × retry + degradation)",
        run: e14_chaos,
    },
];

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        assert_eq!(ALL.len(), 15);
        let mut ids: Vec<&str> = ALL.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 15);
    }

    #[test]
    fn find_works() {
        assert!(find("e1").is_some());
        assert!(
            find("e11").is_some(),
            "the adversary frontier is registered"
        );
        assert!(find("e12").is_some());
        assert!(find("e13").is_some(), "durable evidence is registered");
        assert!(find("e14").is_some(), "the chaos sweep is registered");
        assert_eq!(find("e0").unwrap().id, "e0");
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Smoke.pick(1, 2), 1);
        assert_eq!(Scale::Paper.pick(1, 2), 2);
    }

    /// Every experiment runs at smoke scale and yields a non-empty table.
    /// (The heavyweight content is exercised per-experiment in the
    /// sibling modules; this is the registry-level smoke check.)
    #[test]
    fn all_experiments_smoke() {
        for e in &ALL {
            let t = (e.run)(Scale::Smoke);
            assert!(!t.rows().is_empty(), "{} produced no rows", e.id);
            assert!(!t.columns().is_empty(), "{} has no columns", e.id);
        }
    }
}
