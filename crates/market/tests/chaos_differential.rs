//! The chaos differential suite.
//!
//! Two contracts pin the fault plane's blast radius:
//!
//! 1. **Zero-fault transparency** — a configured-but-zero plane must be
//!    a perfect no-op: every experiment table the plane can touch (e6's
//!    P-Grid overlay, e8's marketplace, e11's adversary frontier)
//!    replays bit-for-bit against the seed's committed behaviour, and a
//!    zero-plane market run equals the plane-absent run field-for-field.
//! 2. **Faulty determinism** — a *faulty* plane is still a pure function
//!    of `(seed, src, dst, seq)`: chaos runs and the e14 table are
//!    bit-identical for threads ∈ {1, 2, 8}.

use std::sync::Mutex;
use trustex_market::prelude::*;
use trustex_netsim::backoff::RetryPolicy;
use trustex_netsim::fault::{FaultConfig, FaultPlane, PartitionSpec};
use trustex_netsim::net::{NetConfig, Network};
use trustex_netsim::pool::set_default_threads;
use trustex_netsim::rng::SimRng;
use trustex_netsim::time::SimTime;
use trustex_reputation::pgrid::{PGrid, PGridConfig};
use trustex_reputation::record::key_for_peer;
use trustex_trust::model::PeerId;

/// The worker-pool default is process-global: tests that vary it must
/// serialise on this lock or they race each other's thread counts.
static THREAD_DEFAULT: Mutex<()> = Mutex::new(());

fn zero_chaos(retry: bool, degrade: bool) -> ChaosConfig {
    ChaosConfig {
        fault: FaultConfig::default(),
        retry,
        degrade,
    }
}

fn faulty_chaos() -> ChaosConfig {
    ChaosConfig {
        fault: FaultConfig {
            loss: 0.05,
            duplicate: 0.02,
            extra_delay_max_us: 0,
            partition: PartitionSpec::Bisect {
                heal_at: SimTime::from_millis(40),
            },
        },
        retry: true,
        degrade: true,
    }
}

fn base_cfg(model: ModelKind, seed: u64) -> MarketConfig {
    MarketConfig {
        n_agents: 50,
        rounds: 8,
        sessions_per_round: 50,
        workload: Workload::FileSharing,
        model,
        seed,
        ..MarketConfig::default()
    }
}

/// A zero-fault plane (with retry and degradation armed in every
/// combination) produces a bit-identical `MarketReport` to the
/// plane-absent run, for all four trust models.
#[test]
fn zero_plane_market_runs_equal_plane_absent_runs() {
    for model in ModelKind::ALL {
        let clean = MarketSim::new(base_cfg(model, 0xD1FF)).run();
        for (retry, degrade) in [(false, false), (true, false), (false, true), (true, true)] {
            let chaotic = MarketSim::new(MarketConfig {
                chaos: Some(zero_chaos(retry, degrade)),
                ..base_cfg(model, 0xD1FF)
            })
            .run();
            assert_eq!(
                chaotic, clean,
                "{model:?} zero-plane (retry={retry}, degrade={degrade}) diverged"
            );
        }
    }
}

/// The committed experiment tables the fault plane could perturb — e6
/// (P-Grid overlay), e8 (marketplace) and e11 (adversary frontier) —
/// replay bit-for-bit at threads {1, 2, 8}. With no chaos configured
/// anywhere in those experiments, this is the differential that proves
/// the fault-plane plumbing (send_link, route_at, transmit_report)
/// changed nothing about today's tables.
#[test]
fn e6_e8_e11_tables_replay_bit_for_bit_across_thread_counts() {
    let _guard = THREAD_DEFAULT.lock().unwrap_or_else(|e| e.into_inner());
    for id in ["e6", "e8", "e11"] {
        let experiment = find_experiment(id).expect("registered");
        set_default_threads(1);
        let reference = (experiment.run)(Scale::Smoke);
        for threads in [2usize, 8] {
            set_default_threads(threads);
            assert_eq!(
                (experiment.run)(Scale::Smoke),
                reference,
                "{id} diverged at threads={threads}"
            );
        }
    }
    set_default_threads(0);
}

/// A *faulty* chaos run — loss, duplication, a live partition, retry and
/// degradation all active — is bit-identical for threads ∈ {1, 2, 8}:
/// fault fates are pure hashes, so sharding the execute phase cannot
/// shift a single delivery.
#[test]
fn faulty_market_runs_identical_across_thread_counts() {
    for model in ModelKind::ALL {
        let make = |threads: usize| {
            MarketSim::new(MarketConfig {
                chaos: Some(faulty_chaos()),
                threads,
                ..base_cfg(model, 0xC405)
            })
            .run()
        };
        let reference = make(1);
        assert!(
            reference.witness_delivery_rate() < 1.0,
            "{model:?}: the faulty plane must actually drop something"
        );
        for threads in [2, 8] {
            assert_eq!(
                make(threads),
                reference,
                "{model:?} chaos run diverged at threads={threads}"
            );
        }
    }
}

/// The full e14 table is bit-identical for threads ∈ {1, 2, 8}.
#[test]
fn e14_table_identical_across_thread_counts() {
    let _guard = THREAD_DEFAULT.lock().unwrap_or_else(|e| e.into_inner());
    let e14 = find_experiment("e14").expect("e14 registered");
    set_default_threads(1);
    let reference = (e14.run)(Scale::Smoke);
    for threads in [2usize, 8] {
        set_default_threads(threads);
        assert_eq!(
            (e14.run)(Scale::Smoke),
            reference,
            "e14 diverged at threads={threads}"
        );
    }
    set_default_threads(0);
}

/// Overlay differential: routing queries through a zero plane with the
/// retry machinery armed returns hop-for-hop, answer-for-answer the
/// same results as the plain plane-less query path, and consumes an
/// identical RNG stream.
#[test]
fn zero_plane_grid_queries_with_retry_equal_plain_queries() {
    let n = 64;
    let mut rng = SimRng::new(0x6B1D);
    let grid = PGrid::build(n, PGridConfig::for_population(n, 4), &mut rng);
    let policy = RetryPolicy::standard();

    let mut plain_rng = SimRng::new(0xABCD);
    let mut chaos_rng = SimRng::new(0xABCD);
    let mut plain_net = Network::new(NetConfig::default());
    let mut chaos_net =
        Network::with_fault_plane(NetConfig::default(), FaultPlane::transparent(0x2E80));
    for q in 0..200u64 {
        let subject = PeerId(plain_rng.index(n) as u32);
        let origin = plain_rng.index(n);
        assert_eq!(PeerId(chaos_rng.index(n) as u32), subject);
        assert_eq!(chaos_rng.index(n), origin);
        let key = key_for_peer(subject, grid.config().key_bits);
        let start = SimTime::from_micros(q * 250);
        let plain = grid.query(origin, key, None, &mut plain_net, &mut plain_rng);
        let chaotic = grid.query_at(
            origin,
            key,
            None,
            &mut chaos_net,
            &mut chaos_rng,
            start,
            Some(&policy),
        );
        assert_eq!(chaotic.hops, plain.hops, "query {q}: hop count diverged");
        assert_eq!(
            chaotic.answers, plain.answers,
            "query {q}: answers diverged"
        );
    }
    // Same messages sent, nothing dropped, and the RNG streams stayed
    // in lockstep — the plane consumed zero randomness.
    assert_eq!(chaos_net.total_sent(), plain_net.total_sent());
    assert_eq!(chaos_net.total_dropped(), 0);
    assert_eq!(chaos_rng.next_u64(), plain_rng.next_u64());
}
