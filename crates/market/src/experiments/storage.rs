//! Storage-substrate experiments: P-Grid routing/churn (E6) and the
//! ablation matrix (E10).

use super::Scale;
use crate::population::ModelKind;
use crate::sim::{MarketConfig, MarketSim};
use crate::strategy::Strategy;
use crate::table::Table;
use crate::workload::Workload;
use trustex_agents::profile::PopulationMix;
use trustex_core::policy::PaymentPolicy;
use trustex_netsim::churn::{ChurnModel, ChurnTimeline};
use trustex_netsim::rng::SimRng;
use trustex_netsim::time::SimTime;
use trustex_reputation::pgrid::{PGrid, PGridConfig};
use trustex_reputation::record::key_for_peer;
use trustex_trust::model::PeerId;

/// One P-Grid measurement: mean hops, messages per query, success rate.
fn measure_grid(
    n: usize,
    replication: usize,
    down_fraction: f64,
    queries: usize,
    seed: u64,
) -> (f64, f64, f64) {
    let mut rng = SimRng::new(seed);
    let cfg = PGridConfig::for_population(n, replication);
    let mut grid = PGrid::build(n, cfg, &mut rng);
    let mut net = trustex_netsim::net::Network::new(trustex_netsim::net::NetConfig::default());

    // Seed some complaints so queries return data.
    for i in 0..(n / 2) {
        let about = PeerId((i % n) as u32);
        let key = key_for_peer(about, cfg.key_bits);
        let item = trustex_reputation::record::Complaint {
            by: PeerId(((i + 1) % n) as u32),
            about,
            round: 0,
        };
        grid.insert(i % n, key, item, None, &mut net, &mut rng);
    }

    // Availability mask via a churn timeline snapshot.
    let alive: Option<Vec<bool>> = if down_fraction > 0.0 {
        let model = ChurnModel::new(1.0 - down_fraction, down_fraction);
        let tl = ChurnTimeline::generate(n, SimTime::from_secs(10), model, &mut rng);
        Some((0..n).map(|i| tl.is_up(i, SimTime::from_secs(5))).collect())
    } else {
        None
    };

    net.reset_counters();
    let mut hops_sum = 0u64;
    let mut success = 0usize;
    for q in 0..queries {
        let subject = PeerId(rng.index(n) as u32);
        let key = key_for_peer(subject, cfg.key_bits);
        let origin = loop {
            let o = rng.index(n);
            if alive.as_deref().is_none_or(|a| a[o]) {
                break o;
            }
        };
        let _ = q;
        let result = grid.query(origin, key, alive.as_deref(), &mut net, &mut rng);
        if result.is_resolved() {
            success += 1;
            hops_sum += result.hops as u64;
        }
    }
    let msgs_per_query = net.total_sent() as f64 / queries as f64;
    let mean_hops = hops_sum as f64 / success.max(1) as f64;
    (mean_hops, msgs_per_query, success as f64 / queries as f64)
}

/// E6 — *Figure R5*: reputation lookups cost `O(log N)` messages and
/// survive churn thanks to replication — the property the paper's
/// reference \[2\] rests on.
pub fn e6_pgrid(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(&[32, 128][..], &[16, 64, 256, 1024, 4096][..]);
    let queries = scale.pick(100, 400);
    let mut table = Table::new(
        "E6: P-Grid lookup cost and availability (replication 4)",
        &[
            "n_peers",
            "mean_hops",
            "msgs/query",
            "success@0%down",
            "success@10%down",
            "success@30%down",
        ],
    );
    for &n in sizes {
        let (hops, msgs, s0) = measure_grid(n, 4, 0.0, queries, 0xE6);
        let (_, _, s10) = measure_grid(n, 4, 0.10, queries, 0xE6 + 1);
        let (_, _, s30) = measure_grid(n, 4, 0.30, queries, 0xE6 + 2);
        table.push_row(vec![
            n.into(),
            hops.into(),
            msgs.into(),
            s0.into(),
            s10.into(),
            s30.into(),
        ]);
    }
    table
}

/// E10 — *Table R4*: ablations of the design choices `DESIGN.md` calls
/// out: payment policy, gossip fan-out, storage replication and risk
/// attitude.
pub fn e10_ablations(scale: Scale) -> Table {
    let mut table = Table::new(
        "E10: ablations (metric depends on row group)",
        &["group", "variant", "metric", "value"],
    );

    // (a) Payment policy: realized honest losses per session in a 30%
    // dishonest market (exposure splits differently).
    for policy in PaymentPolicy::ALL {
        let cfg = MarketConfig {
            n_agents: scale.pick(40, 120),
            rounds: scale.pick(6, 25),
            sessions_per_round: scale.pick(40, 120),
            payment_policy: policy,
            strategy: Strategy::TrustAware,
            workload: Workload::FileSharing,
            seed: 0xA0,
            ..MarketConfig::default()
        };
        let r = MarketSim::new(cfg).run();
        table.push_row(vec![
            "payment-policy".into(),
            policy.label().into(),
            "honest_losses/sess".into(),
            (r.honest_losses / r.sessions.max(1) as f64).into(),
        ]);
    }

    // (b) Gossip fan-out: final MAE with 0 / 3 / 10 witnesses.
    for gossip in [0usize, 3, 10] {
        let cfg = MarketConfig {
            n_agents: scale.pick(40, 120),
            rounds: scale.pick(6, 25),
            sessions_per_round: scale.pick(40, 120),
            gossip_witnesses: gossip,
            model: ModelKind::Mean,
            mix: PopulationMix::standard(0.3, 0.0),
            strategy: Strategy::UnsafeDeliverFirst,
            seed: 0xA1,
            ..MarketConfig::default()
        };
        let r = MarketSim::new(cfg).run();
        table.push_row(vec![
            "gossip".into(),
            format!("k={gossip}").into(),
            "final_mae".into(),
            r.final_mae.into(),
        ]);
    }

    // (c) Replication factor: query success under 30% down peers.
    for repl in [1usize, 2, 4, 8] {
        let n = scale.pick(64, 512);
        let (_, _, success) = measure_grid(n, repl, 0.30, scale.pick(100, 300), 0xA2);
        table.push_row(vec![
            "replication".into(),
            format!("r={repl}").into(),
            "success@30%down".into(),
            success.into(),
        ]);
    }

    // (d) Trust model under heavy lying (50% of dishonest agents lie).
    for model in [ModelKind::Beta, ModelKind::Mean] {
        let cfg = MarketConfig {
            n_agents: scale.pick(40, 120),
            rounds: scale.pick(6, 25),
            sessions_per_round: scale.pick(40, 120),
            model,
            mix: PopulationMix::standard(0.3, 0.5),
            strategy: Strategy::UnsafeDeliverFirst,
            seed: 0xA3,
            ..MarketConfig::default()
        };
        let r = MarketSim::new(cfg).run();
        table.push_row(vec![
            "witness-discounting".into(),
            model.label().into(),
            "final_mae".into(),
            r.final_mae.into(),
        ]);
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    #[test]
    fn e6_hops_scale_logarithmically() {
        let t = e6_pgrid(Scale::Smoke);
        let rows = t.rows();
        // Mean hops should be ≈ trie depth: ~log2(n/4), certainly < 10.
        for row in rows {
            assert!(num(&row[1]) < 10.0, "{row:?}");
            assert!(num(&row[3]) > 0.9, "no-churn success: {row:?}");
        }
        // Hops grow sub-linearly: quadrupling n adds ≲ 2.5 hops.
        if rows.len() >= 2 {
            let delta = num(&rows[rows.len() - 1][1]) - num(&rows[0][1]);
            assert!(delta <= 2.5, "hops growth {delta}");
        }
    }

    #[test]
    fn e6_churn_degrades_gracefully() {
        let t = e6_pgrid(Scale::Smoke);
        for row in t.rows() {
            assert!(num(&row[4]) >= num(&row[5]) - 0.05, "{row:?}");
            assert!(num(&row[5]) > 0.5, "30% churn should retain >50%: {row:?}");
        }
    }

    #[test]
    fn e10_replication_improves_availability() {
        let t = e10_ablations(Scale::Smoke);
        let repl: Vec<f64> = t
            .rows()
            .iter()
            .filter(|r| matches!(&r[0], Cell::Text(s) if s == "replication"))
            .map(|r| num(&r[3]))
            .collect();
        assert_eq!(repl.len(), 4);
        assert!(repl[3] > repl[0], "r=8 must beat r=1 under churn: {repl:?}");
    }

    #[test]
    fn e10_has_all_groups() {
        let t = e10_ablations(Scale::Smoke);
        for group in [
            "payment-policy",
            "gossip",
            "replication",
            "witness-discounting",
        ] {
            assert!(
                t.rows()
                    .iter()
                    .any(|r| matches!(&r[0], Cell::Text(s) if s == group)),
                "missing group {group}"
            );
        }
    }
}
