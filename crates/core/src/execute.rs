//! Execution of a scheduled exchange between two (possibly dishonest)
//! parties.
//!
//! The schedulers guarantee that *rational* parties never profit from
//! defecting by more than the tolerated ε. Whether a real counterparty
//! defects anyway is a behavioural question — the execution engine
//! replays a sequence and consults a [`DefectionOracle`] for each party
//! after every atomic action (every state is a defection opportunity for
//! whichever party is currently tempted).
//!
//! The engine reports both parties' realized gains, which the market
//! simulation aggregates into the welfare metrics of experiments E4/E8.

use crate::deal::Deal;
use crate::money::Money;
use crate::sequence::{Action, ExchangeSequence};
use crate::state::{Progress, Role, StateView};
use serde::{Deserialize, Serialize};

/// Decides whether a party walks away at the current state.
///
/// Implementations receive the party's current *temptation* (defection
/// gain minus completion gain, positive when defecting is profitable
/// right now), full state access, and the schedule's remaining actions —
/// both parties know the agreed sequence, so a rational agent can reason
/// about where its temptation peaks. The oracle is consulted once per
/// party per state.
pub trait DefectionOracle {
    /// Returns `true` if the party defects at this state.
    ///
    /// `upcoming` holds the actions not yet executed (empty at the final
    /// consultation).
    fn defects(
        &mut self,
        role: Role,
        temptation: Money,
        view: &StateView<'_>,
        upcoming: &[Action],
    ) -> bool;
}

/// The largest temptation the given role will experience from the
/// current state onwards if the remaining schedule executes faithfully
/// (including the current state itself).
///
/// This is the quantity a schedule-aware rational agent compares its
/// outside stake against: defecting before the peak leaves money on the
/// table.
pub fn max_future_temptation(role: Role, view: &StateView<'_>, upcoming: &[Action]) -> Money {
    let deal = view.deal();
    let mut paid = view.state().paid();
    let mut delivered_value = view.state().delivered_value();
    let mut delivered_cost = view.state().delivered_cost();
    let temptation = |paid: Money, dv: Money, dc: Money| -> Money {
        match role {
            // (Vc(D) − m) − (Vc(G) − P)
            Role::Consumer => (dv - paid) - deal.consumer_surplus(),
            // (m − Vs(D)) − (P − Vs(G))
            Role::Supplier => (paid - dc) - deal.supplier_profit(),
        }
    };
    let mut best = temptation(paid, delivered_value, delivered_cost);
    for action in upcoming {
        match action {
            Action::Pay(amount) => paid += *amount,
            Action::Deliver(id) => {
                let item = deal.goods().item(*id);
                delivered_value += item.consumer_value();
                delivered_cost += item.supplier_cost();
            }
        }
        best = best.max(temptation(paid, delivered_value, delivered_cost));
    }
    best
}

/// Never defects — the honest party.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Honest;

impl DefectionOracle for Honest {
    fn defects(
        &mut self,
        _role: Role,
        _temptation: Money,
        _view: &StateView<'_>,
        _upcoming: &[Action],
    ) -> bool {
        false
    }
}

/// The *rational opportunist*: knows the schedule, waits for the state
/// where its temptation peaks, and defects there if the peak exceeds its
/// outside (reputation) stake. A stake of zero grabs the largest
/// achievable haul; a stake at or above the tolerated margin never
/// defects on a verified sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RationalDefector {
    /// Defect when the (peak) temptation exceeds this stake.
    pub stake: Money,
}

impl DefectionOracle for RationalDefector {
    fn defects(
        &mut self,
        role: Role,
        temptation: Money,
        view: &StateView<'_>,
        upcoming: &[Action],
    ) -> bool {
        if temptation <= self.stake {
            return false;
        }
        // Worth defecting eventually — but only strike at the peak.
        temptation >= max_future_temptation(role, view, upcoming)
    }
}

/// Adapts a closure into an oracle.
#[derive(Debug)]
pub struct OracleFn<F>(pub F);

impl<F> DefectionOracle for OracleFn<F>
where
    F: FnMut(Role, Money, &StateView<'_>, &[Action]) -> bool,
{
    fn defects(
        &mut self,
        role: Role,
        temptation: Money,
        view: &StateView<'_>,
        upcoming: &[Action],
    ) -> bool {
        (self.0)(role, temptation, view, upcoming)
    }
}

/// Terminal status of an executed exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExchangeStatus {
    /// Every action executed; goods fully delivered and price fully paid.
    Completed,
    /// The named party walked away before the action at `at_step` (0-based
    /// index into the sequence; equal to the step count executed so far).
    Aborted {
        /// Who defected.
        by: Role,
        /// Number of actions that had been executed when the defection
        /// happened.
        at_step: usize,
    },
}

impl ExchangeStatus {
    /// Whether the exchange ran to completion.
    pub fn is_completed(self) -> bool {
        matches!(self, ExchangeStatus::Completed)
    }
}

/// The realized result of executing an exchange sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExchangeOutcome {
    /// How the exchange ended.
    pub status: ExchangeStatus,
    /// Supplier's realized gain: money received minus cost of goods
    /// actually delivered.
    pub supplier_gain: Money,
    /// Consumer's realized gain: value of goods received minus money paid.
    pub consumer_gain: Money,
    /// Items delivered before termination.
    pub items_delivered: usize,
    /// Money paid before termination.
    pub amount_paid: Money,
}

impl ExchangeOutcome {
    /// Realized gain of the given role.
    pub fn gain(&self, role: Role) -> Money {
        match role {
            Role::Supplier => self.supplier_gain,
            Role::Consumer => self.consumer_gain,
        }
    }

    /// Realized social welfare: the sum of both gains.
    pub fn welfare(&self) -> Money {
        self.supplier_gain + self.consumer_gain
    }
}

/// Replays `sequence` over `deal`, consulting the oracles after every
/// state (including the initial one). Defection checks happen *before*
/// each action: the party consulted first at each state is the one whose
/// temptation is larger (deterministic tie-break: the actor of the next
/// action moves last, so the waiting party gets the first chance — in a
/// real exchange the tempted party simply stops responding).
///
/// The sequence need not be verified or even safe; the engine executes
/// whatever it is given (tests use this for failure injection).
///
/// # Panics
///
/// Panics if the sequence contains structurally invalid actions (unknown
/// item, double delivery, non-positive payment) — execute verified
/// sequences, or sequences from [`crate::scheduler::schedule`].
pub fn execute(
    deal: &Deal,
    sequence: &ExchangeSequence,
    supplier: &mut dyn DefectionOracle,
    consumer: &mut dyn DefectionOracle,
) -> ExchangeOutcome {
    let mut progress = Progress::new(deal);

    let actions = sequence.actions();
    for (step, action) in actions.iter().enumerate() {
        // Defection opportunity before each action.
        if let Some(by) = consult(&progress, supplier, consumer, &actions[step..]) {
            return outcome_at(&progress, ExchangeStatus::Aborted { by, at_step: step });
        }
        match action {
            Action::Deliver(id) => progress
                .deliver(*id)
                .expect("invalid delivery in executed sequence"),
            Action::Pay(amount) => progress
                .pay(*amount)
                .expect("invalid payment in executed sequence"),
        }
    }
    // Final defection opportunity is moot: at completion both temptations
    // are zero, but consult anyway for oracles with non-rational logic.
    if let Some(by) = consult(&progress, supplier, consumer, &[]) {
        return outcome_at(
            &progress,
            ExchangeStatus::Aborted {
                by,
                at_step: sequence.len(),
            },
        );
    }
    outcome_at(&progress, ExchangeStatus::Completed)
}

/// Asks both oracles in temptation order; returns the defector, if any.
fn consult(
    progress: &Progress<'_>,
    supplier: &mut dyn DefectionOracle,
    consumer: &mut dyn DefectionOracle,
    upcoming: &[Action],
) -> Option<Role> {
    let view = progress.view();
    let ts = view.supplier_temptation();
    let tc = view.consumer_temptation();
    let first_supplier = ts >= tc;
    let order: [Role; 2] = if first_supplier {
        [Role::Supplier, Role::Consumer]
    } else {
        [Role::Consumer, Role::Supplier]
    };
    for role in order {
        let (oracle, temptation): (&mut dyn DefectionOracle, Money) = match role {
            Role::Supplier => (supplier, ts),
            Role::Consumer => (consumer, tc),
        };
        if oracle.defects(role, temptation, &view, upcoming) {
            return Some(role);
        }
    }
    None
}

fn outcome_at(progress: &Progress<'_>, status: ExchangeStatus) -> ExchangeOutcome {
    let view = progress.view();
    ExchangeOutcome {
        status,
        supplier_gain: view.supplier_defect_gain(),
        consumer_gain: view.consumer_defect_gain(),
        items_delivered: progress.state().delivered_count(),
        amount_paid: progress.state().paid(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goods::Goods;
    use crate::policy::PaymentPolicy;
    use crate::safety::SafetyMargins;
    use crate::scheduler::{schedule, Algorithm};

    fn deal() -> Deal {
        let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap();
        Deal::new(goods, Money::from_units(9)).unwrap()
    }

    fn scheduled(deal: &Deal, eps: f64) -> ExchangeSequence {
        let m = SafetyMargins::symmetric(Money::from_f64(eps / 2.0)).unwrap();
        schedule(deal, m, PaymentPolicy::Lazy, Algorithm::Greedy)
            .unwrap()
            .into_sequence()
    }

    #[test]
    fn honest_parties_complete() {
        let d = deal();
        let seq = scheduled(&d, 4.0);
        let out = execute(&d, &seq, &mut Honest, &mut Honest);
        assert!(out.status.is_completed());
        assert_eq!(out.supplier_gain, d.supplier_profit());
        assert_eq!(out.consumer_gain, d.consumer_surplus());
        assert_eq!(out.items_delivered, 3);
        assert_eq!(out.amount_paid, d.price());
        assert_eq!(out.welfare(), d.goods().total_surplus());
    }

    #[test]
    fn gains_sum_to_welfare_even_on_abort() {
        let d = deal();
        let seq = scheduled(&d, 4.0);
        let mut defector = RationalDefector { stake: Money::ZERO };
        let out = execute(&d, &seq, &mut Honest, &mut defector);
        // welfare = Vc(D) - Vs(D): value created by delivered items.
        assert_eq!(
            out.welfare(),
            out.consumer_gain + out.supplier_gain,
            "identity"
        );
    }

    #[test]
    fn zero_stake_consumer_defects_when_tempted() {
        let d = deal();
        // With a relaxed margin the sequence exposes the supplier to
        // positive consumer temptation at some point.
        let seq = scheduled(&d, 4.0);
        let mut defector = RationalDefector { stake: Money::ZERO };
        let out = execute(&d, &seq, &mut Honest, &mut defector);
        match out.status {
            ExchangeStatus::Aborted { by, .. } => assert_eq!(by, Role::Consumer),
            ExchangeStatus::Completed => {
                panic!("zero-stake consumer should defect under relaxed margins")
            }
        }
        // The defecting consumer ends strictly better off than the honest
        // supplier at that point.
        assert!(out.consumer_gain > Money::ZERO);
    }

    #[test]
    fn defector_with_stake_above_margin_completes() {
        let d = deal();
        let eps = 4.0;
        let seq = scheduled(&d, eps);
        // Temptation never exceeds ε_s = 2 along a verified sequence, so a
        // stake of 2 units is never strictly exceeded.
        let mut defector = RationalDefector {
            stake: Money::from_units(2),
        };
        let out = execute(&d, &seq, &mut Honest, &mut defector);
        assert!(
            out.status.is_completed(),
            "stake ≥ ε means no profitable defection: {out:?}"
        );
    }

    #[test]
    fn supplier_defection_detected() {
        let d = deal();
        // Force an unsafe sequence: consumer pays everything first.
        let ids: Vec<_> = d.goods().ids().collect();
        let mut actions = vec![Action::Pay(d.price())];
        actions.extend(ids.iter().map(|id| Action::Deliver(*id)));
        let seq = ExchangeSequence::new(actions);
        let mut supplier = RationalDefector { stake: Money::ZERO };
        let out = execute(&d, &seq, &mut supplier, &mut Honest);
        match out.status {
            ExchangeStatus::Aborted { by, at_step } => {
                assert_eq!(by, Role::Supplier);
                assert_eq!(at_step, 1, "defects right after being paid in full");
            }
            ExchangeStatus::Completed => panic!("supplier should abscond with the payment"),
        }
        assert_eq!(out.supplier_gain, d.price());
        assert_eq!(out.consumer_gain, -d.price());
        assert_eq!(out.items_delivered, 0);
    }

    #[test]
    fn oracle_fn_adapter() {
        let d = deal();
        let seq = scheduled(&d, 4.0);
        let mut calls = 0usize;
        {
            let mut oracle = OracleFn(|_role, _t: Money, _v: &StateView<'_>, _u: &[Action]| {
                calls += 1;
                false
            });
            let out = execute(&d, &seq, &mut oracle, &mut Honest);
            assert!(out.status.is_completed());
        }
        assert!(calls > 0, "oracle must be consulted");
    }

    #[test]
    fn consult_order_prefers_higher_temptation() {
        let d = deal();
        // Unsafe both ways is impossible; instead verify that when the
        // consumer is the tempted one, a both-defect oracle pair reports
        // the consumer as defector.
        let ids: Vec<_> = d.goods().ids().collect();
        let seq = ExchangeSequence::new(vec![Action::Deliver(ids[0])]);
        let mut s = RationalDefector { stake: Money::ZERO };
        let mut c = RationalDefector { stake: Money::ZERO };
        let out = execute(&d, &seq, &mut s, &mut c);
        match out.status {
            ExchangeStatus::Aborted { by, .. } => assert_eq!(by, Role::Consumer),
            _ => panic!("expected abort"),
        }
    }

    #[test]
    fn outcome_gain_accessor() {
        let d = deal();
        let seq = scheduled(&d, 4.0);
        let out = execute(&d, &seq, &mut Honest, &mut Honest);
        assert_eq!(out.gain(Role::Supplier), out.supplier_gain);
        assert_eq!(out.gain(Role::Consumer), out.consumer_gain);
    }

    #[test]
    fn empty_sequence_aborts_incomplete_as_completed_noop() {
        // An empty sequence "completes" trivially at the initial state:
        // nothing delivered, nothing paid, zero gains. The *verifier*
        // rejects it as incomplete; the engine just replays.
        let d = deal();
        let seq = ExchangeSequence::default();
        let out = execute(&d, &seq, &mut Honest, &mut Honest);
        assert!(out.status.is_completed());
        assert_eq!(out.supplier_gain, Money::ZERO);
        assert_eq!(out.consumer_gain, Money::ZERO);
    }
}
