//! Property tests for the chaos plane's delivery discipline.
//!
//! The load-bearing invariant: **no fault mechanism may double-count a
//! report's feedback effects**. Wire duplication and bounded
//! retransmission both produce extra copies of an emission on the wire;
//! the `(issuer, seq)` dedup must make every extra copy invisible to
//! the trust models — so a run with duplication is *bit-identical* to
//! the same run without it, and a zero-fault plane is bit-identical to
//! no plane at all, across arbitrary small configurations.

use proptest::prelude::any;
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use trustex_agents::profile::PopulationMix;
use trustex_market::prelude::*;
use trustex_netsim::fault::{FaultConfig, PartitionSpec};
use trustex_netsim::time::SimTime;

fn base(n_agents: usize, rounds: u64, sessions: usize, seed: u64, dishonest: f64) -> MarketConfig {
    MarketConfig {
        n_agents,
        rounds,
        sessions_per_round: sessions,
        workload: Workload::FileSharing,
        mix: PopulationMix::standard(dishonest, 0.25),
        seed,
        ..MarketConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Wire duplication (any probability, with loss, a partition and
    /// retransmission active at the same time) never changes the
    /// report: every duplicate copy of an emission is suppressed by the
    /// `(issuer, seq)` dedup before it can touch a model, and deciding
    /// a duplicate consumes no RNG.
    #[test]
    fn duplication_never_duplicates_feedback_effects(
        n_agents in 3usize..30,
        rounds in 1u64..6,
        sessions in 1usize..40,
        seed in 0u64..1_000_000,
        dishonest in 0.0f64..0.9,
        duplicate in 0.01f64..1.0,
        loss in 0.0f64..0.3,
        retry in any::<bool>(),
    ) {
        let chaos = |duplicate: f64| ChaosConfig {
            fault: FaultConfig {
                loss,
                duplicate,
                extra_delay_max_us: 0,
                partition: PartitionSpec::Bisect {
                    heal_at: SimTime::from_micros(rounds / 2 * ROUND_SPAN.as_micros()),
                },
            },
            retry,
            degrade: retry,
        };
        let with_dups = MarketSim::new(MarketConfig {
            chaos: Some(chaos(duplicate)),
            ..base(n_agents, rounds, sessions, seed, dishonest)
        })
        .run();
        let without = MarketSim::new(MarketConfig {
            chaos: Some(chaos(0.0)),
            ..base(n_agents, rounds, sessions, seed, dishonest)
        })
        .run();
        prop_assert_eq!(with_dups, without);
    }

    /// A zero-fault plane is a perfect no-op for arbitrary small
    /// configurations and any defense combination: the chaos run's
    /// report equals the plane-absent run bit-for-bit.
    #[test]
    fn zero_fault_plane_equals_no_plane(
        n_agents in 3usize..30,
        rounds in 1u64..6,
        sessions in 1usize..40,
        seed in 0u64..1_000_000,
        dishonest in 0.0f64..0.9,
        retry in any::<bool>(),
        degrade in any::<bool>(),
    ) {
        let clean = MarketSim::new(base(n_agents, rounds, sessions, seed, dishonest)).run();
        let chaotic = MarketSim::new(MarketConfig {
            chaos: Some(ChaosConfig {
                fault: FaultConfig::default(),
                retry,
                degrade,
            }),
            ..base(n_agents, rounds, sessions, seed, dishonest)
        })
        .run();
        prop_assert_eq!(chaotic, clean);
    }

    /// Retransmissions never double-count: `witness_delivered` counts
    /// *unique logical emissions* accepted by a model (the `(issuer,
    /// seq)` dedup admits each emission at most once), so under any mix
    /// of loss, duplication, partitions and aggressive retransmission
    /// the delivered count can never exceed the attempted count — a
    /// double-delivered retry or duplicate would push it past. (Runs
    /// with retry on and off are *not* compared: delivered reports feed
    /// back into trust state and legitimately change trade volume.)
    #[test]
    fn retries_and_duplicates_never_overcount_deliveries(
        n_agents in 3usize..30,
        rounds in 2u64..6,
        sessions in 1usize..40,
        seed in 0u64..1_000_000,
        loss in 0.0f64..0.5,
        retry in any::<bool>(),
    ) {
        let report = MarketSim::new(MarketConfig {
            chaos: Some(ChaosConfig {
                fault: FaultConfig {
                    loss,
                    duplicate: 0.1,
                    extra_delay_max_us: 0,
                    partition: PartitionSpec::Islands {
                        islands: 3,
                        heal_at: SimTime::from_micros(rounds / 2 * ROUND_SPAN.as_micros()),
                    },
                },
                retry,
                degrade: false,
            }),
            ..base(n_agents, rounds, sessions, seed, 0.3)
        })
        .run();
        prop_assert!(report.witness_delivered <= report.witness_attempted);
        let rate = report.witness_delivery_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }
}
