//! Plain-text result tables.
//!
//! Every experiment produces a [`Table`]; the `repro` binary renders them
//! to aligned text (and CSV) so the tables/figures of `EXPERIMENTS.md`
//! can be regenerated with one command.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One table cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// A text label.
    Text(String),
    /// An integer count.
    Int(i64),
    /// A float, rendered with 4 significant decimals.
    Num(f64),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Text(s) => f.write_str(s),
            Cell::Int(v) => write!(f, "{v}"),
            Cell::Num(v) => write!(f, "{v:.4}"),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}
impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

/// A titled table with named columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// The rows.
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the column count.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| c.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (header + rows; fields never contain commas in this
    /// workspace's usage).
    pub fn to_csv(&self) -> String {
        let mut out = self.columns.join(",");
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| c.to_string()).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["name", "count", "score"]);
        t.push_row(vec!["alpha".into(), 3usize.into(), 0.5f64.into()]);
        t.push_row(vec!["b".into(), Cell::Int(-1), 1.25f64.into()]);
        t
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.title(), "demo");
        assert_eq!(t.columns().len(), 3);
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec![Cell::Int(1), Cell::Int(2)]);
    }

    #[test]
    fn render_alignment() {
        let text = sample().render();
        assert!(text.contains("## demo"));
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("name"));
        assert!(lines[1].contains("score"));
        // All data lines have equal length (aligned).
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_round() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("name,count,score"));
        assert_eq!(lines.next(), Some("alpha,3,0.5000"));
        assert_eq!(lines.next(), Some("b,-1,1.2500"));
    }

    #[test]
    fn cell_display() {
        assert_eq!(Cell::from("x").to_string(), "x");
        assert_eq!(Cell::from(2.5f64).to_string(), "2.5000");
        assert_eq!(Cell::from(7usize).to_string(), "7");
        assert_eq!(Cell::from(String::from("s")).to_string(), "s");
    }
}
