//! The end-to-end marketplace simulation: Figure 1 as a running loop.
//!
//! Every round, random pairs strike deals from a [`Workload`], schedule
//! them with a [`Strategy`], execute against the agents' true behaviours,
//! and feed the observed conduct back into trust models and gossip — the
//! full reputation → trust → decision → exchange → feedback cycle of the
//! paper's reference model.
//!
//! # Parallel execution model
//!
//! Rounds run in three phases so session execution can be sharded across
//! worker threads without giving up bit-for-bit reproducibility:
//!
//! 1. **Draw** (sequential): every session's participants, deal and
//!    per-party RNG forks are drawn from the master stream up front, so
//!    master-stream consumption never depends on trust state or timing.
//! 2. **Execute** (parallel): sessions are planned against the trust
//!    state at round start and executed concurrently via
//!    [`trustex_netsim::pool::parallel_map`]; each session only reads
//!    the shared community and owns its pre-forked streams.
//! 3. **Merge** (sequential): outcomes are folded in session order —
//!    accounting, direct-experience feedback, witness gossip and slander
//!    all replay deterministically from each session's feedback fork.
//!
//! The thread count therefore changes wall-clock time, never the
//! [`MarketReport`]: `threads ∈ {1, 2, 8}` produce identical output for
//! the same seed (enforced by the cross-thread determinism tests).

use crate::metrics::{accuracy_metrics, cooperation_truth, trust_mae_with_truth_threads};
use crate::population::{Community, CommunitySnapshot, ModelKind};
use crate::strategy::{plan, Strategy};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use trustex_agents::profile::PopulationMix;
use trustex_core::deal::Deal;
use trustex_core::execute::{execute, ExchangeOutcome, ExchangeStatus};
use trustex_core::policy::PaymentPolicy;
use trustex_core::state::Role;
use trustex_netsim::pool::{parallel_map, resolve_threads};
use trustex_netsim::rng::SimRng;
use trustex_trust::model::{Conduct, PeerId, WitnessReport};

/// Configuration of one market simulation.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Community size.
    pub n_agents: usize,
    /// Number of rounds.
    pub rounds: u64,
    /// Exchange sessions attempted per round.
    pub sessions_per_round: usize,
    /// Population composition.
    pub mix: PopulationMix,
    /// Trust model run by every agent.
    pub model: ModelKind,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Deal generator.
    pub workload: Workload,
    /// Payment interleaving policy.
    pub payment_policy: PaymentPolicy,
    /// Witnesses each party gossips its observation to after a session.
    pub gossip_witnesses: usize,
    /// Master seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Record O(n²) trust metrics every round (else only at the end).
    pub track_trust_per_round: bool,
    /// Worker threads for the sharded session executor (0 = auto via
    /// [`trustex_netsim::pool::default_threads`]). Any value yields the
    /// same report; only wall-clock time changes.
    pub threads: usize,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            n_agents: 100,
            rounds: 30,
            sessions_per_round: 100,
            mix: PopulationMix::standard(0.3, 0.25),
            model: ModelKind::Beta,
            strategy: Strategy::TrustAware,
            workload: Workload::Ebay,
            payment_policy: PaymentPolicy::Lazy,
            gossip_witnesses: 3,
            seed: 42,
            track_trust_per_round: false,
            threads: 0,
        }
    }
}

/// Per-round aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index.
    pub round: u64,
    /// Sessions attempted.
    pub sessions: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Sessions aborted by a defection.
    pub aborted: u64,
    /// Sessions never scheduled (declined or infeasible).
    pub no_trade: u64,
    /// Realized welfare (sum of both parties' gains), major units.
    pub welfare: f64,
    /// Losses (negative gains) suffered by fundamentally honest agents.
    pub honest_losses: f64,
    /// Trust MAE at the end of the round, when tracked.
    pub trust_mae: Option<f64>,
}

/// Whole-run aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketReport {
    /// Per-round statistics.
    pub per_round: Vec<RoundStats>,
    /// Total sessions attempted.
    pub sessions: u64,
    /// Total completed.
    pub completed: u64,
    /// Total aborted by defection.
    pub aborted: u64,
    /// Total unscheduled (declined / infeasible).
    pub no_trade: u64,
    /// Total realized welfare, major units.
    pub total_welfare: f64,
    /// Total gains of fundamentally honest agents.
    pub honest_gain: f64,
    /// Total gains of dishonest agents.
    pub dishonest_gain: f64,
    /// Total losses suffered by honest agents.
    pub honest_losses: f64,
    /// Final trust MAE over all pairs.
    pub final_mae: f64,
    /// Final ranking accuracy (AUC analogue).
    pub final_rank_accuracy: f64,
    /// Final decision accuracy (threshold 0.5).
    pub final_decision_accuracy: f64,
}

impl MarketReport {
    /// Completed / attempted (0 when nothing attempted).
    pub fn completion_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.completed as f64 / self.sessions as f64
        }
    }

    /// Fraction of sessions that were never scheduled.
    pub fn no_trade_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.no_trade as f64 / self.sessions as f64
        }
    }

    /// Mean welfare per attempted session.
    pub fn welfare_per_session(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.total_welfare / self.sessions as f64
        }
    }
}

/// Everything one session needs before execution, pre-drawn from the
/// master stream so execution order cannot perturb determinism.
struct SessionDraw {
    supplier: PeerId,
    consumer: PeerId,
    deal: Deal,
    rng_supplier: SimRng,
    rng_consumer: SimRng,
}

/// The sequential remainder of a session: who traded, plus the fork that
/// replays feedback-side randomness (slander targets, gossip witnesses).
struct SessionPost {
    supplier: PeerId,
    consumer: PeerId,
    rng_feedback: SimRng,
}

/// What the parallel executor hands back to the merge phase.
enum SessionOutcome {
    /// The strategy declined or found no feasible sequence.
    NoTrade,
    /// The exchange ran (to completion or first defection).
    Traded(ExchangeOutcome),
}

/// The simulation driver.
#[derive(Debug)]
pub struct MarketSim {
    cfg: MarketConfig,
    community: Community,
    rng: SimRng,
    honest_gain: f64,
    dishonest_gain: f64,
    /// Ground-truth cooperation probabilities, fixed at construction and
    /// reused by every per-round MAE evaluation.
    truth: Vec<f64>,
}

impl MarketSim {
    /// Builds the simulation (samples the population).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_agents < 2`: every session needs two distinct
    /// parties, and the distinct-consumer rejection loop in the session
    /// draw would otherwise never terminate.
    pub fn new(cfg: MarketConfig) -> MarketSim {
        assert!(
            cfg.n_agents >= 2,
            "MarketConfig::n_agents must be ≥ 2 (a session needs two distinct parties), got {}",
            cfg.n_agents
        );
        let mut rng = SimRng::new(cfg.seed);
        let community = Community::new(cfg.n_agents, &cfg.mix, cfg.model, &mut rng);
        let truth = cooperation_truth(&community);
        MarketSim {
            cfg,
            community,
            rng,
            honest_gain: 0.0,
            dishonest_gain: 0.0,
            truth,
        }
    }

    /// Read access to the community (e.g. for custom metrics).
    pub fn community(&self) -> &Community {
        &self.community
    }

    /// Runs all rounds and produces the report.
    pub fn run(mut self) -> MarketReport {
        let threads = resolve_threads(self.cfg.threads);
        let mut per_round = Vec::with_capacity(self.cfg.rounds as usize);
        let mut report = MarketReport {
            per_round: Vec::new(),
            sessions: 0,
            completed: 0,
            aborted: 0,
            no_trade: 0,
            total_welfare: 0.0,
            honest_gain: 0.0,
            dishonest_gain: 0.0,
            honest_losses: 0.0,
            final_mae: 0.0,
            final_rank_accuracy: 0.0,
            final_decision_accuracy: 0.0,
        };
        for round in 0..self.cfg.rounds {
            let stats = self.run_round(round, threads);
            report.sessions += stats.sessions;
            report.completed += stats.completed;
            report.aborted += stats.aborted;
            report.no_trade += stats.no_trade;
            report.total_welfare += stats.welfare;
            report.honest_losses += stats.honest_losses;
            per_round.push(stats);
        }
        // Gains per class are accumulated inside run_round via fields on
        // self; fold them here.
        report.honest_gain = self.honest_gain;
        report.dishonest_gain = self.dishonest_gain;
        // One batched row pass yields all three final metrics; each
        // (evaluator, subject) pair is predicted exactly once.
        let accuracy = accuracy_metrics(&self.community, &self.truth, threads);
        report.final_mae = accuracy.mae;
        report.final_rank_accuracy = accuracy.rank_accuracy;
        report.final_decision_accuracy = accuracy.decision_accuracy;
        report.per_round = per_round;
        report
    }

    /// Phase 1: draws every session of a round from the master stream.
    fn draw_sessions(&mut self) -> (Vec<SessionDraw>, Vec<SessionPost>) {
        let n = self.community.len();
        let count = self.cfg.sessions_per_round;
        let mut draws = Vec::with_capacity(count);
        let mut posts = Vec::with_capacity(count);
        for _ in 0..count {
            let supplier = PeerId(self.rng.index(n) as u32);
            let consumer = loop {
                let c = PeerId(self.rng.index(n) as u32);
                if c != supplier {
                    break c;
                }
            };
            let deal = self.cfg.workload.generate_deal(&mut self.rng);
            let rng_supplier = self.rng.fork(0xD1CE);
            let rng_consumer = self.rng.fork(0xFACE);
            let rng_feedback = self.rng.fork(0xF00D);
            draws.push(SessionDraw {
                supplier,
                consumer,
                deal,
                rng_supplier,
                rng_consumer,
            });
            posts.push(SessionPost {
                supplier,
                consumer,
                rng_feedback,
            });
        }
        (draws, posts)
    }

    /// Phase 2 worker: plans and executes one session against the
    /// round-start trust epoch. Trust reads go through the immutable
    /// [`CommunitySnapshot`] (behaviour profiles are construction-fixed
    /// and read from the community directly), so any number of sessions
    /// can run concurrently without touching mutable model state.
    fn run_session(
        cfg: &MarketConfig,
        community: &Community,
        snapshot: &CommunitySnapshot,
        round: u64,
        draw: SessionDraw,
    ) -> SessionOutcome {
        let s_trust = snapshot.predict(draw.supplier, draw.consumer);
        let c_trust = snapshot.predict(draw.consumer, draw.supplier);
        let sequence = match plan(
            cfg.strategy,
            &draw.deal,
            s_trust,
            c_trust,
            cfg.payment_policy,
        ) {
            Ok(seq) => seq,
            Err(_) => return SessionOutcome::NoTrade,
        };
        let mut rng_s = draw.rng_supplier;
        let mut rng_c = draw.rng_consumer;
        let s_behavior = community.profile(draw.supplier).exchange;
        let c_behavior = community.profile(draw.consumer).exchange;
        let outcome = {
            let mut s_oracle = s_behavior.oracle(round, &mut rng_s);
            let mut c_oracle = c_behavior.oracle(round, &mut rng_c);
            execute(&draw.deal, &sequence, &mut s_oracle, &mut c_oracle)
        };
        SessionOutcome::Traded(outcome)
    }

    fn run_round(&mut self, round: u64, threads: usize) -> RoundStats {
        let n = self.community.len();
        let mut stats = RoundStats {
            round,
            sessions: 0,
            completed: 0,
            aborted: 0,
            no_trade: 0,
            welfare: 0.0,
            honest_losses: 0.0,
            trust_mae: None,
        };

        // Phase 1: pre-draw; phase 2: execute in parallel shards. Shards
        // are chunks of consecutive sessions (~4 per worker) so queue
        // traffic amortises over many ~µs sessions; chunk boundaries
        // cannot affect results because execution is pure per session.
        // Sessions predict against the round-start epoch: a snapshot
        // taken here and dropped before the merge phase, so the merge's
        // `Arc::make_mut` writes never pay a copy-on-write clone.
        let (draws, posts) = self.draw_sessions();
        let outcomes: Vec<SessionOutcome> = {
            let cfg = &self.cfg;
            let community = &self.community;
            let snapshot = self.community.snapshot();
            let snapshot = &snapshot;
            let chunk_len = draws.len().div_ceil(threads.max(1) * 4).max(1);
            let mut chunks: Vec<Vec<SessionDraw>> = Vec::new();
            let mut rest = draws.into_iter();
            loop {
                let chunk: Vec<SessionDraw> = rest.by_ref().take(chunk_len).collect();
                if chunk.is_empty() {
                    break;
                }
                chunks.push(chunk);
            }
            parallel_map(threads, chunks, |_, chunk| {
                chunk
                    .into_iter()
                    .map(|draw| Self::run_session(cfg, community, snapshot, round, draw))
                    .collect::<Vec<SessionOutcome>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };

        // Phase 3: deterministic merge in session order.
        for (post, outcome) in posts.into_iter().zip(outcomes) {
            stats.sessions += 1;
            let SessionPost {
                supplier,
                consumer,
                mut rng_feedback,
            } = post;
            let outcome = match outcome {
                SessionOutcome::NoTrade => {
                    stats.no_trade += 1;
                    continue;
                }
                SessionOutcome::Traded(outcome) => outcome,
            };

            // Accounting.
            stats.welfare += outcome.welfare().as_f64();
            let s_gain = outcome.supplier_gain.as_f64();
            let c_gain = outcome.consumer_gain.as_f64();
            for (agent, gain) in [(supplier, s_gain), (consumer, c_gain)] {
                if self.community.is_honest(agent) {
                    self.honest_gain += gain;
                    if gain < 0.0 {
                        stats.honest_losses += -gain;
                    }
                } else {
                    self.dishonest_gain += gain;
                }
            }
            match outcome.status {
                ExchangeStatus::Completed => stats.completed += 1,
                ExchangeStatus::Aborted { .. } => stats.aborted += 1,
            }

            // Feedback: both parties observed whether the other defected.
            let s_defected = matches!(
                outcome.status,
                ExchangeStatus::Aborted {
                    by: Role::Supplier,
                    ..
                }
            );
            let c_defected = matches!(
                outcome.status,
                ExchangeStatus::Aborted {
                    by: Role::Consumer,
                    ..
                }
            );
            self.feedback(
                supplier,
                consumer,
                Conduct::from_honest(!c_defected),
                round,
                &mut rng_feedback,
            );
            self.feedback(
                consumer,
                supplier,
                Conduct::from_honest(!s_defected),
                round,
                &mut rng_feedback,
            );

            // Unprovoked slander.
            for observer in [supplier, consumer] {
                let reporting = self.community.profile(observer).reporting;
                if reporting.slanders_now(&mut rng_feedback) {
                    let victim = PeerId(rng_feedback.index(n) as u32);
                    if victim != observer {
                        self.gossip(
                            observer,
                            victim,
                            Conduct::Dishonest,
                            round,
                            &mut rng_feedback,
                        );
                    }
                }
            }
        }
        if self.cfg.track_trust_per_round {
            stats.trust_mae = Some(trust_mae_with_truth_threads(
                &self.community,
                &self.truth,
                threads,
            ));
        }
        stats
    }

    /// Records `observer`'s direct experience and gossips the (possibly
    /// distorted) report to random witnesses.
    fn feedback(
        &mut self,
        observer: PeerId,
        subject: PeerId,
        truth: Conduct,
        round: u64,
        rng: &mut SimRng,
    ) {
        self.community
            .record_direct(observer, subject, truth, round);
        let reporting = self.community.profile(observer).reporting;
        if let Some(shaped) = reporting.report(truth) {
            self.gossip(observer, subject, shaped, round, rng);
        }
    }

    /// Delivers a witness report about `subject` to exactly
    /// `min(gossip_witnesses, n − 2)` *distinct* random agents, never the
    /// witness or the subject themselves. Returns the delivery targets.
    ///
    /// (A previous implementation drew targets with replacement and
    /// skipped collisions, silently under-delivering — increasingly often
    /// in small communities.)
    fn gossip(
        &mut self,
        witness: PeerId,
        subject: PeerId,
        conduct: Conduct,
        round: u64,
        rng: &mut SimRng,
    ) -> Vec<PeerId> {
        // The exclusion shift below assumes two distinct excluded ids;
        // with witness == subject it would skip an innocent agent.
        debug_assert_ne!(witness, subject, "gossip requires witness != subject");
        let n = self.community.len();
        let k = self.cfg.gossip_witnesses.min(n.saturating_sub(2));
        if k == 0 {
            return Vec::new();
        }
        // Sample from the n−2 eligible agents, then shift the raw draws
        // past the two excluded ids (in ascending order) to map them back
        // onto the full id range.
        let mut excluded = [witness.index(), subject.index()];
        excluded.sort_unstable();
        let targets: Vec<PeerId> = rng
            .sample_indices(n - 2, k)
            .into_iter()
            .map(|raw| {
                let mut t = raw;
                if t >= excluded[0] {
                    t += 1;
                }
                if t >= excluded[1] {
                    t += 1;
                }
                PeerId(t as u32)
            })
            .collect();
        for &target in &targets {
            self.community.deliver_witness_report(
                target,
                WitnessReport {
                    witness,
                    subject,
                    conduct,
                    round,
                },
            );
        }
        targets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(strategy: Strategy) -> MarketConfig {
        MarketConfig {
            n_agents: 40,
            rounds: 8,
            sessions_per_round: 40,
            strategy,
            workload: Workload::FileSharing,
            ..MarketConfig::default()
        }
    }

    /// The distinct-consumer rejection loop in `draw_sessions` can only
    /// terminate with at least two agents; the constructor must reject
    /// degenerate communities up front instead of hanging.
    #[test]
    #[should_panic(expected = "n_agents must be ≥ 2")]
    fn single_agent_community_rejected() {
        MarketSim::new(MarketConfig {
            n_agents: 1,
            ..MarketConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "n_agents must be ≥ 2")]
    fn empty_community_rejected() {
        MarketSim::new(MarketConfig {
            n_agents: 0,
            ..MarketConfig::default()
        });
    }

    #[test]
    fn deterministic_runs() {
        let a = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        let b = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        assert_eq!(a, b, "same seed must reproduce the full report");
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let reference = MarketSim::new(MarketConfig {
            threads: 1,
            ..smoke_cfg(Strategy::TrustAware)
        })
        .run();
        for threads in [2, 3, 8] {
            let cfg = MarketConfig {
                threads,
                ..smoke_cfg(Strategy::TrustAware)
            };
            let report = MarketSim::new(cfg).run();
            assert_eq!(report, reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn safe_only_never_trades_positive_cost_workloads() {
        let report = MarketSim::new(smoke_cfg(Strategy::SafeOnly)).run();
        assert_eq!(report.completed, 0);
        assert_eq!(report.no_trade, report.sessions);
        assert_eq!(report.total_welfare, 0.0);
    }

    #[test]
    fn trust_aware_trades_and_learns() {
        let report = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        assert!(report.completed > 0, "trust-aware must enable trades");
        assert!(
            report.final_rank_accuracy > 0.6,
            "models should separate honest from dishonest: {}",
            report.final_rank_accuracy
        );
        // Honest agents end up net positive in aggregate.
        assert!(report.honest_gain > 0.0);
    }

    #[test]
    fn deliver_first_bleeds_welfare_to_defectors() {
        let naive = MarketSim::new(smoke_cfg(Strategy::UnsafeDeliverFirst)).run();
        let aware = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        // The naive strategy completes trades with everyone, so dishonest
        // agents capture gains; honest losses exceed the trust-aware ones.
        assert!(naive.honest_losses > aware.honest_losses);
        assert!(naive.aborted > 0);
    }

    #[test]
    fn report_rates_consistent() {
        let r = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        assert_eq!(r.sessions, r.completed + r.aborted + r.no_trade);
        assert!((0.0..=1.0).contains(&r.completion_rate()));
        assert!((0.0..=1.0).contains(&r.no_trade_rate()));
        assert_eq!(r.per_round.len(), 8);
        let sum: u64 = r.per_round.iter().map(|s| s.sessions).sum();
        assert_eq!(sum, r.sessions);
    }

    #[test]
    fn per_round_trust_tracking() {
        let cfg = MarketConfig {
            track_trust_per_round: true,
            ..smoke_cfg(Strategy::TrustAware)
        };
        let r = MarketSim::new(cfg).run();
        assert!(r.per_round.iter().all(|s| s.trust_mae.is_some()));
        let first = r.per_round.first().unwrap().trust_mae.unwrap();
        let last = r.per_round.last().unwrap().trust_mae.unwrap();
        assert!(
            last <= first,
            "trust error should not grow: {first} -> {last}"
        );
    }

    /// Regression test for the witness under-delivery bug: every gossip
    /// call must reach exactly `min(gossip_witnesses, n − 2)` *distinct*
    /// agents, none of them the witness or the subject. (The old
    /// implementation drew with replacement and dropped collisions, so
    /// small communities received fewer reports than configured.)
    #[test]
    fn gossip_delivers_exactly_min_distinct_witnesses() {
        for (n, k) in [(3, 1), (4, 3), (5, 10), (10, 8), (40, 3), (2, 5)] {
            let cfg = MarketConfig {
                n_agents: n,
                gossip_witnesses: k,
                ..MarketConfig::default()
            };
            let mut sim = MarketSim::new(cfg);
            let witness = PeerId(0);
            let subject = PeerId(1);
            let mut rng = SimRng::new(0x90551);
            let expected = k.min(n.saturating_sub(2));
            // Repeat: every single call must deliver the full quota.
            for round in 0..20 {
                let targets = sim.gossip(witness, subject, Conduct::Dishonest, round, &mut rng);
                assert_eq!(
                    targets.len(),
                    expected,
                    "n={n} k={k}: delivered {} of {expected}",
                    targets.len()
                );
                let mut uniq: Vec<u32> = targets.iter().map(|t| t.0).collect();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), expected, "n={n} k={k}: duplicate witnesses");
                assert!(
                    !targets.contains(&witness) && !targets.contains(&subject),
                    "n={n} k={k}: report delivered to a party"
                );
                assert!(targets.iter().all(|t| t.index() < n));
            }
            // The community actually received every report.
            assert_eq!(sim.community.pending_report_count(), expected * 20);
        }
    }

    /// Deliveries land in the community state (not just in the returned
    /// target list), and each distinct target queues one report per call.
    #[test]
    fn gossip_deliveries_reach_the_models() {
        let cfg = MarketConfig {
            n_agents: 6,
            gossip_witnesses: 4,
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(cfg);
        let mut rng = SimRng::new(1);
        assert_eq!(sim.community.pending_report_count(), 0);
        let targets = sim.gossip(PeerId(2), PeerId(5), Conduct::Honest, 3, &mut rng);
        assert_eq!(targets.len(), 4);
        assert_eq!(sim.community.pending_report_count(), 4);
    }
}
