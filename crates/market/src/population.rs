//! The community: agent profiles paired with per-agent trust models.
//!
//! Every agent owns its own [`TrustModel`] instance (trust is
//! subjective), selected by [`ModelKind`]. The community also maintains
//! the witness-corroboration bookkeeping that lets the beta model grade
//! its informants.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use trustex_agents::profile::{AgentProfile, PopulationMix};
use trustex_netsim::rng::SimRng;
use trustex_trust::baselines::{EwmaTrust, MeanTrust};
use trustex_trust::beta::{BetaConfig, BetaTrust};
use trustex_trust::complaints::{ComplaintConfig, ComplaintTrust};
use trustex_trust::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};

/// Community-level defenses against coordinated reporting attacks.
///
/// Both default to off so every existing experiment replays unchanged;
/// experiment E11 sweeps them against the adversary zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Scorer-weighted witness aggregation: every model additionally
    /// weighs (or gates) witness reports by the evaluator's own honesty
    /// estimate of the *reporter* (see the per-model `scorer_weighted`
    /// knobs in `trustex-trust`).
    pub scorer_weighted: bool,
    /// Per-reporter cap on witness-report deliveries per round;
    /// deliveries beyond the cap are dropped community-wide. Throttles
    /// Sybil amplification and slander floods without touching ordinary
    /// gossip volumes.
    pub report_rate_cap: Option<u32>,
}

/// Which trust model every agent runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Bayesian beta posterior (Mui et al.).
    Beta,
    /// Complaint-product metric (Aberer–Despotovic).
    Complaints,
    /// Arithmetic mean baseline.
    Mean,
    /// EWMA baseline.
    Ewma,
}

impl ModelKind {
    /// All kinds, for sweeps.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::Beta,
        ModelKind::Complaints,
        ModelKind::Mean,
        ModelKind::Ewma,
    ];

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Beta => "beta",
            ModelKind::Complaints => "complaints",
            ModelKind::Mean => "mean",
            ModelKind::Ewma => "ewma",
        }
    }

    /// Builds a model pre-sized for a community of `n` peers: every
    /// model's dense evidence tables are allocated once up front (and
    /// the complaint model learns the population for its median), so
    /// the simulation's record/predict hot paths never grow storage.
    pub(crate) fn build(self, n: usize) -> AnyModel {
        self.build_defended(n, false)
    }

    /// Like [`ModelKind::build`] but with the scorer-weighted witness
    /// aggregation defense toggled per [`DefenseConfig`].
    pub(crate) fn build_defended(self, n: usize, scorer_weighted: bool) -> AnyModel {
        match self {
            ModelKind::Beta => {
                let mut m = BetaTrust::with_config(BetaConfig {
                    scorer_weighted,
                    ..BetaConfig::default()
                });
                m.ensure_capacity(n);
                AnyModel::Beta(m)
            }
            ModelKind::Complaints => {
                let mut m = ComplaintTrust::with_config(ComplaintConfig {
                    scorer_weighted,
                    ..ComplaintConfig::default()
                });
                m.set_population(n);
                m.ensure_capacity(n);
                AnyModel::Complaints(m)
            }
            ModelKind::Mean => {
                AnyModel::Mean(MeanTrust::with_population(n).scorer_weighted(scorer_weighted))
            }
            ModelKind::Ewma => {
                AnyModel::Ewma(EwmaTrust::with_population(0.2, n).scorer_weighted(scorer_weighted))
            }
        }
    }
}

/// A concrete trust model of any supported kind.
#[derive(Debug, Clone)]
pub enum AnyModel {
    /// Bayesian beta posterior.
    Beta(BetaTrust),
    /// Complaint-product metric.
    Complaints(ComplaintTrust),
    /// Mean baseline.
    Mean(MeanTrust),
    /// EWMA baseline.
    Ewma(EwmaTrust),
}

impl TrustModel for AnyModel {
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, round: u64) {
        match self {
            AnyModel::Beta(m) => m.record_direct(subject, conduct, round),
            AnyModel::Complaints(m) => m.record_direct(subject, conduct, round),
            AnyModel::Mean(m) => m.record_direct(subject, conduct, round),
            AnyModel::Ewma(m) => m.record_direct(subject, conduct, round),
        }
    }

    fn record_witness(&mut self, report: WitnessReport) {
        match self {
            AnyModel::Beta(m) => m.record_witness(report),
            AnyModel::Complaints(m) => m.record_witness(report),
            AnyModel::Mean(m) => m.record_witness(report),
            AnyModel::Ewma(m) => m.record_witness(report),
        }
    }

    fn predict(&self, subject: PeerId) -> TrustEstimate {
        match self {
            AnyModel::Beta(m) => m.predict(subject),
            AnyModel::Complaints(m) => m.predict(subject),
            AnyModel::Mean(m) => m.predict(subject),
            AnyModel::Ewma(m) => m.predict(subject),
        }
    }

    fn predict_row_into(&self, out: &mut [TrustEstimate]) {
        // One dispatch per row (not per cell) into the models' dense
        // table sweeps.
        match self {
            AnyModel::Beta(m) => m.predict_row_into(out),
            AnyModel::Complaints(m) => m.predict_row_into(out),
            AnyModel::Mean(m) => m.predict_row_into(out),
            AnyModel::Ewma(m) => m.predict_row_into(out),
        }
    }

    fn predict_direct_only(&self, subject: PeerId) -> Option<TrustEstimate> {
        match self {
            AnyModel::Beta(m) => m.predict_direct_only(subject),
            AnyModel::Complaints(m) => m.predict_direct_only(subject),
            AnyModel::Mean(m) => m.predict_direct_only(subject),
            AnyModel::Ewma(m) => m.predict_direct_only(subject),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnyModel::Beta(m) => m.name(),
            AnyModel::Complaints(m) => m.name(),
            AnyModel::Mean(m) => m.name(),
            AnyModel::Ewma(m) => m.name(),
        }
    }

    fn forget_peer(&mut self, peer: PeerId) {
        match self {
            AnyModel::Beta(m) => m.forget_peer(peer),
            AnyModel::Complaints(m) => m.forget_peer(peer),
            AnyModel::Mean(m) => m.forget_peer(peer),
            AnyModel::Ewma(m) => m.forget_peer(peer),
        }
    }

    fn prepare_snapshot(&self) {
        match self {
            AnyModel::Beta(m) => m.prepare_snapshot(),
            AnyModel::Complaints(m) => m.prepare_snapshot(),
            AnyModel::Mean(m) => m.prepare_snapshot(),
            AnyModel::Ewma(m) => m.prepare_snapshot(),
        }
    }
}

impl AnyModel {
    /// Grades a witness (no-op for models without witness reliability).
    pub fn grade_witness(&mut self, witness: PeerId, corroborated: bool, round: u64) {
        if let AnyModel::Beta(m) = self {
            m.grade_witness(witness, corroborated, round);
        }
    }
}

/// Witness reports awaiting corroboration, stored densely per
/// evaluator: `queues[evaluator]` holds one entry per subject with
/// outstanding reports, scanned linearly.
///
/// This replaces the old `FxHasher` map keyed on `(evaluator,
/// subject)`: the per-evaluator queue is a handful of entries (bounded
/// by the gossip rate between the subject's interactions), so a linear
/// scan beats hashing on the feedback hot path — and the storage is
/// indexable by evaluator, the access pattern both the record path and
/// the snapshot engine's merge phase have. Consumed report buffers are
/// recycled through a spare pool, so steady-state operation allocates
/// nothing.
/// One evaluator's pending queue: `(subject, reports)` entries, where
/// each report is `(witness, conduct)`.
type ReportQueue = Vec<(PeerId, Vec<(PeerId, Conduct)>)>;

#[derive(Debug, Default)]
struct PendingIndex {
    /// Per-evaluator queues of `(subject, reports)` entries.
    queues: Vec<ReportQueue>,
    /// Recycled report buffers.
    spare: Vec<Vec<(PeerId, Conduct)>>,
    /// Total queued reports across all evaluators.
    count: usize,
}

impl PendingIndex {
    fn new(n: usize) -> PendingIndex {
        PendingIndex {
            queues: (0..n).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
            count: 0,
        }
    }

    /// Queues one report from `witness` about `subject` for `evaluator`.
    fn push(&mut self, evaluator: PeerId, subject: PeerId, witness: PeerId, conduct: Conduct) {
        let queue = &mut self.queues[evaluator.index()];
        let at = match queue.iter().position(|(s, _)| *s == subject) {
            Some(at) => at,
            None => {
                queue.push((subject, self.spare.pop().unwrap_or_default()));
                queue.len() - 1
            }
        };
        queue[at].1.push((witness, conduct));
        self.count += 1;
    }

    /// Removes and returns `evaluator`'s queued reports about `subject`
    /// (insertion order preserved). Return the buffer to
    /// [`PendingIndex::recycle`] once graded.
    fn take(&mut self, evaluator: PeerId, subject: PeerId) -> Option<Vec<(PeerId, Conduct)>> {
        let queue = &mut self.queues[evaluator.index()];
        let at = queue.iter().position(|(s, _)| *s == subject)?;
        let (_, reports) = queue.swap_remove(at);
        self.count -= reports.len();
        Some(reports)
    }

    /// Returns a consumed report buffer to the spare pool.
    fn recycle(&mut self, mut reports: Vec<(PeerId, Conduct)>) {
        reports.clear();
        self.spare.push(reports);
    }

    /// Drops every queued report *about* `peer` and every report *filed
    /// by* `peer` from other evaluators' queues — the pending-index side
    /// of a whitewash. The peer's own queue (reports delivered to it
    /// about others) is kept: the operator retains its knowledge.
    fn purge(&mut self, peer: PeerId) {
        for (evaluator, queue) in self.queues.iter_mut().enumerate() {
            if evaluator == peer.index() {
                continue;
            }
            let mut at = 0;
            while at < queue.len() {
                if queue[at].0 == peer {
                    let (_, mut reports) = queue.swap_remove(at);
                    self.count -= reports.len();
                    reports.clear();
                    self.spare.push(reports);
                } else {
                    let before = queue[at].1.len();
                    queue[at].1.retain(|&(witness, _)| witness != peer);
                    self.count -= before - queue[at].1.len();
                    at += 1;
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.count
    }
}

/// The community of agents.
///
/// Each agent's model sits behind an [`Arc`] so [`Community::snapshot`]
/// is one pointer clone per agent; writes go through `Arc::make_mut`,
/// which mutates in place while no snapshot is outstanding and
/// copy-on-writes exactly the models a retained snapshot still shares.
#[derive(Debug)]
pub struct Community {
    profiles: Vec<AgentProfile>,
    models: Vec<Arc<AnyModel>>,
    /// Witness reports awaiting corroboration.
    pending: PendingIndex,
    /// Active community-level defenses.
    defense: DefenseConfig,
    /// Witness-report deliveries per reporter in `rate_round`; only
    /// consulted when `defense.report_rate_cap` is set.
    witness_filed: Vec<u32>,
    /// The round `witness_filed` counts; lazily reset when a report from
    /// a different round arrives.
    rate_round: u64,
    /// Per-(evaluator, subject) direct-experience ledger backing the
    /// degraded-mode fallback; only allocated for chaos runs.
    direct: Option<Arc<DirectLedger>>,
    /// When set, predictions use direct evidence only — the graceful
    /// degradation the market engages while the witness quorum is
    /// unreachable, instead of trusting estimates that silently read
    /// lost gossip as absence of complaints.
    degraded: bool,
}

/// Dense per-(evaluator, subject) counts of direct experiences —
/// `(honest, total)` — kept outside the trust models so degraded-mode
/// fallback needs no change to any model's persisted state.
#[derive(Debug, Clone)]
pub struct DirectLedger {
    n: usize,
    counts: Vec<(u32, u32)>,
}

impl DirectLedger {
    fn new(n: usize) -> DirectLedger {
        DirectLedger {
            n,
            counts: vec![(0, 0); n * n],
        }
    }

    fn observe(&mut self, evaluator: PeerId, subject: PeerId, conduct: Conduct) {
        let slot = &mut self.counts[evaluator.index() * self.n + subject.index()];
        if conduct.is_honest() {
            slot.0 += 1;
        }
        slot.1 += 1;
    }

    /// Laplace-smoothed direct-only estimate, or `None` when the
    /// evaluator has never interacted with the subject.
    fn estimate(&self, evaluator: PeerId, subject: PeerId) -> Option<TrustEstimate> {
        let (honest, total) = self.counts[evaluator.index() * self.n + subject.index()];
        if total == 0 {
            return None;
        }
        let p = (f64::from(honest) + 1.0) / (f64::from(total) + 2.0);
        let confidence = f64::from(total) / (f64::from(total) + 4.0);
        Some(TrustEstimate::new(p, confidence))
    }
}

/// Degraded-mode estimate for one `(model, ledger)` pair: the model's
/// own separable direct view when it has one, else the community's
/// direct ledger, else maximum ignorance.
fn degraded_estimate(
    model: &AnyModel,
    direct: Option<&DirectLedger>,
    evaluator: PeerId,
    subject: PeerId,
) -> TrustEstimate {
    if let Some(est) = model.predict_direct_only(subject) {
        return est;
    }
    direct
        .and_then(|l| l.estimate(evaluator, subject))
        .unwrap_or(TrustEstimate::UNKNOWN)
}

/// An immutable view of every agent's trust model, taken with
/// [`Community::snapshot`].
///
/// Reads are bit-identical to the source community's at snapshot time
/// and stay fixed while the community keeps mutating — the per-round
/// read view the sharded session executor predicts against, and the
/// community-level analogue of [`trustex_trust::engine::TrustSnapshot`].
#[derive(Debug, Clone)]
pub struct CommunitySnapshot {
    models: Vec<Arc<AnyModel>>,
    direct: Option<Arc<DirectLedger>>,
    degraded: bool,
}

impl CommunitySnapshot {
    /// `evaluator`'s trust estimate of `subject` at snapshot time.
    pub fn predict(&self, evaluator: PeerId, subject: PeerId) -> TrustEstimate {
        if self.degraded {
            return degraded_estimate(
                &self.models[evaluator.index()],
                self.direct.as_deref(),
                evaluator,
                subject,
            );
        }
        self.models[evaluator.index()].predict(subject)
    }

    /// Fills `out[i]` with `evaluator`'s estimate of subject `PeerId(i)`
    /// in one dense-table sweep.
    pub fn predict_row_into(&self, evaluator: PeerId, out: &mut [TrustEstimate]) {
        if self.degraded {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.predict(evaluator, PeerId(i as u32));
            }
            return;
        }
        self.models[evaluator.index()].predict_row_into(out);
    }
}

impl Community {
    /// Samples a community of `n` agents from `mix`, all running `kind`
    /// trust models.
    pub fn new(n: usize, mix: &PopulationMix, kind: ModelKind, rng: &mut SimRng) -> Community {
        Community::with_defense(n, mix, kind, DefenseConfig::default(), rng)
    }

    /// Like [`Community::new`] with explicit community-level defenses.
    pub fn with_defense(
        n: usize,
        mix: &PopulationMix,
        kind: ModelKind,
        defense: DefenseConfig,
        rng: &mut SimRng,
    ) -> Community {
        let profiles = mix.sample(n, rng);
        let models = (0..n)
            .map(|_| Arc::new(kind.build_defended(n, defense.scorer_weighted)))
            .collect();
        Community {
            profiles,
            models,
            pending: PendingIndex::new(n),
            defense,
            witness_filed: vec![0; n],
            rate_round: 0,
            direct: None,
            degraded: false,
        }
    }

    /// Allocates the direct-experience ledger that degraded mode falls
    /// back on. Chaos runs call this up front so every direct
    /// interaction is ledgered from round zero; without it,
    /// [`Community::set_degraded`] still works but evaluators whose
    /// model cannot separate direct evidence degrade all the way to
    /// [`TrustEstimate::UNKNOWN`].
    pub fn enable_direct_ledger(&mut self) {
        if self.direct.is_none() {
            self.direct = Some(Arc::new(DirectLedger::new(self.len())));
        }
    }

    /// Switches direct-evidence-only (degraded) prediction on or off.
    ///
    /// The market flips this when the fraction of witness gossip
    /// actually delivered falls below the quorum threshold — the
    /// graceful-degradation contract: rather than silently treating
    /// undelivered complaints as evidence of good behaviour, evaluators
    /// stop consuming the witness channel until it heals.
    pub fn set_degraded(&mut self, on: bool) {
        self.degraded = on;
    }

    /// Whether degraded (direct-only) prediction is active.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Takes an immutable snapshot of every agent's model: one `Arc`
    /// clone per agent, no model data copied. Subsequent community
    /// writes copy-on-write only the models the snapshot still shares —
    /// and none at all once the snapshot is dropped.
    pub fn snapshot(&self) -> CommunitySnapshot {
        CommunitySnapshot {
            models: self.models.clone(),
            direct: self.direct.clone(),
            degraded: self.degraded,
        }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the community is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile of an agent.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn profile(&self, agent: PeerId) -> AgentProfile {
        self.profiles[agent.index()]
    }

    /// Read access to an agent's trust model.
    pub fn model(&self, agent: PeerId) -> &AnyModel {
        &self.models[agent.index()]
    }

    /// `evaluator`'s trust estimate of `subject`; direct evidence only
    /// while degraded mode is active (see [`Community::set_degraded`]).
    pub fn predict(&self, evaluator: PeerId, subject: PeerId) -> TrustEstimate {
        if self.degraded {
            return degraded_estimate(
                &self.models[evaluator.index()],
                self.direct.as_deref(),
                evaluator,
                subject,
            );
        }
        self.models[evaluator.index()].predict(subject)
    }

    /// Fills `out[i]` with `evaluator`'s estimate of subject `PeerId(i)`
    /// in one dense-table sweep — bit-identical to calling
    /// [`Community::predict`] per subject, and the read path the batched
    /// accuracy metrics are built on.
    ///
    /// # Panics
    ///
    /// Panics if `evaluator` is out of range.
    pub fn predict_row_into(&self, evaluator: PeerId, out: &mut [TrustEstimate]) {
        if self.degraded {
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = self.predict(evaluator, PeerId(i as u32));
            }
            return;
        }
        self.models[evaluator.index()].predict_row_into(out);
    }

    /// Ground truth cooperation probability of an agent.
    pub fn true_cooperation_prob(&self, agent: PeerId) -> f64 {
        self.profiles[agent.index()]
            .exchange
            .true_cooperation_prob()
    }

    /// Whether an agent is fundamentally honest (ground truth).
    pub fn is_honest(&self, agent: PeerId) -> bool {
        self.profiles[agent.index()]
            .exchange
            .is_fundamentally_honest()
    }

    /// Records `evaluator`'s direct experience with `subject` and grades
    /// any pending witness reports about `subject` against it.
    pub fn record_direct(
        &mut self,
        evaluator: PeerId,
        subject: PeerId,
        conduct: Conduct,
        round: u64,
    ) {
        if let Some(ledger) = &mut self.direct {
            Arc::make_mut(ledger).observe(evaluator, subject, conduct);
        }
        let model = Arc::make_mut(&mut self.models[evaluator.index()]);
        model.record_direct(subject, conduct, round);
        if let Some(reports) = self.pending.take(evaluator, subject) {
            for &(witness, claimed) in &reports {
                model.grade_witness(witness, claimed == conduct, round);
            }
            self.pending.recycle(reports);
        }
    }

    /// Delivers a witness report to `target`'s model and queues it for
    /// corroboration. Returns whether the report was delivered — `false`
    /// when the per-reporter rate cap (see [`DefenseConfig`]) dropped it.
    pub fn deliver_witness_report(&mut self, target: PeerId, report: WitnessReport) -> bool {
        if let Some(cap) = self.defense.report_rate_cap {
            if report.round != self.rate_round {
                self.witness_filed.fill(0);
                self.rate_round = report.round;
            }
            let filed = &mut self.witness_filed[report.witness.index()];
            if *filed >= cap {
                return false;
            }
            *filed += 1;
        }
        Arc::make_mut(&mut self.models[target.index()]).record_witness(report);
        self.pending
            .push(target, report.subject, report.witness, report.conduct);
        true
    }

    /// Executes a whitewash of `agent`: every *other* evaluator forgets
    /// it (both as a subject and as a witness), its queued reports are
    /// purged, and its rate-cap budget resets. The agent's own model is
    /// untouched — the operator behind the identity keeps what it knows
    /// about the rest of the community.
    pub fn whitewash(&mut self, agent: PeerId) {
        for (i, model) in self.models.iter_mut().enumerate() {
            if i != agent.index() {
                Arc::make_mut(model).forget_peer(agent);
            }
        }
        self.pending.purge(agent);
        if let Some(filed) = self.witness_filed.get_mut(agent.index()) {
            *filed = 0;
        }
    }

    /// Iterates over all agent ids.
    pub fn agent_ids(&self) -> impl ExactSizeIterator<Item = PeerId> {
        (0..self.profiles.len() as u32).map(PeerId)
    }

    /// Total witness reports queued for corroboration — an observable
    /// delivery count for gossip fan-out tests.
    pub fn pending_report_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_agents::behavior::ExchangeBehavior;

    fn community(kind: ModelKind) -> Community {
        let mut rng = SimRng::new(1);
        let mix = PopulationMix::standard(0.5, 0.0);
        Community::new(20, &mix, kind, &mut rng)
    }

    #[test]
    fn construction() {
        let c = community(ModelKind::Beta);
        assert_eq!(c.len(), 20);
        assert!(!c.is_empty());
        let honest = c.agent_ids().filter(|a| c.is_honest(*a)).count();
        assert_eq!(honest, 10);
    }

    #[test]
    fn ground_truth_matches_profile() {
        let c = community(ModelKind::Beta);
        for a in c.agent_ids() {
            let p = c.profile(a);
            if p.exchange == ExchangeBehavior::Honest {
                assert_eq!(c.true_cooperation_prob(a), 1.0);
            } else {
                assert_eq!(c.true_cooperation_prob(a), 0.0);
            }
        }
    }

    #[test]
    fn direct_experience_moves_estimates() {
        for kind in ModelKind::ALL {
            let mut c = community(kind);
            let (a, b) = (PeerId(0), PeerId(1));
            let before = c.predict(a, b).p_honest;
            for r in 0..5 {
                c.record_direct(a, b, Conduct::Dishonest, r);
            }
            let after = c.predict(a, b).p_honest;
            assert!(after < before, "{kind:?}: {before} -> {after}");
        }
    }

    #[test]
    fn degraded_mode_falls_back_to_the_direct_ledger() {
        let mut c = community(ModelKind::Mean);
        c.enable_direct_ledger();
        let (eval, subject, witness) = (PeerId(0), PeerId(1), PeerId(2));
        for r in 0..6 {
            c.record_direct(eval, subject, Conduct::Honest, r);
        }
        // A slander campaign the evaluator never corroborated drags the
        // normal (witness-polluted) estimate down...
        for r in 0..20 {
            c.deliver_witness_report(
                eval,
                WitnessReport {
                    witness,
                    subject,
                    conduct: Conduct::Dishonest,
                    round: r,
                },
            );
        }
        let normal = c.predict(eval, subject);
        c.set_degraded(true);
        assert!(c.degraded());
        let degraded = c.predict(eval, subject);
        // ...while the degraded estimate sees only the 6 honest direct
        // interactions: Laplace (6+1)/(6+2).
        assert!(degraded.p_honest > normal.p_honest);
        assert!((degraded.p_honest - 7.0 / 8.0).abs() < 1e-12);
        // Subjects never met directly degrade to maximum ignorance.
        assert_eq!(c.predict(eval, PeerId(7)), TrustEstimate::UNKNOWN);
        // The row sweep agrees bit-for-bit with per-cell predictions.
        let mut row = vec![TrustEstimate::UNKNOWN; c.len()];
        c.predict_row_into(eval, &mut row);
        for (i, got) in row.iter().enumerate() {
            assert_eq!(*got, c.predict(eval, PeerId(i as u32)));
        }
        // Snapshots carry the degraded view; healing restores the
        // full-evidence prediction untouched.
        let snap = c.snapshot();
        assert_eq!(snap.predict(eval, subject), degraded);
        let mut snap_row = vec![TrustEstimate::UNKNOWN; c.len()];
        snap.predict_row_into(eval, &mut snap_row);
        assert_eq!(snap_row, row);
        c.set_degraded(false);
        assert_eq!(c.predict(eval, subject), normal);
    }

    #[test]
    fn witness_reports_are_queued_and_graded() {
        let mut c = community(ModelKind::Beta);
        let (evaluator, witness, subject) = (PeerId(0), PeerId(1), PeerId(2));
        // An accurate witness earns reliability once corroborated.
        c.deliver_witness_report(
            evaluator,
            WitnessReport {
                witness,
                subject,
                conduct: Conduct::Dishonest,
                round: 0,
            },
        );
        c.record_direct(evaluator, subject, Conduct::Dishonest, 1);
        if let AnyModel::Beta(m) = c.model(evaluator) {
            assert!(
                m.witness_reliability(witness) > 0.5,
                "corroborated witness gains reliability"
            );
        } else {
            panic!("expected beta model");
        }
        // Pending entry consumed.
        assert_eq!(c.pending_report_count(), 0);
    }

    /// The dense pending index must replay the old map semantics: one
    /// entry per (evaluator, subject), reports graded in delivery
    /// order, counts exact, buffers recycled.
    #[test]
    fn pending_index_queues_and_takes() {
        let mut idx = PendingIndex::new(4);
        assert_eq!(idx.len(), 0);
        idx.push(PeerId(0), PeerId(2), PeerId(1), Conduct::Honest);
        idx.push(PeerId(0), PeerId(2), PeerId(3), Conduct::Dishonest);
        idx.push(PeerId(0), PeerId(3), PeerId(1), Conduct::Honest);
        idx.push(PeerId(1), PeerId(2), PeerId(0), Conduct::Honest);
        assert_eq!(idx.len(), 4);
        // Wrong evaluator or subject: nothing comes out.
        assert!(idx.take(PeerId(2), PeerId(0)).is_none());
        assert!(idx.take(PeerId(0), PeerId(1)).is_none());
        // Delivery order within the pair is preserved.
        let reports = idx.take(PeerId(0), PeerId(2)).expect("queued");
        assert_eq!(
            reports,
            vec![
                (PeerId(1), Conduct::Honest),
                (PeerId(3), Conduct::Dishonest)
            ]
        );
        assert_eq!(idx.len(), 2);
        idx.recycle(reports);
        assert_eq!(idx.spare.len(), 1);
        // The recycled buffer is reused, empty.
        idx.push(PeerId(3), PeerId(0), PeerId(2), Conduct::Honest);
        assert!(idx.spare.is_empty());
        assert_eq!(idx.take(PeerId(3), PeerId(0)).expect("queued").len(), 1);
    }

    /// A snapshot pins the models at snapshot time: reads equal the
    /// community's then, and do not move when the community keeps
    /// learning (copy-on-write isolation).
    #[test]
    fn snapshot_reads_are_frozen_at_snapshot_time() {
        for kind in ModelKind::ALL {
            let mut c = community(kind);
            let (a, b) = (PeerId(0), PeerId(1));
            for r in 0..3 {
                c.record_direct(a, b, Conduct::Dishonest, r);
            }
            let snap = c.snapshot();
            assert_eq!(snap.predict(a, b), c.predict(a, b), "{kind:?}");
            let frozen = snap.predict(a, b);
            // More dishonest evidence moves every model (the complaint
            // model ignores honest conduct entirely — no complaint is
            // filed — so honest writes would leave it legitimately
            // unchanged).
            for r in 3..8 {
                c.record_direct(a, b, Conduct::Dishonest, r);
            }
            assert_eq!(snap.predict(a, b), frozen, "{kind:?}: snapshot moved");
            assert_ne!(c.predict(a, b), frozen, "{kind:?}: community stuck");
            // Row sweeps agree with point reads on the frozen view.
            let mut row = vec![TrustEstimate::UNKNOWN; c.len()];
            snap.predict_row_into(a, &mut row);
            assert_eq!(row[b.index()], frozen, "{kind:?}");
        }
    }

    #[test]
    fn contradicted_witness_downgraded() {
        let mut c = community(ModelKind::Beta);
        let (evaluator, witness, subject) = (PeerId(0), PeerId(1), PeerId(2));
        c.deliver_witness_report(
            evaluator,
            WitnessReport {
                witness,
                subject,
                conduct: Conduct::Dishonest,
                round: 0,
            },
        );
        c.record_direct(evaluator, subject, Conduct::Honest, 1);
        if let AnyModel::Beta(m) = c.model(evaluator) {
            assert!(m.witness_reliability(witness) < 0.5);
        } else {
            panic!("expected beta model");
        }
    }

    #[test]
    fn model_kind_labels_and_names() {
        for kind in ModelKind::ALL {
            let c = community(kind);
            assert_eq!(c.model(PeerId(0)).name(), kind.label());
        }
    }

    #[test]
    fn report_rate_cap_drops_excess_deliveries_per_reporter() {
        let mut rng = SimRng::new(1);
        let mix = PopulationMix::standard(0.5, 0.0);
        let defense = DefenseConfig {
            report_rate_cap: Some(2),
            ..DefenseConfig::default()
        };
        let mut c = Community::with_defense(20, &mix, ModelKind::Mean, defense, &mut rng);
        let spammer = PeerId(0);
        let report = |subject: u32, round: u64| WitnessReport {
            witness: spammer,
            subject: PeerId(subject),
            conduct: Conduct::Dishonest,
            round,
        };
        assert!(c.deliver_witness_report(PeerId(10), report(1, 0)));
        assert!(c.deliver_witness_report(PeerId(11), report(2, 0)));
        // Third delivery in the same round: dropped, nothing recorded.
        assert!(!c.deliver_witness_report(PeerId(12), report(3, 0)));
        assert_eq!(c.pending_report_count(), 2);
        assert_eq!(c.predict(PeerId(12), PeerId(3)), TrustEstimate::UNKNOWN);
        // Another reporter is unaffected by the spammer's budget.
        assert!(c.deliver_witness_report(
            PeerId(12),
            WitnessReport {
                witness: PeerId(5),
                subject: PeerId(3),
                conduct: Conduct::Dishonest,
                round: 0,
            }
        ));
        // A new round resets the budget.
        assert!(c.deliver_witness_report(PeerId(13), report(4, 1)));
    }

    #[test]
    fn whitewash_erases_the_agent_everywhere_but_home() {
        for kind in ModelKind::ALL {
            let mut c = community(kind);
            let churner = PeerId(3);
            let observer = PeerId(0);
            for r in 0..6 {
                c.record_direct(observer, churner, Conduct::Dishonest, r);
                c.record_direct(churner, PeerId(7), Conduct::Dishonest, r);
            }
            let own_view = c.predict(churner, PeerId(7));
            assert!(c.predict(observer, churner).p_honest < 0.5, "{kind:?}");
            c.whitewash(churner);
            let mut fresh_rng = SimRng::new(9);
            let cold = Community::new(20, &PopulationMix::standard(0.5, 0.0), kind, &mut fresh_rng)
                .predict(observer, churner);
            assert_eq!(c.predict(observer, churner), cold, "{kind:?}: not cold");
            // The operator keeps its own knowledge of others.
            assert_eq!(c.predict(churner, PeerId(7)), own_view, "{kind:?}");
        }
    }

    #[test]
    fn whitewash_purges_pending_reports_both_ways() {
        let mut c = community(ModelKind::Beta);
        let churner = PeerId(3);
        // A report *about* the churner and a report *by* the churner.
        c.deliver_witness_report(
            PeerId(0),
            WitnessReport {
                witness: PeerId(1),
                subject: churner,
                conduct: Conduct::Dishonest,
                round: 0,
            },
        );
        c.deliver_witness_report(
            PeerId(0),
            WitnessReport {
                witness: churner,
                subject: PeerId(5),
                conduct: Conduct::Dishonest,
                round: 0,
            },
        );
        // A report delivered *to* the churner about someone else stays.
        c.deliver_witness_report(
            churner,
            WitnessReport {
                witness: PeerId(2),
                subject: PeerId(6),
                conduct: Conduct::Honest,
                round: 0,
            },
        );
        assert_eq!(c.pending_report_count(), 3);
        c.whitewash(churner);
        assert_eq!(c.pending_report_count(), 1);
        // Corroborating PeerId(5) later must not grade the churner for
        // its pre-churn report.
        c.record_direct(PeerId(0), PeerId(5), Conduct::Dishonest, 1);
        if let AnyModel::Beta(m) = c.model(PeerId(0)) {
            assert_eq!(
                m.witness_reliability(churner),
                m.config().witness_prior,
                "pre-churn report must not grade the fresh identity"
            );
        } else {
            panic!("expected beta model");
        }
    }

    #[test]
    fn grade_witness_noop_for_baselines() {
        let mut c = community(ModelKind::Mean);
        // Must not panic or change predictions.
        let before = c.predict(PeerId(0), PeerId(5));
        c.deliver_witness_report(
            PeerId(0),
            WitnessReport {
                witness: PeerId(1),
                subject: PeerId(5),
                conduct: Conduct::Honest,
                round: 0,
            },
        );
        c.record_direct(PeerId(0), PeerId(5), Conduct::Honest, 1);
        assert!(c.predict(PeerId(0), PeerId(5)).p_honest >= before.p_honest);
    }
}
