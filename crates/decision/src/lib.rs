//! # trustex-decision — decision making from trust estimates
//!
//! The "decision making" module of the reference architecture in
//! *Trust-Aware Cooperation* (Figure 1): the piece the paper identifies
//! as missing from prior work. It turns a trust estimate plus the user's
//! risk attitude into concrete actions:
//!
//! * [`risk`] — risk profiles (neutral / averse / seeking).
//! * [`exposure`] — the §3 translation of decreased expected gains into
//!   the **bound on accepted indebtedness** `ε = budget / p̂`.
//! * [`engage`] — the participate-or-not rule on expected gains.
//! * [`negotiate`] — the full bilateral pipeline: trust on both sides →
//!   [`SafetyMargins`](trustex_core::safety::SafetyMargins) → verified
//!   schedule (or a precise report of why no trade happens).
//!
//! ```
//! use trustex_core::money::Money;
//! use trustex_decision::prelude::*;
//! use trustex_trust::model::TrustEstimate;
//!
//! let policy = ExposurePolicy::with_cap(Money::from_units(100));
//! let eps = exposure_bound(TrustEstimate::new(0.9, 1.0), Money::from_units(50), policy);
//! assert!(eps.is_positive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engage;
pub mod exposure;
pub mod negotiate;
pub mod risk;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::engage::{decide, DeclineReason, Engagement, EngagementRule};
    pub use crate::exposure::{effective_dishonesty, exposure_bound, ExposurePolicy};
    pub use crate::negotiate::{
        min_trust_to_trade, plan_exchange, NegotiatedExchange, PartyInputs, PlanError,
    };
    pub use crate::risk::RiskProfile;
}
