//! E14: the message-level chaos sweep — loss, partitions, retries and
//! graceful degradation.
//!
//! Two halves share one table. The **overlay** half drives P-Grid
//! reputation lookups through a seeded [`FaultPlane`]: queries are
//! staggered on the virtual clock so a partition episode (healing at the
//! midpoint of the workload) bisects the query stream, and the per-hop
//! retry policy's backoff straddles the heal — recovering lookups the
//! first attempt could never complete, at a measured latency cost. The
//! **market** half delivers witness gossip through the same plane:
//! without defenses, lost and blocked reports silently read as absence
//! of complaints; with retry + degradation, bounded retransmission
//! replays them after the heal and evaluators fall back to
//! direct-evidence-only prediction while the witness quorum is
//! unreachable. Every row reports its distance to the clean arm.

use super::community::run_arms;
use super::storage::build_base;
use super::Scale;
use crate::population::ModelKind;
use crate::sim::{ChaosConfig, MarketConfig, MarketReport, ROUND_SPAN};
use crate::strategy::Strategy;
use crate::table::Table;
use crate::workload::Workload;
use trustex_agents::profile::PopulationMix;
use trustex_netsim::backoff::RetryPolicy;
use trustex_netsim::fault::{FaultConfig, FaultPlane, PartitionSpec};
use trustex_netsim::net::{NetConfig, Network};
use trustex_netsim::pool::parallel_map;
use trustex_netsim::rng::SimRng;
use trustex_netsim::time::SimTime;
use trustex_reputation::pgrid::PGrid;
use trustex_reputation::record::key_for_peer;
use trustex_trust::model::PeerId;

/// Virtual-clock spacing between consecutive overlay queries; the
/// partition heals at the workload midpoint, so early queries run
/// against the live episode and late ones against the healed overlay.
const QUERY_STAGGER_US: u64 = 500;

/// The loss axis of the sweep.
const LOSS: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

/// Outcome of one overlay arm.
struct OverlayArm {
    success: f64,
    mean_hops: f64,
    latency_ms: f64,
}

/// Builds the partition episode for a given label, healing at `heal_at`.
fn partition(kind: &str, heal_at: SimTime) -> PartitionSpec {
    match kind {
        "none" => PartitionSpec::None,
        "bisect" => PartitionSpec::Bisect { heal_at },
        "islands" => PartitionSpec::Islands {
            islands: 4,
            heal_at,
        },
        other => panic!("unknown partition kind {other}"),
    }
}

/// Replays the staggered query workload over the shared base grid
/// through a faulty network, with or without per-hop retry.
fn overlay_arm(base: &PGrid, fault: FaultConfig, retry: bool, queries: usize) -> OverlayArm {
    let mut net = Network::with_fault_plane(
        NetConfig::default(),
        FaultPlane::new(0xE14_0E14_0E14, fault),
    );
    let mut rng = SimRng::new(0xE14);
    let policy = RetryPolicy::standard();
    let retry = retry.then_some(&policy);
    let n = base.len();
    let w = base.config().key_bits;
    let mut success = 0usize;
    let mut hops = 0u64;
    let mut lat_us = 0u64;
    for q in 0..queries {
        let subject = PeerId(rng.index(n) as u32);
        let key = key_for_peer(subject, w);
        let origin = rng.index(n);
        let start = SimTime::from_micros(q as u64 * QUERY_STAGGER_US);
        let result = base.query_at(origin, key, None, &mut net, &mut rng, start, retry);
        if result.is_resolved() {
            success += 1;
            hops += u64::from(result.hops);
            lat_us += result.latency.as_micros();
        }
    }
    OverlayArm {
        success: success as f64 / queries as f64,
        mean_hops: hops as f64 / success.max(1) as f64,
        latency_ms: lat_us as f64 / success.max(1) as f64 / 1000.0,
    }
}

/// The market half's shared configuration: a 30%-dishonest community
/// whose accuracy depends on the witness channel the plane disrupts.
fn market_cfg(scale: Scale, model: ModelKind, chaos: Option<ChaosConfig>) -> MarketConfig {
    MarketConfig {
        n_agents: scale.pick(40, 150),
        rounds: scale.pick(10, 40),
        sessions_per_round: scale.pick(40, 150),
        mix: PopulationMix::standard(0.3, 0.25),
        model,
        strategy: Strategy::TrustAware,
        workload: Workload::FileSharing,
        seed: 0xE14,
        chaos,
        ..MarketConfig::default()
    }
}

/// The market half's chaos arms: the clean reference plus the two
/// hardest fault regimes, each with defenses off and on. (`retry: true`
/// arms the whole defense pair — bounded retransmission *and*
/// quorum-gated degradation — mirroring the e14 acceptance contract.)
fn market_arms(heal_at: SimTime) -> Vec<(f64, &'static str, bool, Option<ChaosConfig>)> {
    let mut arms: Vec<(f64, &'static str, bool, Option<ChaosConfig>)> =
        vec![(0.0, "none", false, None)];
    for (loss, kind) in [(0.05, "bisect"), (0.20, "islands")] {
        for defended in [false, true] {
            arms.push((
                loss,
                kind,
                defended,
                Some(ChaosConfig {
                    fault: FaultConfig {
                        loss,
                        duplicate: 0.01,
                        extra_delay_max_us: 0,
                        partition: partition(kind, heal_at),
                    },
                    retry: defended,
                    degrade: defended,
                }),
            ));
        }
    }
    arms
}

/// E14 — *Table R8*: the robustness frontier of the messaging substrate.
/// Loss {0, 1, 5, 20}% × partition {none, bisect, islands} × retry
/// {off, on} for the P-Grid overlay, and the defended/undefended fault
/// regimes across all four trust models for the marketplace — with every
/// row's distance to its clean arm.
pub fn e14_chaos(scale: Scale) -> Table {
    let mut table = Table::new(
        "E14: chaos sweep (loss × partition × retry; defenses = retry + degradation)",
        &[
            "half",
            "model",
            "loss",
            "partition",
            "retry",
            "qry_success",
            "mean_hops",
            "latency_ms",
            "deliver_rate",
            "rank_acc",
            "decision_acc",
            "d_success",
            "d_rank",
            "d_decision",
        ],
    );
    let na = || "-";

    // ---- Overlay half -------------------------------------------------
    let n = scale.pick(64, 1024);
    let queries = scale.pick(120, 400);
    let heal_at = SimTime::from_micros(queries as u64 / 2 * QUERY_STAGGER_US);
    let base = build_base(n, 4, 0xE14B);
    let arms: Vec<(f64, &'static str, bool)> = LOSS
        .iter()
        .flat_map(|&loss| {
            ["none", "bisect", "islands"]
                .into_iter()
                .flat_map(move |p| [(loss, p, false), (loss, p, true)])
        })
        .collect();
    let results = parallel_map(0, arms.clone(), |_, (loss, kind, retry)| {
        let fault = FaultConfig {
            loss,
            duplicate: 0.0,
            extra_delay_max_us: 1_000,
            partition: partition(kind, heal_at),
        };
        overlay_arm(&base, fault, retry, queries)
    });
    let clean_success = results[0].success; // (0, none, off) is arm 0
    for ((loss, kind, retry), arm) in arms.into_iter().zip(&results) {
        table.push_row(vec![
            "overlay".into(),
            "pgrid".into(),
            loss.into(),
            kind.into(),
            if retry { "on" } else { "off" }.into(),
            arm.success.into(),
            arm.mean_hops.into(),
            arm.latency_ms.into(),
            na().into(),
            na().into(),
            na().into(),
            (arm.success - clean_success).into(),
            na().into(),
            na().into(),
        ]);
    }

    // ---- Market half --------------------------------------------------
    let rounds = scale.pick(10u64, 40);
    let heal_at = SimTime::from_micros(rounds / 2 * ROUND_SPAN.as_micros());
    let combos = market_arms(heal_at);
    let mut labels = Vec::new();
    let mut arms = Vec::new();
    for model in ModelKind::ALL {
        for &(loss, kind, defended, chaos) in &combos {
            labels.push((model, loss, kind, defended));
            arms.push(market_cfg(scale, model, chaos));
        }
    }
    let reports: Vec<MarketReport> = run_arms(arms);
    let mut clean = (0.0, 0.0);
    for ((model, loss, kind, defended), r) in labels.into_iter().zip(&reports) {
        if kind == "none" {
            clean = (r.final_rank_accuracy, r.final_decision_accuracy);
        }
        table.push_row(vec![
            "market".into(),
            model.label().into(),
            loss.into(),
            kind.into(),
            if defended { "on" } else { "off" }.into(),
            na().into(),
            na().into(),
            na().into(),
            r.witness_delivery_rate().into(),
            r.final_rank_accuracy.into(),
            r.final_decision_accuracy.into(),
            na().into(),
            (r.final_rank_accuracy - clean.0).into(),
            (r.final_decision_accuracy - clean.1).into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    fn text(cell: &Cell) -> &str {
        match cell {
            Cell::Text(t) => t,
            other => panic!("expected text, got {other:?}"),
        }
    }

    /// Finds one row by (half, model, loss, partition, retry).
    fn row<'t>(
        t: &'t Table,
        half: &str,
        model: &str,
        loss: f64,
        part: &str,
        retry: &str,
    ) -> &'t [Cell] {
        t.rows()
            .iter()
            .find(|r| {
                text(&r[0]) == half
                    && text(&r[1]) == model
                    && (num(&r[2]) - loss).abs() < 1e-12
                    && text(&r[3]) == part
                    && text(&r[4]) == retry
            })
            .unwrap_or_else(|| panic!("missing row {half}/{model}/{loss}/{part}/{retry}"))
    }

    #[test]
    fn e14_has_the_full_sweep() {
        let t = e14_chaos(Scale::Smoke);
        // Overlay: 4 loss × 3 partitions × 2 retry; market: 4 models ×
        // (1 clean + 2 regimes × 2 defense settings).
        assert_eq!(t.rows().len(), 4 * 3 * 2 + 4 * 5);
    }

    /// The e14 acceptance criterion, overlay side: at the 5%-loss/bisect
    /// arm, per-hop retry with backoff recovers at least half of the
    /// query-success lost to the faults.
    #[test]
    fn e14_retry_recovers_at_least_half_the_overlay_success_loss() {
        let t = e14_chaos(Scale::Smoke);
        let clean = num(&row(&t, "overlay", "pgrid", 0.0, "none", "off")[5]);
        let off = num(&row(&t, "overlay", "pgrid", 0.05, "bisect", "off")[5]);
        let on = num(&row(&t, "overlay", "pgrid", 0.05, "bisect", "on")[5]);
        assert!(clean > 0.9, "clean arm must mostly succeed: {clean}");
        assert!(off < clean, "faults must cost something: {off} vs {clean}");
        assert!(
            on - off >= 0.5 * (clean - off),
            "retry recovered too little: clean {clean}, off {off}, on {on}"
        );
    }

    /// The e14 acceptance criterion, market side: at the 5%-loss/bisect
    /// arm, retry + degradation recover at least half of the rank- and
    /// decision-accuracy lost to the faults (averaged over the four
    /// trust models; individual models may sit on either side).
    #[test]
    fn e14_defenses_recover_at_least_half_the_accuracy_loss() {
        let t = e14_chaos(Scale::Smoke);
        let mut lost = (0.0, 0.0);
        let mut recovered = (0.0, 0.0);
        for model in ModelKind::ALL {
            let clean = row(&t, "market", model.label(), 0.0, "none", "off");
            let off = row(&t, "market", model.label(), 0.05, "bisect", "off");
            let on = row(&t, "market", model.label(), 0.05, "bisect", "on");
            lost.0 += num(&clean[9]) - num(&off[9]);
            lost.1 += num(&clean[10]) - num(&off[10]);
            recovered.0 += num(&on[9]) - num(&off[9]);
            recovered.1 += num(&on[10]) - num(&off[10]);
        }
        assert!(
            lost.0 > 0.0 && lost.1 > 0.0,
            "the faults must cost accuracy: lost {lost:?}"
        );
        assert!(
            recovered.0 >= 0.5 * lost.0 - 0.005,
            "rank recovery too small: lost {} recovered {}",
            lost.0,
            recovered.0
        );
        assert!(
            recovered.1 >= 0.5 * lost.1 - 0.005,
            "decision recovery too small: lost {} recovered {}",
            lost.1,
            recovered.1
        );
    }

    /// Retransmission + delivery dedup keep the delivery-rate column
    /// sane: within [0, 1], and the defended arm delivers strictly more
    /// witness reports than the undefended one under the same faults.
    #[test]
    fn e14_defended_arms_deliver_more_witness_reports() {
        let t = e14_chaos(Scale::Smoke);
        for model in ModelKind::ALL {
            let clean = row(&t, "market", model.label(), 0.0, "none", "off");
            assert!(num(&clean[8]) > 0.99, "clean must deliver ~everything");
            for (loss, kind) in [(0.05, "bisect"), (0.20, "islands")] {
                let off = num(&row(&t, "market", model.label(), loss, kind, "off")[8]);
                let on = num(&row(&t, "market", model.label(), loss, kind, "on")[8]);
                assert!((0.0..=1.0).contains(&off) && (0.0..=1.0).contains(&on));
                assert!(
                    on > off,
                    "{}: defended delivery {on} ≤ undefended {off}",
                    model.label()
                );
            }
        }
    }
}
