//! Goods: the divisible set of items a supplier sells to a consumer.
//!
//! The paper's setting (§2) assumes a set of goods consisting of a number
//! of items, with two commonly-known value functions: `Vs(x)` — the
//! supplier's cost of generating and delivering item `x` — and `Vc(x)` —
//! what item `x` is worth to the consumer. This module provides the
//! [`Item`]/[`Goods`] types and the [`curves`](crate::curves) module
//! provides shape generators used by workloads.

use crate::money::Money;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an item within one [`Goods`] set.
///
/// Ids are dense indices assigned by [`Goods::new`]; they are only
/// meaningful relative to their owning `Goods`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub(crate) u32);

impl ItemId {
    /// The dense index of this item in its `Goods`.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// One indivisible item: the supplier's cost and the consumer's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Item {
    id: ItemId,
    supplier_cost: Money,
    consumer_value: Money,
}

impl Item {
    /// This item's identifier.
    pub fn id(&self) -> ItemId {
        self.id
    }

    /// `Vs(x)`: the supplier's cost of generating and delivering the item.
    pub fn supplier_cost(&self) -> Money {
        self.supplier_cost
    }

    /// `Vc(x)`: the item's worth to the consumer.
    pub fn consumer_value(&self) -> Money {
        self.consumer_value
    }

    /// The item's surplus `s(x) = Vc(x) − Vs(x)` (may be negative).
    pub fn surplus(&self) -> Money {
        self.consumer_value - self.supplier_cost
    }
}

/// Error building a [`Goods`] set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoodsError {
    /// The set must contain at least one item.
    Empty,
    /// Valuations must be non-negative; the offending index is given.
    NegativeValuation {
        /// Position of the offending `(cost, value)` pair.
        index: usize,
    },
    /// Too many items (the id space is `u32`).
    TooManyItems,
}

impl fmt::Display for GoodsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoodsError::Empty => write!(f, "goods set must contain at least one item"),
            GoodsError::NegativeValuation { index } => {
                write!(f, "negative valuation for item at index {index}")
            }
            GoodsError::TooManyItems => write!(f, "too many items for the u32 id space"),
        }
    }
}

impl std::error::Error for GoodsError {}

/// The complete set of goods in one deal, with both value functions.
///
/// # Examples
///
/// ```
/// use trustex_core::goods::Goods;
/// use trustex_core::money::Money;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let goods = Goods::new(vec![
///     (Money::from_units(2), Money::from_units(5)), // (Vs, Vc)
///     (Money::from_units(1), Money::from_units(4)),
/// ])?;
/// assert_eq!(goods.len(), 2);
/// assert_eq!(goods.total_supplier_cost(), Money::from_units(3));
/// assert_eq!(goods.total_consumer_value(), Money::from_units(9));
/// assert_eq!(goods.total_surplus(), Money::from_units(6));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Goods {
    items: Vec<Item>,
    total_cost: Money,
    total_value: Money,
}

impl Goods {
    /// Builds a goods set from `(supplier_cost, consumer_value)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`GoodsError::Empty`] for an empty list,
    /// [`GoodsError::NegativeValuation`] if any cost or value is negative,
    /// and [`GoodsError::TooManyItems`] beyond `u32::MAX` items.
    pub fn new(valuations: Vec<(Money, Money)>) -> Result<Goods, GoodsError> {
        if valuations.is_empty() {
            return Err(GoodsError::Empty);
        }
        if valuations.len() > u32::MAX as usize {
            return Err(GoodsError::TooManyItems);
        }
        let mut items = Vec::with_capacity(valuations.len());
        let mut total_cost = Money::ZERO;
        let mut total_value = Money::ZERO;
        for (i, (cost, value)) in valuations.into_iter().enumerate() {
            if cost.is_negative() || value.is_negative() {
                return Err(GoodsError::NegativeValuation { index: i });
            }
            total_cost += cost;
            total_value += value;
            items.push(Item {
                id: ItemId(i as u32),
                supplier_cost: cost,
                consumer_value: value,
            });
        }
        Ok(Goods {
            items,
            total_cost,
            total_value,
        })
    }

    /// Convenience constructor from float major-unit pairs (for tests and
    /// workload generators).
    ///
    /// # Errors
    ///
    /// Same as [`Goods::new`].
    pub fn from_f64_pairs(pairs: &[(f64, f64)]) -> Result<Goods, GoodsError> {
        Goods::new(
            pairs
                .iter()
                .map(|&(c, v)| (Money::from_f64(c), Money::from_f64(v)))
                .collect(),
        )
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty (never true for a constructed `Goods`).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this goods set.
    pub fn item(&self, id: ItemId) -> &Item {
        &self.items[id.index()]
    }

    /// Returns the item at a dense index, if in range.
    pub fn get(&self, index: usize) -> Option<&Item> {
        self.items.get(index)
    }

    /// Iterates over all items in id order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Item> + '_ {
        self.items.iter()
    }

    /// All items as a dense slice in id order (`slice[i].id().index() == i`).
    ///
    /// The scheduler hot paths index this slice directly instead of going
    /// through per-id lookups.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// All item ids in id order.
    pub fn ids(&self) -> impl ExactSizeIterator<Item = ItemId> + '_ {
        self.items.iter().map(|i| i.id)
    }

    /// `Vs(G)`: total supplier cost of the whole set.
    pub fn total_supplier_cost(&self) -> Money {
        self.total_cost
    }

    /// `Vc(G)`: total consumer value of the whole set.
    pub fn total_consumer_value(&self) -> Money {
        self.total_value
    }

    /// Total surplus `Vc(G) − Vs(G)` created by trading the whole set.
    pub fn total_surplus(&self) -> Money {
        self.total_value - self.total_cost
    }

    /// Sum of supplier costs over a subset given as a delivered-flags
    /// slice aligned with item ids.
    ///
    /// # Panics
    ///
    /// Panics if `delivered.len() != self.len()`.
    pub fn cost_of_delivered(&self, delivered: &[bool]) -> Money {
        assert_eq!(delivered.len(), self.len());
        self.items
            .iter()
            .zip(delivered)
            .filter(|(_, d)| **d)
            .map(|(i, _)| i.supplier_cost)
            .sum()
    }

    /// Sum of consumer values over a subset given as delivered flags.
    ///
    /// # Panics
    ///
    /// Panics if `delivered.len() != self.len()`.
    pub fn value_of_delivered(&self, delivered: &[bool]) -> Money {
        assert_eq!(delivered.len(), self.len());
        self.items
            .iter()
            .zip(delivered)
            .filter(|(_, d)| **d)
            .map(|(i, _)| i.consumer_value)
            .sum()
    }
}

impl<'a> IntoIterator for &'a Goods {
    type Item = &'a Item;
    type IntoIter = std::slice::Iter<'a, Item>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goods_abc() -> Goods {
        Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap()
    }

    #[test]
    fn construction_and_totals() {
        let g = goods_abc();
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.total_supplier_cost(), Money::from_units(6));
        assert_eq!(g.total_consumer_value(), Money::from_units(12));
        assert_eq!(g.total_surplus(), Money::from_units(6));
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(Goods::new(vec![]), Err(GoodsError::Empty));
    }

    #[test]
    fn negative_valuation_rejected() {
        let err = Goods::new(vec![
            (Money::from_units(1), Money::from_units(1)),
            (Money::from_units(-1), Money::from_units(1)),
        ])
        .unwrap_err();
        assert_eq!(err, GoodsError::NegativeValuation { index: 1 });
        let msg = err.to_string();
        assert!(msg.contains("index 1"), "{msg}");
    }

    #[test]
    fn item_accessors() {
        let g = goods_abc();
        let ids: Vec<ItemId> = g.ids().collect();
        assert_eq!(ids.len(), 3);
        let first = g.item(ids[0]);
        assert_eq!(first.supplier_cost(), Money::from_units(2));
        assert_eq!(first.consumer_value(), Money::from_units(5));
        assert_eq!(first.surplus(), Money::from_units(3));
        assert_eq!(first.id(), ids[0]);
        assert_eq!(format!("{}", ids[0]), "item#0");
        assert!(g.get(99).is_none());
        assert!(g.get(2).is_some());
    }

    #[test]
    fn negative_surplus_item_allowed() {
        let g = goods_abc();
        let third = g.get(2).unwrap();
        assert_eq!(third.surplus(), Money::ZERO);
        let g2 = Goods::from_f64_pairs(&[(5.0, 1.0)]).unwrap();
        assert_eq!(g2.get(0).unwrap().surplus(), Money::from_units(-4));
    }

    #[test]
    fn subset_sums() {
        let g = goods_abc();
        let delivered = vec![true, false, true];
        assert_eq!(g.cost_of_delivered(&delivered), Money::from_units(5));
        assert_eq!(g.value_of_delivered(&delivered), Money::from_units(8));
        let none = vec![false, false, false];
        assert_eq!(g.cost_of_delivered(&none), Money::ZERO);
        let all = vec![true, true, true];
        assert_eq!(g.value_of_delivered(&all), g.total_consumer_value());
    }

    #[test]
    #[should_panic]
    fn subset_len_mismatch_panics() {
        goods_abc().cost_of_delivered(&[true]);
    }

    #[test]
    fn iteration() {
        let g = goods_abc();
        let n_ref = (&g).into_iter().count();
        assert_eq!(n_ref, 3);
        assert_eq!(g.iter().len(), 3);
    }

    #[test]
    fn items_slice_is_dense_in_id_order() {
        let g = goods_abc();
        let items = g.items();
        assert_eq!(items.len(), g.len());
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.id().index(), i);
            assert_eq!(g.item(item.id()), item);
        }
    }
}
