//! Smoke-runs every registered experiment at reduced scale and sanity
//! checks the qualitative shape each one is supposed to reproduce.

use trust_aware_cooperation::market::experiments::{find, Scale, ALL};
use trust_aware_cooperation::market::table::Cell;

fn num(cell: &Cell) -> f64 {
    match cell {
        Cell::Num(v) => *v,
        Cell::Int(v) => *v as f64,
        Cell::Text(t) => panic!("expected number, got {t}"),
    }
}

#[test]
fn every_experiment_produces_rows_and_csv() {
    for e in &ALL {
        let t = (e.run)(Scale::Smoke);
        assert!(!t.rows().is_empty(), "{}", e.id);
        let csv = t.to_csv();
        assert_eq!(
            csv.lines().count(),
            t.rows().len() + 1,
            "{}: csv row count",
            e.id
        );
        let rendered = t.render();
        assert!(rendered.contains(t.title()), "{}: title in render", e.id);
    }
}

#[test]
fn e1_reproduces_the_impossibility_result() {
    let t = (find("e1").unwrap().run)(Scale::Smoke);
    // Every instance family has zero fully safe sequences (column 2) and
    // full feasibility at a whole-item-cost stake happens at least
    // sometimes (column 5 > 0 somewhere).
    assert!(t.rows().iter().all(|r| num(&r[2]) == 0.0));
    assert!(t.rows().iter().any(|r| num(&r[5]) > 0.0));
}

#[test]
fn e4_reproduces_the_crossover_shape() {
    let t = (find("e4").unwrap().run)(Scale::Smoke);
    // In the fully honest population (dishonest = 0), trust-aware honest
    // gains per session approach deliver-first's (within 40%), while
    // safe-only sits at zero.
    let honest_rows: Vec<_> = t.rows().iter().filter(|r| num(&r[0]) == 0.0).collect();
    let gain_of = |label: &str| {
        honest_rows
            .iter()
            .find(|r| matches!(&r[1], Cell::Text(s) if s == label))
            .map(|r| num(&r[3]))
            .expect("row")
    };
    assert_eq!(gain_of("safe-only"), 0.0);
    let aware = gain_of("trust-aware");
    let naive = gain_of("deliver-first");
    assert!(
        aware > 0.6 * naive,
        "honest-population welfare: trust-aware {aware} vs naive {naive}"
    );
}

#[test]
fn e6_reproduces_logarithmic_cost() {
    let t = (find("e6").unwrap().run)(Scale::Smoke);
    let rows = t.rows();
    // Mean hops grow by far less than the 4× peer-count growth.
    let first_hops = num(&rows[0][1]);
    let last_hops = num(&rows[rows.len() - 1][1]);
    assert!(last_hops < first_hops + 3.0);
}

#[test]
fn e9_beta_converges_fastest_or_close() {
    let t = (find("e9").unwrap().run)(Scale::Smoke);
    let last = t.rows().last().unwrap();
    let beta = num(&last[1]);
    // Beta must land in a sane band at the end of the run.
    assert!(beta < 0.5, "beta final MAE {beta}");
}
