//! Exchange schedulers: the paper's quadratic algorithm, an optimal
//! `O(n log n)` greedy, and an exponential-space ground truth.
//!
//! # Theory
//!
//! Fix a delivery order `x₁ … xₙ`. Because payments are arbitrarily
//! divisible and irreversible, the order admits a (relaxed-)safe payment
//! interleaving **iff** for every position `j`
//!
//! ```text
//!   req(j)  :=  Vs(x_j) − Σ_{i>j} s(x_i)   ≤   ε           (†)
//! ```
//!
//! where `s(x) = Vc(x) − Vs(x)` is the item's surplus and
//! `ε = ε_s + ε_c` is the total window widening of
//! [`SafetyMargins`]. Intuition: when item `x_j` is handed over, the only
//! collateral keeping both parties honest is the surplus still to come;
//! the supplier's remaining production cost `Vs(x_j)` may exceed it by at
//! most the tolerated exposure.
//!
//! *Proof sketch (⇐).* Pay before each delivery down to
//! `min(R, U_next)`; (†) guarantees the admissible range is non-empty and
//! the invariants `L ≤ R ≤ U` are restored after every atomic action.
//! *(⇒)* At the moment `x_j` is delivered the window must contain the
//! outstanding `R`, which forces (†). ∎
//!
//! With `ε = 0` and `j = n`, (†) reads `Vs(xₙ) ≤ 0`: **an isolated
//! exchange with strictly positive delivery costs admits no fully safe
//! sequence** — the impossibility the paper cites from Sandholm, and the
//! reason reputation/trust must widen the window.
//!
//! # The three implementations
//!
//! * [`greedy_order`] — sorts negative-surplus items by ascending `Vc`,
//!   then positive-surplus items by descending `Vs`. An adjacent-exchange
//!   argument (see `min_required_margin`) shows this order minimises
//!   `max_j req(j)` — *simultaneously for every ε* — so it is feasible
//!   whenever any order is. `O(n log n)`.
//! * [`sandholm_order`] — the quadratic step-by-step construction in the
//!   style of the algorithm the paper cites: build the order from the
//!   **last** delivery backwards, at each step scanning all remaining
//!   items for the best placeable one. `O(n²)`, margin-dependent,
//!   derived independently from the reverse formulation
//!   `Vs(x) ≤ ε + s(placed-later set)`.
//! * [`subset_dp_order`] — exact feasibility by dynamic programming over
//!   item subsets (`O(2ⁿ·n)`), used as ground truth in tests.

use crate::deal::Deal;
use crate::goods::{Goods, ItemId};
use crate::money::Money;
use crate::policy::PaymentPolicy;
use crate::safety::SafetyMargins;
use crate::sequence::{verify, Action, ExchangeSequence, VerifiedSequence};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which scheduling algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Algorithm {
    /// Optimal `O(n log n)` sort (default).
    #[default]
    Greedy,
    /// Quadratic stepwise construction (paper-style).
    Sandholm,
    /// Exponential subset DP (ground truth; ≤ [`SUBSET_DP_MAX_ITEMS`] items).
    SubsetDp,
}

impl Algorithm {
    /// All algorithms, for cross-validation sweeps.
    pub const ALL: [Algorithm; 3] = [Algorithm::Greedy, Algorithm::Sandholm, Algorithm::SubsetDp];

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Greedy => "greedy",
            Algorithm::Sandholm => "sandholm",
            Algorithm::SubsetDp => "subset-dp",
        }
    }
}

/// Largest item count accepted by [`subset_dp_order`].
pub const SUBSET_DP_MAX_ITEMS: usize = 24;

/// Error from the schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No delivery order satisfies the margins; `required` is the
    /// smallest total margin `ε_s + ε_c` that would make the deal
    /// schedulable, `available` is what the parties granted.
    Infeasible {
        /// Minimal total margin for which a sequence exists.
        required: Money,
        /// The margin that was available (`ε_s + ε_c`).
        available: Money,
    },
    /// The subset-DP ground truth refuses instances beyond
    /// [`SUBSET_DP_MAX_ITEMS`] items.
    TooManyItems {
        /// Items in the deal.
        n_items: usize,
        /// The hard limit.
        limit: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Infeasible {
                required,
                available,
            } => write!(
                f,
                "no feasible exchange sequence: requires total margin {required}, available {available}"
            ),
            ScheduleError::TooManyItems { n_items, limit } => {
                write!(f, "subset DP limited to {limit} items, got {n_items}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The greedy delivery order: negative-surplus items first (ascending
/// `Vc`), then positive-surplus items (descending `Vs`). Ties break by
/// item id so the order is deterministic.
///
/// This order minimises `max_j req(j)` over all orders (see module docs),
/// independent of the margins.
pub fn greedy_order(goods: &Goods) -> Vec<ItemId> {
    let mut helpers: Vec<ItemId> = Vec::new(); // s(x) ≤ 0
    let mut burdens: Vec<ItemId> = Vec::new(); // s(x) > 0
    for item in goods.iter() {
        if item.surplus().is_positive() {
            burdens.push(item.id());
        } else {
            helpers.push(item.id());
        }
    }
    helpers.sort_by_key(|id| (goods.item(*id).consumer_value(), *id));
    burdens.sort_by(|a, b| {
        goods
            .item(*b)
            .supplier_cost()
            .cmp(&goods.item(*a).supplier_cost())
            .then(a.cmp(b))
    });
    helpers.extend(burdens);
    helpers
}

/// The per-position requirement profile of a delivery order:
/// `req(j) = Vs(x_j) − Σ_{i>j} s(x_i)` for each position `j` (0-based).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the goods' item ids (checked
/// via length and per-item lookup).
pub fn requirement_profile(goods: &Goods, order: &[ItemId]) -> Vec<Money> {
    assert_eq!(order.len(), goods.len(), "order must cover all items");
    // Suffix surpluses: suffix[j] = Σ_{i>j} s(x_i).
    let mut suffix = Money::ZERO;
    let mut reqs = vec![Money::ZERO; order.len()];
    for j in (0..order.len()).rev() {
        let item = goods.item(order[j]);
        reqs[j] = item.supplier_cost() - suffix;
        suffix += item.surplus();
    }
    reqs
}

/// The margin a given delivery order requires:
/// `max(0, max_j req(j))`.
pub fn required_margin_of_order(goods: &Goods, order: &[ItemId]) -> Money {
    requirement_profile(goods, order)
        .into_iter()
        .fold(Money::ZERO, Money::max)
}

/// The minimal total margin `ε_s + ε_c` for which *any* feasible delivery
/// order exists — evaluated on the greedy order, which is minimax-optimal.
///
/// A fully safe exchange exists iff this is zero.
///
/// # Examples
///
/// ```
/// use trustex_core::goods::Goods;
/// use trustex_core::money::Money;
/// use trustex_core::scheduler::min_required_margin;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Single item with positive cost: isolated safe exchange impossible —
/// // the required margin equals the cost of the last delivery.
/// let goods = Goods::from_f64_pairs(&[(3.0, 10.0)])?;
/// assert_eq!(min_required_margin(&goods), Money::from_units(3));
/// # Ok(())
/// # }
/// ```
pub fn min_required_margin(goods: &Goods) -> Money {
    required_margin_of_order(goods, &greedy_order(goods))
}

/// Whether the goods admit any delivery order under the given margins.
pub fn feasible(goods: &Goods, margins: SafetyMargins) -> bool {
    min_required_margin(goods) <= margins.total()
}

/// Paper-style quadratic construction: chooses deliveries from the last
/// position backwards. An item `x` is *placeable* at the current last
/// free position when `Vs(x) ≤ ε + s(W)`, `W` being the set already
/// placed after it. Among placeable items the rule prefers
/// positive-surplus items with minimal `Vs` (they enlarge the collateral
/// for everything placed earlier); once no positive-surplus item remains,
/// negative-surplus items with maximal `Vc`.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when at some step nothing is placeable.
pub fn sandholm_order(goods: &Goods, margins: SafetyMargins) -> Result<Vec<ItemId>, ScheduleError> {
    let eps = margins.total();
    let mut remaining: Vec<ItemId> = goods.ids().collect();
    let mut placed_surplus = Money::ZERO; // s(W)
    let mut reversed: Vec<ItemId> = Vec::with_capacity(goods.len());

    while !remaining.is_empty() {
        let budget = eps + placed_surplus;
        // Scan remaining items for the best placeable candidate: O(n) per
        // step, O(n²) total — the complexity the paper quotes.
        let mut best: Option<(usize, ItemId)> = None;
        let mut any_positive_left = false;
        for (pos, &id) in remaining.iter().enumerate() {
            let item = goods.item(id);
            if item.surplus().is_positive() {
                any_positive_left = true;
            }
            if item.supplier_cost() > budget {
                continue; // not placeable
            }
            let better = match best {
                None => true,
                Some((_, cur)) => {
                    let c = goods.item(cur);
                    let cand_pos_surplus = item.surplus().is_positive();
                    let cur_pos_surplus = c.surplus().is_positive();
                    match (cand_pos_surplus, cur_pos_surplus) {
                        (true, false) => true,
                        (false, true) => false,
                        (true, true) => {
                            // Prefer smaller Vs (keeps cheap tail deliveries).
                            (item.supplier_cost(), id) < (c.supplier_cost(), cur)
                        }
                        (false, false) => {
                            // Prefer larger Vc (big-value items late).
                            (item.consumer_value(), std::cmp::Reverse(id))
                                > (c.consumer_value(), std::cmp::Reverse(cur))
                        }
                    }
                }
            };
            if better {
                best = Some((pos, id));
            }
        }
        // A positive-surplus item must be placed while positive-surplus
        // items remain: placing a negative-surplus item first shrinks the
        // budget and can never help. If the best candidate is negative-
        // surplus while positives are still pending, the positives are
        // unplaceable now and forever.
        match best {
            Some((pos, id)) if !any_positive_left || goods.item(id).surplus().is_positive() => {
                placed_surplus += goods.item(id).surplus();
                reversed.push(id);
                remaining.swap_remove(pos);
            }
            _ => {
                return Err(ScheduleError::Infeasible {
                    required: min_required_margin(goods),
                    available: eps,
                });
            }
        }
    }
    reversed.reverse();
    Ok(reversed)
}

/// Exact feasibility by subset DP, returning a feasible delivery order if
/// one exists (`Ok(None)` when infeasible).
///
/// State: set `T` of still-undelivered items. `T` is reachable iff the
/// full set can be reduced to `T` respecting (†) at every step; an item
/// `x ∈ T` can be delivered from `T` iff `Vs(x) − (s(T) − s(x)) ≤ ε`.
/// The DP explores reachable states breadth-first.
///
/// # Errors
///
/// [`ScheduleError::TooManyItems`] beyond [`SUBSET_DP_MAX_ITEMS`] items.
pub fn subset_dp_order(
    goods: &Goods,
    margins: SafetyMargins,
) -> Result<Option<Vec<ItemId>>, ScheduleError> {
    let n = goods.len();
    if n > SUBSET_DP_MAX_ITEMS {
        return Err(ScheduleError::TooManyItems {
            n_items: n,
            limit: SUBSET_DP_MAX_ITEMS,
        });
    }
    let eps = margins.total();
    let ids: Vec<ItemId> = goods.ids().collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // surplus_of[mask] computed incrementally would need 2^n memory anyway
    // for `visited`; keep per-item surpluses and accumulate on the fly.
    let surplus: Vec<Money> = ids.iter().map(|id| goods.item(*id).surplus()).collect();
    let cost: Vec<Money> = ids
        .iter()
        .map(|id| goods.item(*id).supplier_cost())
        .collect();

    let mut visited = vec![false; 1usize << n];
    // predecessor[mask] = item removed to reach `mask` from mask|bit.
    let mut predecessor: Vec<u8> = vec![u8::MAX; 1usize << n];
    let mut frontier: Vec<(u32, Money)> = vec![(full, surplus.iter().copied().sum())];
    visited[full as usize] = true;

    while let Some((mask, s_mask)) = frontier.pop() {
        if mask == 0 {
            continue;
        }
        for i in 0..n {
            let bit = 1u32 << i;
            if mask & bit == 0 {
                continue;
            }
            // Deliver item i from state `mask`.
            if cost[i] - (s_mask - surplus[i]) <= eps {
                let next = mask & !bit;
                if !visited[next as usize] {
                    visited[next as usize] = true;
                    predecessor[next as usize] = i as u8;
                    frontier.push((next, s_mask - surplus[i]));
                }
            }
        }
    }

    if !visited[0] {
        return Ok(None);
    }
    // Reconstruct the order by walking predecessors from the empty set up.
    let mut order_rev: Vec<ItemId> = Vec::with_capacity(n);
    let mut mask = 0u32;
    while mask != full {
        let i = predecessor[mask as usize];
        debug_assert_ne!(i, u8::MAX, "broken predecessor chain");
        order_rev.push(ids[i as usize]);
        mask |= 1u32 << i;
    }
    order_rev.reverse();
    Ok(Some(order_rev))
}

/// Interleaves payments into a delivery order according to `policy`,
/// producing a complete exchange sequence.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] if the order violates (†) — callers that
/// obtained the order from a scheduler under the same margins never see
/// this.
pub fn interleave_payments(
    deal: &Deal,
    margins: SafetyMargins,
    order: &[ItemId],
    policy: PaymentPolicy,
) -> Result<ExchangeSequence, ScheduleError> {
    let goods = deal.goods();
    assert_eq!(order.len(), goods.len(), "order must cover all items");

    let mut actions = Vec::with_capacity(order.len() * 2 + 1);
    let mut outstanding = deal.price();
    // Remaining cost/value *before* each delivery.
    let mut remaining_cost = goods.total_supplier_cost();
    let mut remaining_value = goods.total_consumer_value();

    for &id in order {
        let item = goods.item(id);
        // Admissible outstanding balance after an optional payment, such
        // that delivering `id` right after stays within the window.
        let lower_now = remaining_cost - margins.eps_consumer();
        let upper_after = (remaining_value - item.consumer_value()) + margins.eps_supplier();
        let lo = lower_now.max(Money::ZERO);
        let hi = outstanding.min(upper_after);
        if lo > hi {
            return Err(ScheduleError::Infeasible {
                required: min_required_margin(goods),
                available: margins.total(),
            });
        }
        let target = policy.choose_outstanding(lo, hi);
        let payment = outstanding - target;
        if payment.is_positive() {
            actions.push(Action::Pay(payment));
            outstanding = target;
        }
        actions.push(Action::Deliver(id));
        remaining_cost -= item.supplier_cost();
        remaining_value -= item.consumer_value();
    }
    if outstanding.is_positive() {
        actions.push(Action::Pay(outstanding));
    }
    Ok(ExchangeSequence::new(actions))
}

/// Runs the chosen algorithm end to end: order the deliveries, interleave
/// payments, and independently [`verify`] the result.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when the margins are too tight, or
/// [`ScheduleError::TooManyItems`] for [`Algorithm::SubsetDp`] on large
/// deals.
///
/// # Panics
///
/// Panics if the internally produced sequence fails verification — that
/// would be a bug in this crate, not a caller error.
///
/// # Examples
///
/// ```
/// use trustex_core::deal::Deal;
/// use trustex_core::goods::Goods;
/// use trustex_core::money::Money;
/// use trustex_core::policy::PaymentPolicy;
/// use trustex_core::safety::SafetyMargins;
/// use trustex_core::scheduler::{schedule, Algorithm};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)])?;
/// let deal = Deal::new(goods, Money::from_units(9))?;
/// // Fully safe is impossible (every item costs the supplier something)…
/// let margins = SafetyMargins::fully_safe();
/// assert!(schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy).is_err());
/// // …but a small trust-backed margin makes the deal schedulable.
/// let margins = SafetyMargins::symmetric(Money::from_units(1))?;
/// let verified = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)?;
/// assert!(verified.max_consumer_temptation() <= margins.eps_supplier());
/// # Ok(())
/// # }
/// ```
pub fn schedule(
    deal: &Deal,
    margins: SafetyMargins,
    policy: PaymentPolicy,
    algorithm: Algorithm,
) -> Result<VerifiedSequence, ScheduleError> {
    let goods = deal.goods();
    let order = match algorithm {
        Algorithm::Greedy => {
            let order = greedy_order(goods);
            let required = required_margin_of_order(goods, &order);
            if required > margins.total() {
                return Err(ScheduleError::Infeasible {
                    required,
                    available: margins.total(),
                });
            }
            order
        }
        Algorithm::Sandholm => sandholm_order(goods, margins)?,
        Algorithm::SubsetDp => match subset_dp_order(goods, margins)? {
            Some(order) => order,
            None => {
                return Err(ScheduleError::Infeasible {
                    required: min_required_margin(goods),
                    available: margins.total(),
                });
            }
        },
    };
    let sequence = interleave_payments(deal, margins, &order, policy)?;
    Ok(verify(deal, margins, &sequence)
        .expect("scheduler produced a sequence rejected by the verifier (bug)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goods(pairs: &[(f64, f64)]) -> Goods {
        Goods::from_f64_pairs(pairs).unwrap()
    }

    fn margins(eps: f64) -> SafetyMargins {
        SafetyMargins::symmetric(Money::from_f64(eps / 2.0)).unwrap()
    }

    // --- impossibility & existence -------------------------------------

    #[test]
    fn isolated_exchange_impossible_with_positive_costs() {
        // Every item has Vs > 0 ⇒ the last delivery always violates (†)
        // with ε = 0, whatever the order.
        let g = goods(&[(2.0, 5.0), (1.0, 4.0), (3.0, 6.0)]);
        assert!(min_required_margin(&g).is_positive());
        assert!(!feasible(&g, SafetyMargins::fully_safe()));
    }

    #[test]
    fn zero_cost_last_item_enables_fully_safe() {
        // A zero-cost item can be delivered last; here every prefix works.
        let g = goods(&[(0.0, 5.0), (2.0, 4.0)]);
        assert_eq!(min_required_margin(&g), Money::ZERO);
        assert!(feasible(&g, SafetyMargins::fully_safe()));
    }

    #[test]
    fn min_margin_single_item_equals_cost() {
        let g = goods(&[(3.0, 10.0)]);
        assert_eq!(min_required_margin(&g), Money::from_units(3));
        assert!(feasible(&g, margins(3.0)));
        assert!(!feasible(&g, margins(2.9)));
    }

    #[test]
    fn feasibility_monotone_in_margin() {
        let g = goods(&[(2.0, 3.0), (4.0, 1.0), (1.0, 6.0)]);
        let req = min_required_margin(&g);
        let below = SafetyMargins::new(req - Money::from_micros(1), Money::ZERO).unwrap();
        let exact = SafetyMargins::new(req, Money::ZERO).unwrap();
        assert!(!feasible(&g, below));
        assert!(feasible(&g, exact));
    }

    // --- greedy order structure ----------------------------------------

    #[test]
    fn greedy_puts_negative_surplus_first() {
        let g = goods(&[(1.0, 5.0), (5.0, 1.0), (2.0, 6.0), (6.0, 2.0)]);
        let order = greedy_order(&g);
        let surpluses: Vec<bool> = order
            .iter()
            .map(|id| g.item(*id).surplus().is_positive())
            .collect();
        // All `false` (non-positive surplus) before all `true`.
        let first_true = surpluses.iter().position(|b| *b).unwrap();
        assert!(surpluses[first_true..].iter().all(|b| *b));
        assert!(surpluses[..first_true].iter().all(|b| !*b));
    }

    #[test]
    fn greedy_negative_sorted_by_value_positive_by_cost_desc() {
        let g = goods(&[
            (5.0, 1.0), // neg, Vc=1
            (9.0, 3.0), // neg, Vc=3
            (1.0, 8.0), // pos, Vs=1
            (4.0, 9.0), // pos, Vs=4
        ]);
        let order = greedy_order(&g);
        let idx: Vec<usize> = order.iter().map(|id| id.index()).collect();
        assert_eq!(idx, vec![0, 1, 3, 2]);
    }

    #[test]
    fn requirement_profile_matches_manual() {
        // Two items: a (Vs=2, Vc=5, s=3), b (Vs=1, Vc=4, s=3).
        // Order [a, b]: req(a) = 2 - s(b) = -1 ; req(b) = 1 - 0 = 1.
        let g = goods(&[(2.0, 5.0), (1.0, 4.0)]);
        let ids: Vec<ItemId> = g.ids().collect();
        let reqs = requirement_profile(&g, &ids);
        assert_eq!(reqs, vec![Money::from_units(-1), Money::from_units(1)]);
        assert_eq!(required_margin_of_order(&g, &ids), Money::from_units(1));
    }

    // --- cross-validation of the three algorithms -----------------------

    #[test]
    fn all_algorithms_agree_on_feasibility_small() {
        // Deterministic pseudo-random instances, n ≤ 6, several margins.
        let mut x = 2u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..60 {
            let n = 1 + (trial % 6);
            let pairs: Vec<(f64, f64)> = (0..n).map(|_| (next() * 8.0, next() * 8.0)).collect();
            let g = goods(&pairs);
            for eps_units in [0.0, 0.5, 1.5, 4.0, 10.0] {
                let m = margins(eps_units);
                let greedy_ok = feasible(&g, m);
                let sandholm_ok = sandholm_order(&g, m).is_ok();
                let dp_ok = subset_dp_order(&g, m).unwrap().is_some();
                assert_eq!(greedy_ok, dp_ok, "greedy vs dp: {pairs:?} eps={eps_units}");
                assert_eq!(
                    sandholm_ok, dp_ok,
                    "sandholm vs dp: {pairs:?} eps={eps_units}"
                );
            }
        }
    }

    #[test]
    fn schedulers_produce_verified_sequences() {
        let g = goods(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0), (0.5, 2.0)]);
        let deal = Deal::with_split_surplus(g).unwrap();
        let m = margins(4.0);
        for alg in Algorithm::ALL {
            for policy in PaymentPolicy::ALL {
                let v = schedule(&deal, m, policy, alg)
                    .unwrap_or_else(|e| panic!("{alg:?}/{policy:?}: {e}"));
                assert_eq!(v.sequence().delivery_count(), 4, "{alg:?}/{policy:?}");
                assert_eq!(
                    v.sequence().total_paid(),
                    deal.price(),
                    "{alg:?}/{policy:?}"
                );
            }
        }
    }

    #[test]
    fn infeasible_error_reports_required_margin() {
        let g = goods(&[(3.0, 10.0)]);
        let deal = Deal::with_split_surplus(g).unwrap();
        let err = schedule(
            &deal,
            SafetyMargins::fully_safe(),
            PaymentPolicy::Lazy,
            Algorithm::Greedy,
        )
        .unwrap_err();
        match err {
            ScheduleError::Infeasible {
                required,
                available,
            } => {
                assert_eq!(required, Money::from_units(3));
                assert_eq!(available, Money::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("requires total margin"));
    }

    #[test]
    fn exact_margin_schedules() {
        let g = goods(&[(3.0, 10.0), (2.0, 8.0)]);
        let req = min_required_margin(&g);
        let deal = Deal::with_split_surplus(g).unwrap();
        let m = SafetyMargins::new(req, Money::ZERO).unwrap();
        for alg in Algorithm::ALL {
            assert!(
                schedule(&deal, m, PaymentPolicy::Lazy, alg).is_ok(),
                "{alg:?} must schedule at the exact margin"
            );
        }
    }

    #[test]
    fn subset_dp_rejects_large_instances() {
        let pairs: Vec<(f64, f64)> = (0..25).map(|i| (1.0, 2.0 + i as f64)).collect();
        let g = goods(&pairs);
        let err = subset_dp_order(&g, margins(100.0)).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::TooManyItems { n_items: 25, .. }
        ));
    }

    #[test]
    fn sandholm_is_margin_sensitive() {
        let g = goods(&[(2.0, 6.0), (5.0, 6.0)]);
        // min margin: deliver Vs=2 last? req profile for [1(Vs5), 0(Vs2)]:
        // req(x1)=5 - s(x0)=5-4=1; req(x0)=2 ⇒ margin 2. Order [0,1]:
        // req(x0)=2-1=1; req(x1)=5 ⇒ 5. Optimal = 2.
        assert_eq!(min_required_margin(&g), Money::from_units(2));
        assert!(sandholm_order(&g, margins(2.0)).is_ok());
        assert!(sandholm_order(&g, margins(1.9)).is_err());
    }

    #[test]
    fn interleave_lazy_defers_final_payment() {
        let g = goods(&[(1.0, 4.0), (2.0, 5.0)]);
        let deal = Deal::with_split_surplus(g).unwrap();
        let m = margins(6.0);
        let order = greedy_order(deal.goods());
        let seq = interleave_payments(&deal, m, &order, PaymentPolicy::Lazy).unwrap();
        // Lazy: the last action must be a payment (consumer pays last).
        assert!(matches!(seq.actions().last(), Some(Action::Pay(_))));
    }

    #[test]
    fn interleave_eager_prepays() {
        let g = goods(&[(1.0, 4.0), (2.0, 5.0)]);
        let deal = Deal::with_split_surplus(g).unwrap();
        let m = margins(20.0); // wide margins: eager pays everything upfront
        let order = greedy_order(deal.goods());
        let seq = interleave_payments(&deal, m, &order, PaymentPolicy::Eager).unwrap();
        assert!(
            matches!(seq.actions().first(), Some(Action::Pay(_))),
            "eager should front-load payments: {:?}",
            seq.actions()
        );
        // With margins that wide the whole price is paid before delivery.
        match seq.actions().first() {
            Some(Action::Pay(m0)) => assert_eq!(*m0, deal.price()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn algorithm_labels() {
        assert_eq!(Algorithm::Greedy.label(), "greedy");
        assert_eq!(Algorithm::default(), Algorithm::Greedy);
        assert_eq!(Algorithm::ALL.len(), 3);
        assert_eq!(Algorithm::Sandholm.label(), "sandholm");
        assert_eq!(Algorithm::SubsetDp.label(), "subset-dp");
    }

    #[test]
    fn required_margin_zero_for_all_zero_cost() {
        let g = goods(&[(0.0, 3.0), (0.0, 1.0)]);
        assert_eq!(min_required_margin(&g), Money::ZERO);
        let deal = Deal::new(g, Money::from_units(2)).unwrap();
        let v = schedule(
            &deal,
            SafetyMargins::fully_safe(),
            PaymentPolicy::Lazy,
            Algorithm::Greedy,
        )
        .unwrap();
        assert_eq!(v.max_consumer_temptation(), Money::ZERO);
        assert_eq!(v.max_supplier_temptation(), Money::ZERO);
    }
}
