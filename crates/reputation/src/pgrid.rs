//! P-Grid: the distributed binary-trie storage of Aberer et al., used by
//! the CIKM 2001 reputation system (the paper's reference \[2\]).
//!
//! Each peer owns a binary *path*; it stores the data items whose keys
//! the path prefixes, and it keeps, for every level `l` of its path, a
//! small bucket of *references* to peers on the other side of the trie
//! at that level (same first `l` bits, opposite bit `l`). Queries
//! greedily resolve one more key bit per hop, giving `O(log N)` routing
//! messages. Peers sharing the same full path are *replicas* of each
//! other.
//!
//! The grid is built by the emergent pairwise-meeting protocol: peers
//! repeatedly meet — uniformly at random for cross-subtree references
//! and, in alternation, within their own subspace (the recursive
//! meeting cascade, sampled through the leaf directory) so that
//! identical-path peers keep splitting the key space even at 10^5-peer
//! populations. Splitting stops at a configured depth so that each leaf
//! retains a replica group.
//!
//! # Scaling structures (10^5-peer populations)
//!
//! Three structures keep every operation sub-linear in the population so
//! the grid holds up at the 10^4–10^5 peers the experiments target:
//!
//! * **Leaf directory.** A sorted directory (`BTreeMap<BitPath, _>`, in
//!   trie depth-first order) maps every *occupied* path to the dense
//!   indices of the peers owning it. It is updated incrementally each
//!   time a meeting extends a path, with an O(1) positional swap-remove.
//!   Invariant: each peer appears in exactly one bucket — the one for
//!   its current path — so replica-group resolution probes at most
//!   `max_depth + 1` prefixes of the key instead of scanning all `N`
//!   peers ([`PGrid::responsible_peers`] is `O(depth · log leaves)`).
//! * **Bounded reference buckets.** Each per-level reference bucket
//!   holds at most `max_refs` entries stamped with the meeting tick that
//!   last confirmed them; when a full bucket must admit a new peer, the
//!   *stalest* entry is evicted (recency as a liveness proxy), and
//!   [`PGrid::repair`] evicts references to peers a churn mask reports
//!   down before refilling tables with meetings among live peers.
//! * **Complaint compaction.** A peer's store keeps one entry per
//!   `(by, about)` pair — the latest round wins — so repeated inserts
//!   about the same relationship never grow a replica's store beyond
//!   the number of distinct complaining pairs in its subspace. Replica
//!   synchronisation merges stores under the same latest-round rule.

use crate::record::{BitPath, Complaint, Key};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use trustex_netsim::net::{Delivery, Network};
use trustex_netsim::rng::SimRng;
use trustex_netsim::time::SimTime;
use trustex_trust::model::PeerId;

/// Configuration of a [`PGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PGridConfig {
    /// Width of the key space in bits (1..=32).
    pub key_bits: u8,
    /// Maximum trie depth; `2^max_depth` leaves. Choosing
    /// `max_depth ≈ log2(n_peers / replication)` yields the target
    /// replica-group size.
    pub max_depth: u8,
    /// Maximum references kept per level.
    pub max_refs: usize,
    /// Global-mixing bootstrap meetings per peer (more meetings =
    /// better-filled reference tables). The split-cascade and
    /// replica-mixing phases of [`PGrid::build`] are fixed-budget and
    /// not counted here.
    pub meetings_per_peer: usize,
}

impl Default for PGridConfig {
    fn default() -> Self {
        PGridConfig {
            key_bits: 16,
            max_depth: 6,
            max_refs: 4,
            meetings_per_peer: 48,
        }
    }
}

impl PGridConfig {
    /// A configuration sized for `n` peers targeting a replica-group size
    /// of roughly `replication` (≥ 1).
    pub fn for_population(n: usize, replication: usize) -> PGridConfig {
        let repl = replication.max(1);
        let leaves = (n / repl).max(1);
        let depth = (usize::BITS - leaves.leading_zeros())
            .saturating_sub(1)
            .clamp(1, 16) as u8;
        PGridConfig {
            max_depth: depth,
            ..PGridConfig::default()
        }
    }

    fn validate(&self) {
        assert!(self.key_bits >= 1 && self.key_bits <= 32);
        assert!(self.max_depth >= 1 && self.max_depth <= self.key_bits);
        assert!(self.max_refs >= 1);
    }
}

/// One bounded-bucket reference entry: a peer and the meeting tick that
/// last confirmed it (higher = fresher).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RefEntry {
    peer: usize,
    stamp: u64,
}

/// One peer's trie position, references and local store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PeerNode {
    id: PeerId,
    path: BitPath,
    /// `refs[l]` = bounded bucket of peers with the same first `l` bits
    /// and opposite bit `l`. Indexed by level, length = `path.len()`.
    refs: Vec<Vec<RefEntry>>,
    /// Compacted complaint store: latest round per `(by, about)` pair.
    store: BTreeMap<(PeerId, PeerId), u64>,
}

impl PeerNode {
    /// The peer's identifier.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// The peer's trie path.
    pub fn path(&self) -> BitPath {
        self.path
    }

    /// Complaints currently stored at this peer (one per `(by, about)`
    /// pair, carrying the latest round seen).
    pub fn stored(&self) -> impl ExactSizeIterator<Item = Complaint> + '_ {
        self.store
            .iter()
            .map(|(&(by, about), &round)| Complaint { by, about, round })
    }

    /// Number of stored complaints (distinct `(by, about)` pairs).
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Compacting upsert: keeps the latest round per `(by, about)` pair.
    fn store_insert(&mut self, item: Complaint) {
        self.store
            .entry((item.by, item.about))
            .and_modify(|r| *r = (*r).max(item.round))
            .or_insert(item.round);
    }
}

/// Receipt for an insert: how it travelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertReceipt {
    /// Routing hops to the first responsible replica.
    pub hops: u32,
    /// Replicas that stored the item (0 = insert failed).
    pub replicas_reached: usize,
    /// Total latency accumulated along the routing path.
    pub latency: SimTime,
}

/// Result of a key query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Routing hops to the first responsible replica.
    pub hops: u32,
    /// Per-replica answers: the complaints each reachable replica holds
    /// for the queried key (dense peer index, complaint list).
    pub answers: Vec<(usize, Vec<Complaint>)>,
    /// Total latency of routing plus the slowest replica round-trip.
    pub latency: SimTime,
}

impl QueryResult {
    /// Whether at least one replica answered.
    pub fn is_resolved(&self) -> bool {
        !self.answers.is_empty()
    }
}

/// The distributed trie.
#[derive(Debug, Clone)]
pub struct PGrid {
    cfg: PGridConfig,
    peers: Vec<PeerNode>,
    /// Sorted leaf directory: occupied path → dense indices of its
    /// owners, maintained incrementally as meetings extend paths.
    leaf_dir: BTreeMap<BitPath, Vec<usize>>,
    /// `dir_pos[i]` = position of peer `i` inside its directory bucket
    /// (makes directory moves O(1) via swap-remove).
    dir_pos: Vec<usize>,
    /// Meeting tick, stamps reference entries for recency eviction.
    clock: u64,
}

impl PGrid {
    /// Builds a grid of `n` peers by the emergent meeting protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the configuration is invalid.
    pub fn build(n: usize, cfg: PGridConfig, rng: &mut SimRng) -> PGrid {
        assert!(n > 0, "need at least one peer");
        cfg.validate();
        let mut grid = PGrid {
            cfg,
            peers: (0..n)
                .map(|i| PeerNode {
                    id: PeerId(i as u32),
                    path: BitPath::EMPTY,
                    refs: Vec::new(),
                    store: Default::default(),
                })
                .collect(),
            leaf_dir: BTreeMap::from([(BitPath::EMPTY, (0..n).collect())]),
            dir_pos: (0..n).collect(),
            clock: 0,
        };
        // Phase 1 — split cascade: every round pairs up the peers inside
        // each occupied bucket (shuffled), so identical-path peers keep
        // meeting and splitting all the way to `max_depth`. Uniform
        // random pairs alone almost never share a path once the
        // population is large, which stalled the trie a few levels deep;
        // the cascade matures it in `O(n · depth)` meetings.
        for _ in 0..cfg.max_depth {
            grid.bucket_pairing_round(rng);
        }
        // Phase 2 — global mixing: uniform random meetings fill the
        // cross-subtree (shallow-level) reference buckets and gossip
        // them around.
        let meetings = cfg.meetings_per_peer.saturating_mul(n) / 2;
        for _ in 0..meetings {
            let a = rng.index(n);
            let b = rng.index(n);
            if a != b {
                grid.meet(a, b, rng);
            }
        }
        // Phase 3 — replica mixing: a few more bucket-pairing rounds.
        // Same-path meetings gossip across *every* level, so the deep
        // reference buckets (unreachable by random pairing) spread
        // through each replica group, and replica stores synchronise.
        for _ in 0..4 {
            grid.bucket_pairing_round(rng);
        }
        grid
    }

    /// One cascade round: pair up (shuffled) the members of every bucket
    /// with at least two peers and run the pairwise meetings.
    fn bucket_pairing_round(&mut self, rng: &mut SimRng) {
        let buckets: Vec<Vec<usize>> = self
            .leaf_dir
            .values()
            .filter(|b| b.len() >= 2)
            .cloned()
            .collect();
        for mut members in buckets {
            rng.shuffle(&mut members);
            for pair in members.chunks_exact(2) {
                self.meet(pair[0], pair[1], rng);
            }
        }
    }

    /// The active configuration.
    pub fn config(&self) -> PGridConfig {
        self.cfg
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the grid has no peers (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Number of distinct occupied paths in the leaf directory.
    pub fn leaf_count(&self) -> usize {
        self.leaf_dir.len()
    }

    /// The defensive routing hop bound: greedy routing resolves at least
    /// one key bit per hop, so anything past this indicates a
    /// reference-table inconsistency.
    pub fn hop_limit(&self) -> u32 {
        4 * self.cfg.key_bits as u32 + 8
    }

    /// The peer at a dense index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn peer(&self, index: usize) -> &PeerNode {
        &self.peers[index]
    }

    /// Iterates over all peers.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &PeerNode> + '_ {
        self.peers.iter()
    }

    /// The pairwise-meeting exchange at the heart of P-Grid construction.
    fn meet(&mut self, a: usize, b: usize, rng: &mut SimRng) {
        self.clock += 1;
        let (pa, pb) = (self.peers[a].path, self.peers[b].path);
        let l = pa.common_prefix(pb);
        if l == pa.len() && l == pb.len() {
            // Identical paths: split the subspace if depth remains.
            if pa.len() < self.cfg.max_depth {
                let bit_a = rng.chance(0.5);
                self.extend_path(a, bit_a);
                self.extend_path(b, !bit_a);
                self.add_ref(a, l, b);
                self.add_ref(b, l, a);
            }
            // At max depth the two peers are replicas: synchronise stores
            // under the compaction rule (latest round per pair wins).
            else {
                let taken = std::mem::take(&mut self.peers[a].store);
                let mut merged = std::mem::take(&mut self.peers[b].store);
                for (pair, round) in taken {
                    merged
                        .entry(pair)
                        .and_modify(|r| *r = (*r).max(round))
                        .or_insert(round);
                }
                self.peers[a].store = merged.clone();
                self.peers[b].store = merged;
            }
        } else if l == pa.len() {
            // a's path is a proper prefix of b's: a specialises to the
            // complement of b's next bit, and they reference each other.
            let bit_b = pb.bit(l);
            self.extend_path(a, !bit_b);
            self.add_ref(a, l, b);
            self.add_ref(b, l, a);
        } else if l == pb.len() {
            let bit_a = pa.bit(l);
            self.extend_path(b, !bit_a);
            self.add_ref(a, l, b);
            self.add_ref(b, l, a);
        } else {
            // Paths diverge at level l: mutual references at that level.
            self.add_ref(a, l, b);
            self.add_ref(b, l, a);
        }
        // Reference gossip: share one random reference per common level so
        // tables fill beyond the direct meeting partners.
        let common = self.peers[a].path.common_prefix(self.peers[b].path);
        for level in 0..common {
            let level = level as usize;
            if let Some(&RefEntry { peer: shared, .. }) = self.peers[a]
                .refs
                .get(level)
                .and_then(|v| rng.pick(v.as_slice()))
            {
                self.add_ref(b, level as u8, shared);
            }
            if let Some(&RefEntry { peer: shared, .. }) = self.peers[b]
                .refs
                .get(level)
                .and_then(|v| rng.pick(v.as_slice()))
            {
                self.add_ref(a, level as u8, shared);
            }
        }
    }

    fn extend_path(&mut self, peer: usize, bit: bool) {
        let old = self.peers[peer].path;
        let node = &mut self.peers[peer];
        node.path = node.path.child(bit);
        node.refs.push(Vec::new());
        let new = self.peers[peer].path;
        self.dir_remove(peer, old);
        self.dir_insert(peer, new);
    }

    /// Removes `peer` from its directory bucket in O(1) (positional
    /// swap-remove; the displaced peer's position is patched).
    fn dir_remove(&mut self, peer: usize, path: BitPath) {
        let bucket = self.leaf_dir.get_mut(&path).expect("peer is indexed");
        let pos = self.dir_pos[peer];
        debug_assert_eq!(bucket[pos], peer, "directory position out of sync");
        bucket.swap_remove(pos);
        if let Some(&moved) = bucket.get(pos) {
            self.dir_pos[moved] = pos;
        }
        if bucket.is_empty() {
            self.leaf_dir.remove(&path);
        }
    }

    fn dir_insert(&mut self, peer: usize, path: BitPath) {
        let bucket = self.leaf_dir.entry(path).or_default();
        self.dir_pos[peer] = bucket.len();
        bucket.push(peer);
    }

    fn add_ref(&mut self, peer: usize, level: u8, target: usize) {
        if peer == target {
            return;
        }
        // The invariant: target's path agrees with peer's on `level` bits
        // and (when long enough) differs at bit `level`.
        let (pp, tp) = (self.peers[peer].path, self.peers[target].path);
        if pp.len() <= level || tp.len() <= level {
            return;
        }
        if pp.common_prefix(tp) != level || pp.bit(level) == tp.bit(level) {
            return;
        }
        let max_refs = self.cfg.max_refs;
        let stamp = self.clock;
        let bucket = &mut self.peers[peer].refs[level as usize];
        if let Some(entry) = bucket.iter_mut().find(|e| e.peer == target) {
            entry.stamp = stamp; // re-confirmed: refresh recency
            return;
        }
        if bucket.len() >= max_refs {
            // Evict the stalest entry (recency as a liveness proxy).
            let victim = bucket
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
                .expect("bucket non-empty");
            bucket.remove(victim);
        }
        bucket.push(RefEntry {
            peer: target,
            stamp,
        });
    }

    /// Dense indices of all peers responsible for `key` (ground truth,
    /// not a network operation), in ascending index order.
    ///
    /// Resolved through the leaf directory: one probe per candidate
    /// depth, `O(max_depth · log leaves)` instead of the naive full
    /// population scan.
    pub fn responsible_peers(&self, key: Key) -> Vec<usize> {
        let w = self.cfg.key_bits;
        let mut out = Vec::new();
        for len in 0..=self.cfg.max_depth {
            let prefix = BitPath::key_prefix(key, len, w);
            if let Some(bucket) = self.leaf_dir.get(&prefix) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out
    }

    /// Greedy routing from `origin` towards a peer responsible for `key`.
    ///
    /// Each hop sends one message through `net`; unavailable peers
    /// (per `alive`, `None` = everyone up) are skipped among the level's
    /// references. Returns the responsible peer index, hop count and
    /// accumulated latency, or `None` when routing dead-ends.
    pub fn route(
        &self,
        origin: usize,
        key: Key,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> Option<(usize, u32, SimTime)> {
        let w = self.cfg.key_bits;
        let up = |i: usize| alive.is_none_or(|a| a[i]);
        if !up(origin) {
            return None;
        }
        let mut current = origin;
        let mut hops = 0u32;
        let mut latency = SimTime::ZERO;
        let hop_limit = self.hop_limit();
        loop {
            let node = &self.peers[current];
            if node.path.is_prefix_of_key(key, w) {
                return Some((current, hops, latency));
            }
            let level = node.path.common_prefix_with_key(key, w) as usize;
            let candidates: Vec<usize> = node
                .refs
                .get(level)
                .map(|v| v.iter().map(|e| e.peer).filter(|&i| up(i)).collect())
                .unwrap_or_default();
            let Some(&next) = rng.pick(&candidates) else {
                return None; // dead end: no live reference at this level
            };
            match net.send("route", rng) {
                Delivery::Delivered(d) => latency += d,
                Delivery::Dropped => return None,
            }
            hops += 1;
            if hops > hop_limit {
                return None; // defensive: reference-table inconsistency
            }
            current = next;
        }
    }

    /// The live replica group for a key: every live peer responsible for
    /// it. Peers with shorter paths covering the key count as members —
    /// in a real deployment the landing peer reaches them by continuing
    /// to route within its subtree, which costs the same one message per
    /// member this model charges.
    fn replica_group_for_key(&self, key: Key, alive: Option<&[bool]>) -> Vec<usize> {
        let up = |i: usize| alive.is_none_or(|a| a[i]);
        let mut group = self.responsible_peers(key);
        group.retain(|&i| up(i));
        group
    }

    /// Inserts a complaint under `key`: routes to a responsible replica,
    /// then pushes the item to the live members of its replica group.
    pub fn insert(
        &mut self,
        origin: usize,
        key: Key,
        item: Complaint,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> InsertReceipt {
        let Some((landing, hops, latency)) = self.route(origin, key, alive, net, rng) else {
            return InsertReceipt {
                hops: 0,
                replicas_reached: 0,
                latency: SimTime::ZERO,
            };
        };
        let group = self.replica_group_for_key(key, alive);
        let mut reached = 0;
        let mut max_extra = SimTime::ZERO;
        for member in group {
            if member != landing {
                match net.send("replicate", rng) {
                    Delivery::Delivered(d) => max_extra = max_extra.max(d),
                    Delivery::Dropped => continue,
                }
            }
            self.peers[member].store_insert(item);
            reached += 1;
        }
        InsertReceipt {
            hops,
            replicas_reached: reached,
            latency: latency + max_extra,
        }
    }

    /// Queries all live replicas for the items stored under `key`.
    pub fn query(
        &self,
        origin: usize,
        key: Key,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> QueryResult {
        let Some((landing, hops, latency)) = self.route(origin, key, alive, net, rng) else {
            return QueryResult {
                hops: 0,
                answers: Vec::new(),
                latency: SimTime::ZERO,
            };
        };
        let w = self.cfg.key_bits;
        let mut answers = Vec::new();
        let mut max_extra = SimTime::ZERO;
        for member in self.replica_group_for_key(key, alive) {
            if member != landing {
                match net.send("replica_query", rng) {
                    Delivery::Delivered(d) => max_extra = max_extra.max(d),
                    Delivery::Dropped => continue,
                }
            }
            let items: Vec<Complaint> = self.peers[member]
                .stored()
                .filter(|c| {
                    // Only items indexed under the queried key — a peer's
                    // store can hold items for every key in its subspace.
                    crate::record::key_for_peer(c.by, w) == key
                        || crate::record::key_for_peer(c.about, w) == key
                })
                .collect();
            answers.push((member, items));
        }
        QueryResult {
            hops,
            answers,
            latency: latency + max_extra,
        }
    }

    /// Repairs reference tables after churn: every live peer evicts its
    /// references to peers `alive` reports down (liveness-aware
    /// eviction), then `meetings` additional random meetings among live
    /// peers refill the buckets and re-synchronise replica stores.
    ///
    /// Down peers keep their state untouched — when they return, the
    /// regular meeting protocol reintegrates them.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len() != self.len()`.
    pub fn repair(&mut self, alive: &[bool], meetings: usize, rng: &mut SimRng) {
        assert_eq!(alive.len(), self.peers.len(), "mask length mismatch");
        for (i, node) in self.peers.iter_mut().enumerate() {
            if !alive[i] {
                continue;
            }
            for bucket in &mut node.refs {
                bucket.retain(|e| alive[e.peer]);
            }
        }
        let live: Vec<usize> = (0..alive.len()).filter(|&i| alive[i]).collect();
        if live.len() < 2 {
            return;
        }
        for _ in 0..meetings {
            let a = live[rng.index(live.len())];
            let b = live[rng.index(live.len())];
            if a != b {
                self.meet(a, b, rng);
            }
        }
    }

    /// Distribution of path depths — diagnostics for the bootstrap.
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.cfg.max_depth as usize + 1];
        for p in &self.peers {
            h[p.path.len() as usize] += 1;
        }
        h
    }

    /// Fraction of peers whose path reached the configured depth.
    pub fn maturity(&self) -> f64 {
        if self.peers.is_empty() {
            return 0.0;
        }
        let full = self
            .peers
            .iter()
            .filter(|p| p.path.len() == self.cfg.max_depth)
            .count();
        full as f64 / self.peers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_netsim::net::NetConfig;

    fn grid(n: usize, depth: u8, seed: u64) -> (PGrid, SimRng, Network) {
        let mut rng = SimRng::new(seed);
        let cfg = PGridConfig {
            max_depth: depth,
            ..PGridConfig::default()
        };
        let g = PGrid::build(n, cfg, &mut rng);
        (g, rng, Network::new(NetConfig::default()))
    }

    #[test]
    fn bootstrap_reaches_full_depth() {
        let (g, _, _) = grid(128, 5, 1);
        assert!(
            g.maturity() > 0.85,
            "bootstrap should mature: {:?}",
            g.depth_histogram()
        );
        // Residual shallow peers are tolerable (they hold larger
        // subspaces) but must be rare and near-full-depth.
        let hist = g.depth_histogram();
        assert_eq!(hist[..4].iter().sum::<usize>(), 0, "{hist:?}");
    }

    #[test]
    fn replica_groups_nonempty_at_depth() {
        let (g, _, _) = grid(128, 4, 2);
        // 128 peers over 16 leaves: every leaf should have ~8 replicas.
        for leaf in 0..16u32 {
            let count = g
                .iter()
                .filter(|p| {
                    p.path().len() == 4
                        && (0..4).all(|i| p.path().bit(i) == ((leaf >> (3 - i)) & 1 == 1))
                })
                .count();
            assert!(count >= 1, "leaf {leaf:04b} unpopulated");
        }
    }

    #[test]
    fn leaf_directory_matches_naive_scan() {
        let (g, mut rng, _) = grid(160, 5, 21);
        let w = g.config().key_bits;
        for _ in 0..300 {
            let key = Key::from_bits(rng.next_u64() as u32 & 0xFFFF);
            let naive: Vec<usize> = (0..g.len())
                .filter(|&i| g.peer(i).path().is_prefix_of_key(key, w))
                .collect();
            assert_eq!(g.responsible_peers(key), naive, "key {:#x}", key.bits());
        }
        // Directory invariants: every peer appears in exactly one bucket,
        // at the position `dir_pos` records, and only occupied paths
        // have entries.
        let indexed: usize = g.leaf_dir.values().map(Vec::len).sum();
        assert_eq!(indexed, g.len());
        for (path, bucket) in &g.leaf_dir {
            assert!(!bucket.is_empty(), "empty bucket for {path}");
            for (pos, &peer) in bucket.iter().enumerate() {
                assert_eq!(g.peer(peer).path(), *path);
                assert_eq!(g.dir_pos[peer], pos);
            }
        }
        // Occupied paths: all 2^d leaves plus possibly a few shallower
        // stragglers — never more than the whole trie.
        assert!(g.leaf_count() < 1 << (g.config().max_depth + 1));
    }

    #[test]
    fn reference_buckets_stay_bounded() {
        let (g, _, _) = grid(256, 6, 22);
        for p in g.iter() {
            for (level, bucket) in p.refs.iter().enumerate() {
                assert!(
                    bucket.len() <= g.config().max_refs,
                    "peer {} level {level} holds {} refs",
                    p.id(),
                    bucket.len()
                );
            }
        }
    }

    #[test]
    fn routing_reaches_responsible_peer() {
        let (g, mut rng, mut net) = grid(128, 5, 3);
        let mut failures = 0;
        for t in 0..200u32 {
            let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
            let origin = rng.index(g.len());
            match g.route(origin, key, None, &mut net, &mut rng) {
                Some((peer, _hops, _)) => {
                    assert!(
                        g.peer(peer)
                            .path()
                            .is_prefix_of_key(key, g.config().key_bits),
                        "landed on non-responsible peer"
                    );
                }
                None => failures += 1,
            }
        }
        assert!(failures <= 4, "too many routing failures: {failures}/200");
    }

    #[test]
    fn routing_cost_is_logarithmic() {
        let (g, mut rng, mut net) = grid(256, 6, 4);
        let mut total_hops = 0u32;
        let mut resolved = 0u32;
        for t in 0..300u32 {
            let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
            let origin = rng.index(g.len());
            if let Some((_, hops, _)) = g.route(origin, key, None, &mut net, &mut rng) {
                total_hops += hops;
                resolved += 1;
            }
        }
        assert!(resolved > 280);
        let mean = total_hops as f64 / resolved as f64;
        assert!(
            mean <= 6.5,
            "mean hops {mean} should be ≈ depth (6) or less"
        );
    }

    #[test]
    fn insert_then_query_roundtrip() {
        let (mut g, mut rng, mut net) = grid(64, 4, 5);
        let subject = PeerId(42);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(1),
            about: subject,
            round: 3,
        };
        let receipt = g.insert(0, key, c, None, &mut net, &mut rng);
        assert!(receipt.replicas_reached >= 1, "insert must reach a replica");
        let result = g.query(17, key, None, &mut net, &mut rng);
        assert!(result.is_resolved());
        assert!(
            result.answers.iter().any(|(_, items)| items.contains(&c)),
            "stored complaint must be retrievable"
        );
    }

    #[test]
    fn insert_replicates_to_group() {
        let (mut g, mut rng, mut net) = grid(64, 3, 6);
        let subject = PeerId(9);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(2),
            about: subject,
            round: 0,
        };
        let receipt = g.insert(1, key, c, None, &mut net, &mut rng);
        // 64 peers over 8 leaves: replica groups of ~8.
        assert!(
            receipt.replicas_reached >= 3,
            "expected multi-replica insert, got {}",
            receipt.replicas_reached
        );
        let holders = g.iter().filter(|p| p.stored().any(|x| x == c)).count();
        assert_eq!(holders, receipt.replicas_reached);
    }

    #[test]
    fn complaint_compaction_keeps_latest_round() {
        let (mut g, mut rng, mut net) = grid(64, 3, 13);
        let subject = PeerId(7);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let pair = |round| Complaint {
            by: PeerId(2),
            about: subject,
            round,
        };
        // Repeated inserts for the same (by, about) pair never grow the
        // stores; the latest round wins regardless of arrival order.
        for round in [1u64, 5, 3] {
            g.insert(0, key, pair(round), None, &mut net, &mut rng);
        }
        let holders: Vec<&PeerNode> = g.iter().filter(|p| p.store_len() > 0).collect();
        assert!(!holders.is_empty());
        for p in holders {
            assert_eq!(p.store_len(), 1, "store must stay compacted");
            assert_eq!(p.stored().next().expect("one item"), pair(5));
        }
        // A different pair is a separate entry.
        g.insert(
            0,
            key,
            Complaint {
                by: PeerId(3),
                about: subject,
                round: 0,
            },
            None,
            &mut net,
            &mut rng,
        );
        assert!(g.iter().any(|p| p.store_len() == 2));
    }

    #[test]
    fn repair_restores_routing_after_churn() {
        let (mut g, mut rng, mut net) = grid(192, 5, 14);
        // Take down 40% of peers.
        let alive: Vec<bool> = (0..g.len()).map(|_| !rng.chance(0.4)).collect();
        let success = |g: &PGrid, rng: &mut SimRng, net: &mut Network| {
            let mut ok = 0;
            for t in 0..100u32 {
                let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
                let origin = (0..g.len()).find(|&i| alive[i]).expect("someone is up");
                if g.route(origin, key, Some(&alive), net, rng).is_some() {
                    ok += 1;
                }
            }
            ok
        };
        let before = success(&g, &mut rng, &mut net);
        g.repair(&alive, 8 * g.len(), &mut rng);
        let after = success(&g, &mut rng, &mut net);
        assert!(
            after >= before && after >= 95,
            "repair should restore routing: {before} -> {after}"
        );
        // Live peers hold no references to dead peers right after the
        // eviction pass unless a later meeting gossiped one back in —
        // either way, the buckets stay bounded.
        for (i, p) in g.iter().enumerate() {
            if alive[i] {
                for bucket in &p.refs {
                    assert!(bucket.len() <= g.config().max_refs);
                }
            }
        }
    }

    #[test]
    fn query_with_down_replicas_still_resolves() {
        let (mut g, mut rng, mut net) = grid(96, 3, 7);
        let subject = PeerId(5);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(3),
            about: subject,
            round: 1,
        };
        g.insert(0, key, c, None, &mut net, &mut rng);
        // Take down 30% of peers (but keep the origin up).
        let mut alive = vec![true; g.len()];
        for (i, up) in alive.iter_mut().enumerate() {
            if i != 4 && rng.chance(0.3) {
                *up = false;
            }
        }
        let mut resolved = 0;
        for _ in 0..20 {
            let r = g.query(4, key, Some(&alive), &mut net, &mut rng);
            if r.is_resolved() {
                resolved += 1;
            }
        }
        assert!(resolved >= 15, "churn resilience too low: {resolved}/20");
    }

    #[test]
    fn down_origin_cannot_route() {
        let (g, mut rng, mut net) = grid(16, 2, 8);
        let key = crate::record::key_for_peer(PeerId(0), g.config().key_bits);
        let mut alive = vec![true; g.len()];
        alive[3] = false;
        assert!(g.route(3, key, Some(&alive), &mut net, &mut rng).is_none());
    }

    #[test]
    fn message_accounting() {
        let (mut g, mut rng, mut net) = grid(64, 4, 9);
        let key = crate::record::key_for_peer(PeerId(1), g.config().key_bits);
        let c = Complaint {
            by: PeerId(0),
            about: PeerId(1),
            round: 0,
        };
        g.insert(0, key, c, None, &mut net, &mut rng);
        g.query(5, key, None, &mut net, &mut rng);
        assert!(net.total_sent() > 0, "operations must send messages");
        assert!(net.sent("route") > 0 || net.sent("replicate") > 0);
    }

    #[test]
    fn config_for_population() {
        let cfg = PGridConfig::for_population(256, 4);
        assert_eq!(cfg.max_depth, 6); // 256/4 = 64 leaves = depth 6
        let cfg = PGridConfig::for_population(10, 100);
        assert_eq!(cfg.max_depth, 1); // clamped at 1
    }

    #[test]
    fn determinism_same_seed() {
        let (a, _, _) = grid(64, 4, 11);
        let (b, _, _) = grid(64, 4, 11);
        for i in 0..64 {
            assert_eq!(a.peer(i).path(), b.peer(i).path());
        }
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_build_panics() {
        let mut rng = SimRng::new(0);
        PGrid::build(0, PGridConfig::default(), &mut rng);
    }
}
