//! E4 bench: one market round per strategy (the cost of the strategy
//! comparison experiment's inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_market::prelude::*;
use trustex_market::sim::MarketConfig;

fn bench_market_per_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4/market_run");
    group.sample_size(10);
    for strategy in Strategy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let cfg = MarketConfig {
                        n_agents: 30,
                        rounds: 3,
                        sessions_per_round: 30,
                        strategy,
                        workload: Workload::FileSharing,
                        ..MarketConfig::default()
                    };
                    black_box(MarketSim::new(cfg).run())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_market_per_strategy);
criterion_main!(benches);
