//! Workload generators: the three application scenarios the paper's §3
//! names as hosts for trust-aware exchange.
//!
//! * [`Workload::Ebay`] — auction-style deals: a handful of items with
//!   heavy-tailed valuations (Resnick & Zeckhauser's eBay study is the
//!   paper's reference \[1\]).
//! * [`Workload::FileSharing`] — "exchanges of MP3 files for money in a
//!   P2P system": many small, near-uniform chunks.
//! * [`Workload::Teamwork`] — "trades of services in a teamwork
//!   environment": few tasks, mixed surplus (some tasks individually
//!   unprofitable but bundled).

use serde::{Deserialize, Serialize};
use trustex_core::deal::Deal;
use trustex_core::goods::Goods;
use trustex_core::money::Money;
use trustex_netsim::rng::SimRng;

/// A deal generator for one application scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Auction-style: 3–8 items, heavy-tailed values.
    Ebay,
    /// P2P file trading: 10–40 cheap chunks.
    FileSharing,
    /// Service trading: 4–10 tasks, mixed surplus.
    Teamwork,
}

impl Workload {
    /// All workloads, for sweeps.
    pub const ALL: [Workload; 3] = [Workload::Ebay, Workload::FileSharing, Workload::Teamwork];

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Workload::Ebay => "ebay",
            Workload::FileSharing => "file-sharing",
            Workload::Teamwork => "teamwork",
        }
    }

    /// Generates one deal. Prices split the surplus evenly (symmetric
    /// Nash bargaining), which always satisfies individual rationality.
    pub fn generate_deal(self, rng: &mut SimRng) -> Deal {
        let goods = self.generate_goods(rng);
        Deal::with_split_surplus(goods).expect("generated goods have non-negative total surplus")
    }

    /// Generates the goods set for one deal.
    pub fn generate_goods(self, rng: &mut SimRng) -> Goods {
        let pairs: Vec<(Money, Money)> = match self {
            Workload::Ebay => {
                let n = rng.range_u64(3, 9) as usize;
                (0..n)
                    .map(|_| {
                        let cost = rng.pareto(1.5, 2.0, 60.0);
                        let value = cost * rng.range_f64(1.2, 2.2);
                        (Money::from_f64(cost), Money::from_f64(value))
                    })
                    .collect()
            }
            Workload::FileSharing => {
                let n = rng.range_u64(10, 41) as usize;
                (0..n)
                    .map(|_| {
                        let cost = rng.range_f64(0.05, 0.5);
                        let value = cost * rng.range_f64(1.5, 3.0);
                        (Money::from_f64(cost), Money::from_f64(value))
                    })
                    .collect()
            }
            Workload::Teamwork => {
                let n = rng.range_u64(4, 11) as usize;
                let mut pairs: Vec<(Money, Money)> = (0..n)
                    .map(|_| {
                        let cost = rng.range_f64(3.0, 12.0);
                        // Roughly 1/3 of tasks are individually
                        // unprofitable (value < cost) but the bundle pays.
                        let factor = if rng.chance(0.33) {
                            rng.range_f64(0.4, 0.95)
                        } else {
                            rng.range_f64(1.3, 2.5)
                        };
                        (Money::from_f64(cost), Money::from_f64(cost * factor))
                    })
                    .collect();
                // Guarantee a positive total surplus by topping up the
                // last task if the draw went sour.
                let surplus: Money = pairs.iter().map(|(c, v)| *v - *c).sum();
                if !surplus.is_positive() {
                    let bump = surplus.abs() + Money::from_units(2);
                    let last = pairs.last_mut().expect("n ≥ 4");
                    last.1 += bump;
                }
                pairs
            }
        };
        Goods::new(pairs).expect("non-empty, non-negative by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_core::scheduler::min_required_margin;

    #[test]
    fn all_workloads_generate_valid_deals() {
        let mut rng = SimRng::new(1);
        for w in Workload::ALL {
            for _ in 0..50 {
                let deal = w.generate_deal(&mut rng);
                assert!(deal.goods().total_surplus().is_positive(), "{w:?}");
                assert!(deal.supplier_profit() >= Money::ZERO);
                assert!(deal.consumer_surplus() >= Money::ZERO);
            }
        }
    }

    #[test]
    fn ebay_sizes() {
        let mut rng = SimRng::new(2);
        for _ in 0..30 {
            let g = Workload::Ebay.generate_goods(&mut rng);
            assert!((3..=8).contains(&g.len()), "{}", g.len());
        }
    }

    #[test]
    fn file_sharing_many_small_chunks() {
        let mut rng = SimRng::new(3);
        let g = Workload::FileSharing.generate_goods(&mut rng);
        assert!((10..=40).contains(&g.len()));
        for item in g.iter() {
            assert!(item.supplier_cost() <= Money::from_f64(0.5));
            assert!(item.surplus().is_positive(), "chunks always profitable");
        }
    }

    #[test]
    fn teamwork_has_mixed_surplus_often() {
        let mut rng = SimRng::new(4);
        let mut saw_negative = false;
        for _ in 0..40 {
            let g = Workload::Teamwork.generate_goods(&mut rng);
            if g.iter().any(|i| i.surplus().is_negative()) {
                saw_negative = true;
            }
        }
        assert!(saw_negative, "teamwork should produce unprofitable tasks");
    }

    #[test]
    fn fully_safe_rarely_possible() {
        // The core premise of the paper: real deals almost never admit a
        // fully safe sequence.
        let mut rng = SimRng::new(5);
        let mut safe = 0;
        for _ in 0..60 {
            let deal = Workload::Ebay.generate_deal(&mut rng);
            if min_required_margin(deal.goods()).is_zero() {
                safe += 1;
            }
        }
        assert_eq!(safe, 0, "positive-cost items make ε = 0 infeasible");
    }

    #[test]
    fn determinism() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        for w in Workload::ALL {
            assert_eq!(w.generate_deal(&mut a), w.generate_deal(&mut b));
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Workload::Ebay.label(), "ebay");
        assert_eq!(Workload::FileSharing.label(), "file-sharing");
        assert_eq!(Workload::Teamwork.label(), "teamwork");
    }
}
