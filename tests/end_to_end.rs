//! Cross-crate integration: the full Figure 1 loop assembled by hand
//! from the public APIs of every crate, plus determinism guarantees.

use trust_aware_cooperation::core::prelude::*;
use trust_aware_cooperation::decision::prelude::*;
use trust_aware_cooperation::market::prelude::*;
use trust_aware_cooperation::market::sim::MarketConfig;
use trust_aware_cooperation::netsim::rng::SimRng;
use trust_aware_cooperation::reputation::prelude::*;
use trust_aware_cooperation::trust::prelude::*;

/// Reputation → trust → decision → exchange → feedback, by hand.
#[test]
fn figure_one_loop_assembled_manually() {
    let mut rng = SimRng::new(99);
    let mut reputation = ReputationSystem::new(64, ReputationConfig::default(), 99);
    let mut model = BetaTrust::new();

    let supplier = PeerId(3);
    let consumer = PeerId(8);

    // Round 1: no history — the engagement rule still permits a
    // prior-trust trade, with small margins.
    let deal = Workload::FileSharing.generate_deal(&mut rng);
    let estimate = model.predict(consumer);
    assert_eq!(estimate, TrustEstimate::UNKNOWN);

    let inputs = |est: TrustEstimate, deal: &Deal| PartyInputs {
        trust_in_opponent: est,
        exposure: ExposurePolicy::with_cap(deal.price()),
        engagement: EngagementRule::default(),
    };
    let nx = plan_exchange(
        &deal,
        inputs(estimate, &deal),
        inputs(estimate, &deal),
        PaymentPolicy::Lazy,
    )
    .expect("file-sharing deals need little collateral");

    // Execution: the consumer defects at its temptation peak.
    let mut defector = RationalDefector { stake: Money::ZERO };
    let outcome = execute(&deal, nx.plan.sequence(), &mut Honest, &mut defector);
    assert!(matches!(
        outcome.status,
        ExchangeStatus::Aborted {
            by: Role::Consumer,
            ..
        }
    ));
    // Bounded damage: the consumer's haul beyond its rightful surplus is
    // at most the margin the supplier granted.
    let excess = outcome.consumer_gain - deal.consumer_surplus();
    assert!(excess <= nx.margins.eps_supplier());

    // Feedback: direct experience + a complaint into the grid.
    model.record_direct(consumer, Conduct::Dishonest, 1);
    reputation.file_complaint(supplier, consumer, 1, None);

    // Round 2: the trust module now predicts dishonesty...
    let estimate = model.predict(consumer);
    assert!(estimate.p_honest < 0.5);
    // ...and the reputation system can corroborate it for strangers.
    let tally = reputation
        .query_tally(PeerId(40), consumer, None)
        .expect("grid resolves");
    assert_eq!(tally.received, 1);

    // The decision module now declines.
    let deal2 = Workload::FileSharing.generate_deal(&mut rng);
    let r = plan_exchange(
        &deal2,
        inputs(estimate, &deal2),
        inputs(TrustEstimate::new(0.9, 0.9), &deal2),
        PaymentPolicy::Lazy,
    );
    assert_eq!(r.unwrap_err(), PlanError::SupplierDeclined);
}

#[test]
fn whole_market_is_deterministic_across_runs() {
    let run = || {
        let cfg = MarketConfig {
            n_agents: 30,
            rounds: 5,
            sessions_per_round: 30,
            seed: 12345,
            ..MarketConfig::default()
        };
        MarketSim::new(cfg).run()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.aborted, b.aborted);
    assert_eq!(a.no_trade, b.no_trade);
    assert!((a.total_welfare - b.total_welfare).abs() < 1e-12);
    assert!((a.final_mae - b.final_mae).abs() < 1e-12);
}

#[test]
fn seeds_change_outcomes() {
    let run = |seed| {
        let cfg = MarketConfig {
            n_agents: 30,
            rounds: 5,
            sessions_per_round: 30,
            seed,
            ..MarketConfig::default()
        };
        MarketSim::new(cfg).run()
    };
    let a = run(1);
    let b = run(2);
    assert!(
        a.total_welfare != b.total_welfare || a.completed != b.completed,
        "different seeds should explore different histories"
    );
}

/// The verifier and the execution engine agree: any verified sequence
/// executed by parties whose stakes cover the margins completes.
#[test]
fn verified_sequences_complete_under_covered_stakes() {
    let mut rng = SimRng::new(5);
    for workload in Workload::ALL {
        for _ in 0..20 {
            let deal = workload.generate_deal(&mut rng);
            let margins =
                SafetyMargins::symmetric(deal.goods().total_surplus()).expect("non-negative");
            let plan = schedule(&deal, margins, PaymentPolicy::Balanced, Algorithm::Greedy)
                .expect("wide margins schedule");
            let mut s = RationalDefector {
                stake: margins.eps_consumer(),
            };
            let mut c = RationalDefector {
                stake: margins.eps_supplier(),
            };
            let out = execute(&deal, plan.sequence(), &mut s, &mut c);
            assert!(
                out.status.is_completed(),
                "{workload:?}: covered stakes must complete: {out:?}"
            );
        }
    }
}
