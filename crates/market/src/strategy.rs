//! Exchange-scheduling strategies compared in experiments E4/E8.
//!
//! * [`Strategy::SafeOnly`] — zero margins: trade only when a fully safe
//!   sequence exists (Sandholm's original regime). Forgoes almost all
//!   trades but never loses to a defector.
//! * [`Strategy::TrustAware`] — the paper's contribution: margins from
//!   each party's trust estimate via the decision pipeline.
//! * [`Strategy::UnsafeDeliverFirst`] — no safety at all, supplier
//!   delivers everything before payment (maximal supplier exposure).
//! * [`Strategy::UnsafePayFirst`] — consumer prepays everything
//!   (maximal consumer exposure).

use serde::{Deserialize, Serialize};
use trustex_core::deal::Deal;
use trustex_core::money::Money;
use trustex_core::policy::PaymentPolicy;
use trustex_core::safety::SafetyMargins;
use trustex_core::scheduler::{schedule, Algorithm};
use trustex_core::sequence::ExchangeSequence;
use trustex_decision::engage::EngagementRule;
use trustex_decision::exposure::ExposurePolicy;
use trustex_decision::negotiate::{plan_exchange, PartyInputs, PlanError};
use trustex_trust::model::TrustEstimate;

/// A scheduling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Only fully safe sequences (ε = 0).
    SafeOnly,
    /// Trust-derived margins (the paper's scheme).
    TrustAware,
    /// Goods first, money afterwards; no safety analysis.
    UnsafeDeliverFirst,
    /// Money first, goods afterwards; no safety analysis.
    UnsafePayFirst,
}

impl Strategy {
    /// All strategies, for sweeps.
    pub const ALL: [Strategy; 4] = [
        Strategy::SafeOnly,
        Strategy::TrustAware,
        Strategy::UnsafeDeliverFirst,
        Strategy::UnsafePayFirst,
    ];

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::SafeOnly => "safe-only",
            Strategy::TrustAware => "trust-aware",
            Strategy::UnsafeDeliverFirst => "deliver-first",
            Strategy::UnsafePayFirst => "pay-first",
        }
    }
}

/// Why no exchange was scheduled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NoTrade {
    /// A party declined on its trust estimate (trust-aware only).
    Declined,
    /// The (possibly zero) margins admit no sequence.
    Infeasible,
}

/// The scheduling decision of a strategy for one deal.
pub fn plan(
    strategy: Strategy,
    deal: &Deal,
    supplier_trust_in_consumer: TrustEstimate,
    consumer_trust_in_supplier: TrustEstimate,
    policy: PaymentPolicy,
) -> Result<ExchangeSequence, NoTrade> {
    match strategy {
        Strategy::SafeOnly => {
            schedule(deal, SafetyMargins::fully_safe(), policy, Algorithm::Greedy)
                .map(|v| v.into_sequence())
                .map_err(|_| NoTrade::Infeasible)
        }
        Strategy::TrustAware => {
            let mk_inputs = |trust: TrustEstimate| PartyInputs {
                trust_in_opponent: trust,
                exposure: ExposurePolicy::with_cap(deal.price()),
                engagement: EngagementRule::default(),
            };
            match plan_exchange(
                deal,
                mk_inputs(supplier_trust_in_consumer),
                mk_inputs(consumer_trust_in_supplier),
                policy,
            ) {
                Ok(nx) => Ok(nx.plan.into_sequence()),
                Err(PlanError::SupplierDeclined) | Err(PlanError::ConsumerDeclined) => {
                    Err(NoTrade::Declined)
                }
                Err(PlanError::MarginsTooTight { .. }) => Err(NoTrade::Infeasible),
            }
        }
        Strategy::UnsafeDeliverFirst | Strategy::UnsafePayFirst => {
            // Margins wide enough to admit any order; the payment policy
            // then pins the exposure to one side.
            let cap = deal.goods().total_consumer_value() + deal.price() + Money::from_units(1);
            let margins = SafetyMargins::new(cap, cap).expect("non-negative");
            let pay_policy = match strategy {
                Strategy::UnsafeDeliverFirst => PaymentPolicy::Lazy,
                _ => PaymentPolicy::Eager,
            };
            schedule(deal, margins, pay_policy, Algorithm::Greedy)
                .map(|v| v.into_sequence())
                .map_err(|_| NoTrade::Infeasible)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_core::goods::Goods;
    use trustex_core::sequence::Action;

    fn deal() -> Deal {
        let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap();
        Deal::new(goods, Money::from_units(9)).unwrap()
    }

    fn trusted() -> TrustEstimate {
        TrustEstimate::new(0.95, 1.0)
    }

    #[test]
    fn safe_only_refuses_positive_cost_deals() {
        let r = plan(
            Strategy::SafeOnly,
            &deal(),
            trusted(),
            trusted(),
            PaymentPolicy::Lazy,
        );
        assert_eq!(r.unwrap_err(), NoTrade::Infeasible);
    }

    #[test]
    fn trust_aware_trades_with_trust() {
        let seq = plan(
            Strategy::TrustAware,
            &deal(),
            trusted(),
            trusted(),
            PaymentPolicy::Lazy,
        )
        .expect("high trust trades");
        assert_eq!(seq.delivery_count(), 3);
    }

    #[test]
    fn trust_aware_declines_on_distrust() {
        let shady = TrustEstimate::new(0.1, 1.0);
        let r = plan(
            Strategy::TrustAware,
            &deal(),
            shady,
            trusted(),
            PaymentPolicy::Lazy,
        );
        assert_eq!(r.unwrap_err(), NoTrade::Declined);
    }

    #[test]
    fn deliver_first_ends_with_payment() {
        let seq = plan(
            Strategy::UnsafeDeliverFirst,
            &deal(),
            trusted(),
            trusted(),
            PaymentPolicy::Lazy,
        )
        .unwrap();
        assert!(matches!(seq.actions().last(), Some(Action::Pay(_))));
        // All deliveries precede the single payment.
        let first_pay = seq
            .actions()
            .iter()
            .position(|a| matches!(a, Action::Pay(_)))
            .unwrap();
        assert_eq!(first_pay, 3, "all 3 deliveries first: {:?}", seq.actions());
    }

    #[test]
    fn pay_first_starts_with_full_payment() {
        let seq = plan(
            Strategy::UnsafePayFirst,
            &deal(),
            trusted(),
            trusted(),
            PaymentPolicy::Lazy,
        )
        .unwrap();
        match seq.actions().first() {
            Some(Action::Pay(amount)) => assert_eq!(*amount, Money::from_units(9)),
            other => panic!("expected upfront payment, got {other:?}"),
        }
    }

    #[test]
    fn unsafe_strategies_ignore_trust() {
        let shady = TrustEstimate::new(0.0, 1.0);
        for s in [Strategy::UnsafeDeliverFirst, Strategy::UnsafePayFirst] {
            assert!(
                plan(s, &deal(), shady, shady, PaymentPolicy::Lazy).is_ok(),
                "{s:?} never declines"
            );
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Strategy::ALL.len(), 4);
        assert_eq!(Strategy::SafeOnly.label(), "safe-only");
        assert_eq!(Strategy::TrustAware.label(), "trust-aware");
    }
}
