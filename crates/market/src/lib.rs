//! # trustex-market — the end-to-end community simulation
//!
//! Everything above the individual exchange: populations of behavioural
//! agents ([`population`]), deal workloads from the paper's three
//! application scenarios ([`workload`]), scheduling strategies from
//! fully-safe to trust-aware to naive ([`strategy`]), the round-based
//! market loop closing the reference model's feedback cycle ([`sim`]),
//! accuracy/welfare metrics ([`metrics`]), the service replay driver
//! against the epoch-swapped trust engine ([`replay`]) and the full
//! experiment suite E0–E12 — including the adversary-zoo robustness
//! frontier E11 and the latency-shaped E12 — ([`experiments`]) with
//! text-table rendering ([`table`]).
//!
//! ```
//! use trustex_market::prelude::*;
//!
//! let cfg = MarketConfig {
//!     n_agents: 30,
//!     rounds: 4,
//!     sessions_per_round: 20,
//!     ..MarketConfig::default()
//! };
//! let report = MarketSim::new(cfg).run();
//! assert_eq!(report.sessions, 80);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod persistence;
pub mod population;
pub mod replay;
pub mod sim;
pub mod strategy;
pub mod table;
pub mod workload;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::experiments::{find as find_experiment, Experiment, Scale, ALL as EXPERIMENTS};
    pub use crate::metrics::{
        accuracy_metrics, cooperation_truth, decision_accuracy, rank_accuracy, trust_mae,
        trust_mae_with_truth, AccuracyMetrics,
    };
    pub use crate::persistence::{restore_service, snapshot_service, SERVICE_MAGIC};
    pub use crate::population::{AnyModel, Community, CommunitySnapshot, DefenseConfig, ModelKind};
    pub use crate::replay::{replay, ReplayCheck, ReplayConfig, ReplayReport};
    pub use crate::sim::{
        ChaosConfig, MarketConfig, MarketReport, MarketSim, RoundStats, ROUND_SPAN,
    };
    pub use crate::strategy::{plan, NoTrade, Strategy};
    pub use crate::table::{Cell, Table};
    pub use crate::workload::Workload;
}
