//! Fast end-to-end smoke test of the reproduction pipeline.
//!
//! Mirrors `cargo run -p trustex-bench --bin repro -- --smoke` twice
//! over: once in-process through the experiment registry (so a failure
//! points at the experiment that broke), and once by spawning the actual
//! `repro` binary (so the CLI surface — flag parsing, experiment
//! selection, exit codes — stays covered too).

use std::process::Command;
use trustex_bench::{find, render_block, Scale, ALL};

/// Every experiment runs at smoke scale and produces a non-trivial table.
#[test]
fn all_experiments_run_at_smoke_scale() {
    for experiment in &ALL {
        let table = (experiment.run)(Scale::Smoke);
        assert!(
            !table.rows().is_empty(),
            "experiment {} produced an empty table",
            experiment.id
        );
        let rendered = render_block(&table);
        assert!(
            rendered.trim_start().starts_with("##"),
            "experiment {} table does not render a markdown heading:\n{rendered}",
            experiment.id
        );
    }
}

/// The registry lookup used by the CLI finds every id and nothing else.
#[test]
fn registry_lookup_is_consistent() {
    for experiment in &ALL {
        let found = find(experiment.id).expect("registered id must resolve");
        assert_eq!(found.id, experiment.id);
    }
    assert!(find("e99").is_none());
    assert!(find("").is_none());
}

/// Scratch directory for one test's `repro` run, removed on drop.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("repro_smoke_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The real binary completes `--smoke` (with an explicit thread count),
/// prints every experiment's tag and writes machine-readable wall-clock
/// timings to `BENCH_repro.json`.
#[test]
fn repro_binary_smoke_run_succeeds_and_emits_timings() {
    let scratch = ScratchDir::new("full");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--smoke", "--threads", "2"])
        .current_dir(&scratch.0)
        .output()
        .expect("failed to spawn repro binary");
    assert!(
        output.status.success(),
        "repro --smoke exited with {:?}\nstderr: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("smoke scale"), "missing smoke-scale header");
    for experiment in &ALL {
        assert!(
            stdout.contains(&format!("[{}]", experiment.id)),
            "experiment {} missing from repro output",
            experiment.id
        );
    }
    let json = std::fs::read_to_string(scratch.0.join("BENCH_repro.json"))
        .expect("repro must write BENCH_repro.json");
    assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    for experiment in &ALL {
        assert!(
            json.contains(&format!("\"{}\": ", experiment.id)),
            "experiment {} missing from BENCH_repro.json:\n{json}",
            experiment.id
        );
    }
}

/// `--bench-out` redirects the timings file and subsets only time what
/// actually ran.
#[test]
fn repro_binary_bench_out_subset() {
    let scratch = ScratchDir::new("subset");
    let out_path = scratch.0.join("timings.json");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--smoke", "--bench-out"])
        .arg(&out_path)
        .args(["e0", "e4"])
        .current_dir(&scratch.0)
        .output()
        .expect("failed to spawn repro binary");
    assert!(output.status.success());
    let json = std::fs::read_to_string(&out_path).expect("custom bench-out path");
    assert!(json.contains("\"e0\": "));
    assert!(json.contains("\"e4\": "));
    assert!(!json.contains("\"e8\""), "unran experiment timed:\n{json}");
    assert!(
        !scratch.0.join("BENCH_repro.json").exists(),
        "default path must not be written when --bench-out is given"
    );
}

/// `--only` runs exactly the comma-separated subset — the targeted form
/// perf iteration uses (`--only e5,e8,e9` skips the expensive e6) — and
/// composes with `--bench-out`.
#[test]
fn repro_binary_only_runs_exactly_the_listed_subset() {
    let scratch = ScratchDir::new("only");
    let out_path = scratch.0.join("timings.json");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--smoke", "--only", "e5,e9", "--bench-out"])
        .arg(&out_path)
        .current_dir(&scratch.0)
        .output()
        .expect("failed to spawn repro binary");
    assert!(
        output.status.success(),
        "repro --only exited with {:?}\nstderr: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let json = std::fs::read_to_string(&out_path).expect("bench-out written");
    for ran in ["e5", "e9"] {
        assert!(stdout.contains(&format!("[{ran}]")), "{ran} missing");
        assert!(json.contains(&format!("\"{ran}\": ")), "{ran} not timed");
    }
    for skipped in ["e0", "e6", "e8"] {
        assert!(
            !stdout.contains(&format!("[{skipped}]")),
            "{skipped} ran despite --only"
        );
        assert!(!json.contains(&format!("\"{skipped}\"")));
    }
}

/// Unknown, empty or missing `--only` ids are rejected with exit code 2
/// before any experiment runs.
#[test]
fn repro_binary_only_rejects_bad_id_lists() {
    let scratch = ScratchDir::new("only_bad");
    for (args, needle) in [
        (&["--only", "e5,e99"][..], "unknown experiment id"),
        (&["--only", "e5,,e9"][..], "empty experiment id"),
        (&["--only", ""][..], "empty experiment id"),
        (&["--only"][..], "--only requires"),
        // Duplicates would run an experiment twice and write duplicate
        // keys into the timings JSON.
        (&["--only", "e5,e5"][..], "duplicate experiment id"),
        (&["e5", "--only", "e5"][..], "duplicate experiment id"),
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .current_dir(&scratch.0)
            .output()
            .expect("failed to spawn repro binary");
        assert_eq!(output.status.code(), Some(2), "args: {args:?}");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(needle),
            "args {args:?}: stderr missing {needle:?}:\n{stderr}"
        );
        assert!(
            output.stdout.is_empty(),
            "args {args:?}: work ran before the rejection"
        );
    }
}

/// Unknown experiment ids are rejected with exit code 2.
#[test]
fn repro_binary_rejects_unknown_id() {
    let scratch = ScratchDir::new("bad_id");
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--smoke", "e99"])
        .current_dir(&scratch.0)
        .output()
        .expect("failed to spawn repro binary");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown experiment id"));
}

/// Malformed flags are rejected with exit code 2 before any work runs.
#[test]
fn repro_binary_rejects_bad_flags() {
    let scratch = ScratchDir::new("bad_flags");
    for args in [
        &["--threads", "zero"][..],
        &["--threads", "0"][..],
        &["--threads"][..],
        &["--frobnicate"][..],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .current_dir(&scratch.0)
            .output()
            .expect("failed to spawn repro binary");
        assert_eq!(output.status.code(), Some(2), "args: {args:?}");
    }
}
