//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the (small) subset of proptest that the workspace's
//! property tests use:
//!
//! - the [`Strategy`] trait with [`Strategy::prop_map`], implemented for
//!   integer/float ranges, tuples of strategies, and [`Just`];
//! - [`collection::vec`] with proptest's `SizeRange` conversions;
//! - [`any`] for the primitive types the tests draw;
//! - the [`proptest!`] macro (including `#![proptest_config(..)]`),
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted
//! failure seeds: generation is fully deterministic — the RNG stream for
//! every case is derived from the test's name and the case index — so a
//! failure reproduces exactly by re-running the same test binary. Each
//! test runs `ProptestConfig::cases` accepted cases (default 256,
//! overridable via the `PROPTEST_CASES` environment variable); cases
//! rejected by [`prop_assume!`] are retried with fresh inputs up to a
//! 64× attempt budget; exhausting that budget fails the test (as real
//! proptest does on too many global rejects) rather than passing
//! vacuously.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG machinery driving every strategy.
pub mod test_runner {
    /// SplitMix64 generator; the whole framework draws from this.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one test case, derived from the test name and the
        /// attempt index so every case is independent and reproducible.
        pub fn for_case(test_name: &str, attempt: u64) -> Self {
            // FNV-1a over the test name, then perturb by the attempt.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit draw (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the case is a genuine counterexample.
    Fail(String),
    /// The drawn inputs did not satisfy a [`prop_assume!`] precondition.
    Reject,
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection (input precondition unmet).
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A generator of test-case values, mirroring `proptest::strategy::Strategy`.
///
/// The stub keeps only what the workspace needs: sampling and
/// [`prop_map`](Strategy::prop_map). There is no shrinking tree.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Uniform over [0,1] *inclusive* so the upper bound is reachable.
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Whole-domain strategy for `A`, mirroring `proptest::prelude::any`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy and length range, mirroring
    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the tests glob-import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespaced re-exports (`prop::collection::vec`, …), mirroring the
    /// `prop` module the real prelude exposes.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a property test; on failure the current
/// case is reported as a counterexample.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    };
}

/// Assert two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                $($fmt)+
            )));
        }
    }};
}

/// Assert two values are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                left
            )));
        }
    }};
}

/// Reject the current case unless a precondition holds; rejected cases
/// are retried with fresh inputs and do not count toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Supports the `#![proptest_config(expr)]` inner attribute and any
/// number of `#[test] fn name(pat in strategy, …) { … }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let max_attempts = u64::from(config.cases) * 64;
            let mut accepted: u32 = 0;
            let mut attempt: u64 = 0;
            while accepted < config.cases && attempt < max_attempts {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    ::core::concat!(::core::module_path!(), "::", ::core::stringify!($name)),
                    attempt,
                );
                attempt += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "proptest '{}' failed at attempt {} (re-run this binary to reproduce deterministically):\n{}",
                        ::core::stringify!($name),
                        attempt - 1,
                        msg
                    ),
                }
            }
            if accepted < config.cases {
                panic!(
                    "proptest '{}' gave up: only {} of {} cases accepted after {} attempts \
                     (prop_assume! rejects nearly every input — fix the generator or the precondition)",
                    ::core::stringify!($name),
                    accepted,
                    config.cases,
                    attempt
                );
            }
        }
    )*};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(a in 3u32..17, b in -5i64..=5, x in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&x));
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec(any::<bool>(), 2..=6)) {
            prop_assert!((2..=6).contains(&v.len()));
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..10, 0u32..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    proptest! {
        /// A failing property must actually fail the test — a property
        /// framework that cannot fail is worse than none.
        #[test]
        #[should_panic(expected = "proptest 'failing_property_panics' failed")]
        fn failing_property_panics(n in 0u32..100) {
            prop_assert!(n > 1000, "n = {n} is not > 1000");
        }

        /// Exhausting the rejection budget is an error, not a vacuous
        /// pass: a precondition that filters out (nearly) every input
        /// must be heard about, as in real proptest.
        #[test]
        #[should_panic(expected = "proptest 'reject_everything_gives_up' gave up")]
        fn reject_everything_gives_up(n in 0u32..100) {
            prop_assume!(n > 1000);
        }
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::for_case("some::test", 7);
        let mut b = TestRng::for_case("some::test", 7);
        let mut c = TestRng::for_case("some::test", 8);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn prop_map_transforms() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let doubled = (1u32..5).prop_map(|n| n * 2);
        let mut rng = TestRng::for_case("map", 0);
        for _ in 0..64 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
    }
}
