//! CRC-32C (Castagnoli) checksums for the durable-evidence codec.
//!
//! The persistence layer (`trustex-persist`) frames every snapshot
//! section and evidence-log record with a checksum so crash-truncated or
//! bit-flipped state surfaces as a typed decode error instead of a
//! silently-wrong trust table. The Castagnoli polynomial is the one used
//! by iSCSI/ext4 (better error-detection properties than CRC-32/ISO-HDLC
//! for short messages), computed with a table-driven byte-at-a-time loop
//! — zero dependencies, deterministic across platforms.
//!
//! ```
//! use trustex_netsim::crc::{crc32c, Crc32};
//!
//! assert_eq!(crc32c(b"123456789"), 0xE306_9283);
//! let mut incremental = Crc32::new();
//! incremental.update(b"1234");
//! incremental.update(b"56789");
//! assert_eq!(incremental.finish(), crc32c(b"123456789"));
//! ```

/// Reflected CRC-32C polynomial (0x1EDC6F41 bit-reversed).
const POLY: u32 = 0x82F6_3B78;

/// The byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Incremental CRC-32C state, for checksumming data produced in chunks.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32 { state: !0 }
    }

    /// Feeds a chunk of bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far. Does not consume the
    /// state: more updates may follow (they continue the same stream).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32C of a byte slice.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The catalogued CRC-32C check value ("123456789" → 0xE3069283)
    /// plus a couple of edge inputs.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 7, 500, 999, 1000] {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finish(), crc32c(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..64u8).collect();
        let reference = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32c(&corrupted), reference, "byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut crc = Crc32::new();
        crc.update(b"hello");
        let first = crc.finish();
        assert_eq!(crc.finish(), first);
        crc.update(b" world");
        assert_eq!(crc.finish(), crc32c(b"hello world"));
    }
}
