//! Deterministic pseudo-random number generation for simulations.
//!
//! [`SimRng`] implements xoshiro256\*\* (Blackman & Vigna) seeded through
//! SplitMix64. It is deliberately *not* a `rand` adapter: the experiment
//! suite of the paper reproduction promises bit-for-bit reproducibility
//! across platforms and crate upgrades, so the generator lives in-tree and
//! its algorithm is frozen.
//!
//! The generator is cheap to fork ([`SimRng::fork`]), which the simulation
//! harness uses to give every peer, every round and every experiment arm
//! an independent but fully determined random stream.

use std::collections::HashMap;
use std::fmt;

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* random number generator.
///
/// Two generators created with the same seed produce identical streams.
///
/// # Examples
///
/// ```
/// use trustex_netsim::rng::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The internal state is an implementation detail; show a fingerprint.
        write!(
            f,
            "SimRng({:#018x})",
            self.s[0] ^ self.s[1] ^ self.s[2] ^ self.s[3]
        )
    }
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64 so that similar seeds
    /// (e.g. `0` and `1`) still yield unrelated streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Forking advances `self` by one draw; the fork's stream is a pure
    /// function of `(parent state, stream)`, so re-running a simulation
    /// reproduces every sub-stream.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(base ^ stream.wrapping_mul(GOLDEN_GAMMA))
    }

    /// Returns the next raw 64-bit output (xoshiro256\*\*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fills `out` with uniform `f64`s in `[0, 1)`, one per slot.
    ///
    /// Exactly equivalent to calling [`SimRng::f64`] `out.len()` times —
    /// same draws, same stream position afterwards — but in one pass, so
    /// bulk generators (e.g. the E2 instance builder) can batch their
    /// draws without touching the pinned stream.
    #[inline]
    pub fn fill_f64(&mut self, out: &mut [f64]) {
        for slot in out {
            *slot = self.f64();
        }
    }

    /// Returns a uniform integer in `[0, n)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below requires n > 0");
        // Rejection sampling: accept draws below the largest multiple of n.
        let threshold = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < threshold {
                return v % n;
            }
        }
    }

    /// Returns a uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range_u64 requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        lo + self.f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.f64() < p
    }

    /// Draws from a normal distribution via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0) by mapping the first draw into (0, 1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + std_dev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Draws from an exponential distribution with the given rate (λ).
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = 1.0 - self.f64(); // in (0, 1]
        -u.ln() / rate
    }

    /// Draws from a bounded Pareto-like heavy-tailed distribution.
    ///
    /// Used by workload generators for item valuations; `alpha` controls
    /// tail weight (smaller = heavier), output lies in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` or `lo <= 0` or `lo >= hi`.
    pub fn pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && lo < hi);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto distribution.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
        x.clamp(lo, hi)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.index(xs.len())])
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    ///
    /// Returns fewer than `k` indices when `k > n`. Dense requests
    /// (`k ≳ n/4`) materialise the `0..n` array and swap in place; sparse
    /// requests (the common `k ≪ n` gossip/witness case at 10⁴–10⁵ peer
    /// scale) simulate the same swaps through a hash map of displaced
    /// positions in `O(k)` memory. Both paths consume the identical RNG
    /// stream and return the identical sample.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        if k.saturating_mul(4) >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.index(n - i);
                idx.swap(i, j);
            }
            idx.truncate(k);
            idx
        } else {
            // Sparse: `displaced[p]` holds the value a full array would
            // have at position `p` after the swaps so far. Positions
            // `< i` are never drawn again, so only displaced positions
            // `>= i` ever need to be remembered.
            let mut displaced: HashMap<usize, usize> = HashMap::new();
            let mut out = Vec::with_capacity(k);
            for i in 0..k {
                let j = i + self.index(n - i);
                let value_at_j = displaced.get(&j).copied().unwrap_or(j);
                let value_at_i = displaced.get(&i).copied().unwrap_or(i);
                out.push(value_at_j);
                displaced.insert(j, value_at_i);
            }
            out
        }
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to each non-negative weight. Returns `None` when all weights are
    /// zero or the slice is empty.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 || !total.is_finite() {
            return None;
        }
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if *w > 0.0 {
                if target < *w {
                    return Some(i);
                }
                target -= *w;
            }
        }
        // Floating-point edge: return the last positive-weight index.
        weights.iter().rposition(|w| *w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(123);
        let mut b = SimRng::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(9);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x), "{x} out of range");
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = SimRng::new(77);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    /// `fill_f64` must be stream-identical to repeated `f64()` calls:
    /// same values, same generator state afterwards.
    #[test]
    fn fill_f64_matches_repeated_draws() {
        let mut batched = SimRng::new(0xF111);
        let mut scalar = batched.clone();
        let mut buf = [0.0f64; 257];
        batched.fill_f64(&mut buf);
        for (i, v) in buf.iter().enumerate() {
            assert_eq!(*v, scalar.f64(), "draw {i} diverged");
        }
        assert_eq!(batched, scalar, "stream positions diverged");
        batched.fill_f64(&mut []);
        assert_eq!(batched, scalar, "empty fill must not consume draws");
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut rng = SimRng::new(5);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn below_zero_panics() {
        SimRng::new(0).below(0);
    }

    #[test]
    fn range_u64_bounds() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(3);
        assert!(rng.chance(1.0));
        assert!(rng.chance(2.0));
        assert!(!rng.chance(0.0));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SimRng::new(8);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(21);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = SimRng::new(31);
        let n = 200_000;
        let mean = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn pareto_bounded() {
        let mut rng = SimRng::new(41);
        for _ in 0..10_000 {
            let x = rng.pareto(1.2, 1.0, 100.0);
            assert!((1.0..=100.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(13);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_moves_elements() {
        let mut rng = SimRng::new(17);
        let orig: Vec<u32> = (0..100).collect();
        let mut xs = orig.clone();
        rng.shuffle(&mut xs);
        assert_ne!(xs, orig, "a 100-element shuffle should not be identity");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SimRng::new(19);
        let s = rng.sample_indices(100, 30);
        assert_eq!(s.len(), 30);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 30);
        assert!(t.iter().all(|i| *i < 100));
    }

    #[test]
    fn sample_indices_saturates() {
        let mut rng = SimRng::new(23);
        let s = rng.sample_indices(4, 10);
        assert_eq!(s.len(), 4);
    }

    /// Reference partial Fisher–Yates over the full `0..n` array.
    fn sample_indices_dense_reference(rng: &mut SimRng, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + rng.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// The sparse (hash-map) path must return exactly what the dense
    /// full-array swap would, consuming the identical stream — so the
    /// k ≪ n fast path cannot silently change pinned experiment streams.
    #[test]
    fn sample_indices_sparse_matches_dense_reference() {
        for (n, k) in [
            (100, 3),
            (1000, 1),
            (1000, 10),
            (50_000, 40),
            (17, 4),
            (64, 15),
        ] {
            let mut fast = SimRng::new(0xC0FFEE + n as u64 + k as u64);
            let mut slow = fast.clone();
            let got = fast.sample_indices(n, k);
            let expected = sample_indices_dense_reference(&mut slow, n, k);
            assert_eq!(got, expected, "n={n} k={k}");
            assert_eq!(fast, slow, "stream consumption differs for n={n} k={k}");
        }
    }

    #[test]
    fn sample_indices_sparse_distinct_at_scale() {
        let mut rng = SimRng::new(0xBEEF);
        let s = rng.sample_indices(100_000, 64);
        assert_eq!(s.len(), 64);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 64, "sparse sample repeated an index");
        assert!(t.iter().all(|i| *i < 100_000));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(29);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn weighted_index_all_zero() {
        let mut rng = SimRng::new(1);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[]), None);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u64(), fb.next_u64());
        let mut c = SimRng::new(99);
        let mut f2 = c.fork(2);
        assert_ne!(SimRng::new(99).fork(1).next_u64(), f2.next_u64());
    }

    #[test]
    fn pick_empty_is_none() {
        let mut rng = SimRng::new(2);
        let empty: [u8; 0] = [];
        assert_eq!(rng.pick(&empty), None);
        assert_eq!(rng.pick(&[42]), Some(&42));
    }

    #[test]
    fn debug_shows_fingerprint() {
        let rng = SimRng::new(4);
        let s = format!("{rng:?}");
        assert!(s.starts_with("SimRng(0x"), "{s}");
    }
}
