//! Little-endian primitive readers and writers.
//!
//! [`ByteWriter`] appends fixed-width little-endian fields to a growable
//! buffer; [`ByteReader`] is its total inverse — every read returns
//! `Result` and a short read is a typed [`PersistError::Truncated`],
//! never a panic. Length prefixes go through [`ByteReader::take_len`],
//! which bounds the declared count by the bytes actually remaining so a
//! corrupted length cannot trigger a pathological allocation.

use crate::PersistError;

/// Appends little-endian fields to an owned buffer.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// A writer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The buffer written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as the little-endian bits (`f64::to_bits`), so
    /// the round trip is bit-exact including signed zeros.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a collection length as a `u64` prefix.
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Appends raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }
}

/// A cursor over a byte slice whose every read is checked.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a slice, positioned at the start.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Errors with [`PersistError::TrailingBytes`] unless the reader is
    /// exactly exhausted — the final check of every decode.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(PersistError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a bool byte, rejecting anything but 0 or 1.
    pub fn take_bool(&mut self) -> Result<bool, PersistError> {
        match self.take(1, "bool")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PersistError::Malformed {
                context: "bool byte out of range",
            }),
        }
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, PersistError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its stored bits (bit-exact, NaN included —
    /// callers that must exclude NaN validate after reading).
    pub fn take_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads an `f64` and rejects non-finite values — the guard for
    /// state fields that arithmetic downstream assumes finite.
    pub fn take_finite_f64(&mut self) -> Result<f64, PersistError> {
        let v = self.take_f64()?;
        if v.is_finite() {
            Ok(v)
        } else {
            Err(PersistError::Malformed {
                context: "non-finite f64 in state",
            })
        }
    }

    /// Reads a `u64` length prefix for elements of at least
    /// `min_element_size` bytes each, bounding it by the remaining input
    /// so a corrupted length cannot drive a huge allocation.
    pub fn take_len(&mut self, min_element_size: usize) -> Result<usize, PersistError> {
        let len = self.take_u64()?;
        let cap = self
            .remaining()
            .checked_div(min_element_size)
            .map_or(u64::MAX, |c| c as u64);
        if len > cap {
            return Err(PersistError::Malformed {
                context: "length prefix exceeds remaining input",
            });
        }
        Ok(len as usize)
    }

    /// Reads exactly `n` raw bytes.
    pub fn take_bytes(
        &mut self,
        n: usize,
        context: &'static str,
    ) -> Result<&'a [u8], PersistError> {
        self.take(n, context)
    }

    /// Reads a fixed 4-byte array (tags, magics).
    pub fn take_tag(&mut self, context: &'static str) -> Result<[u8; 4], PersistError> {
        let b = self.take(4, context)?;
        Ok([b[0], b[1], b[2], b[3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(-0.0);
        w.put_f64(std::f64::consts::PI);
        w.put_len(3);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 0xAB);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_u16().unwrap(), 0xBEEF);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        // Bit-exact: -0.0 keeps its sign bit.
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.take_len(0).unwrap(), 3);
        r.finish().unwrap();
    }

    #[test]
    fn short_reads_are_truncated_errors() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        assert!(matches!(
            r.take_u64(),
            Err(PersistError::Truncated { context: "u64" })
        ));
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.take_u16().unwrap(), 0x0201);
    }

    #[test]
    fn bool_rejects_junk() {
        let mut r = ByteReader::new(&[2]);
        assert!(matches!(r.take_bool(), Err(PersistError::Malformed { .. })));
    }

    #[test]
    fn length_prefix_is_allocation_guarded() {
        let mut w = ByteWriter::new();
        w.put_len(usize::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.take_len(8), Err(PersistError::Malformed { .. })));
    }

    #[test]
    fn finish_flags_trailing_bytes() {
        let mut r = ByteReader::new(&[0, 0, 0]);
        r.take_u8().unwrap();
        assert_eq!(r.finish(), Err(PersistError::TrailingBytes { count: 2 }));
    }

    #[test]
    fn non_finite_guard() {
        let mut w = ByteWriter::new();
        w.put_f64(f64::NAN);
        w.put_f64(f64::INFINITY);
        w.put_f64(1.5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.take_finite_f64().is_err());
        assert!(r.take_finite_f64().is_err());
        assert_eq!(r.take_finite_f64().unwrap(), 1.5);
    }
}
