//! Property suite for the adversary zoo.
//!
//! The zoo's coordination hooks (campaign draws, Sybil echoes, the
//! whitewash sweep, the defense bookkeeping) must be **RNG-neutral**
//! when inert: a zoo population at zero coordination has to replay the
//! pre-zoo independent baseline bit for bit, and a defense knob that
//! never binds must not perturb a single draw. These properties pin
//! that contract across sampled attacker fractions, seeds and models.

use proptest::{prop_assert_eq, proptest, ProptestConfig};
use trustex_agents::adversary::{zoo_mix, Faction, VICTIM_SHARE};
use trustex_agents::behavior::ExchangeBehavior;
use trustex_agents::profile::{AgentProfile, PopulationMix};
use trustex_agents::reporting::ReportingBehavior;
use trustex_market::prelude::*;

/// The hand-built independent mix a zero-coordination zoo must equal:
/// the two honest entries `mix_of` emits, then one baseline entry per
/// archetype in zoo order — colluders and sybils decay to liars, the
/// rest to truthful defectors — with **no** zoo types involved.
fn independent_equivalent(attacker_fraction: f64) -> PopulationMix {
    let defect = ExchangeBehavior::Rational { stake_micros: 0 };
    let liar = AgentProfile {
        exchange: defect,
        reporting: ReportingBehavior::Liar,
        faction: Faction::None,
    };
    let truthful = AgentProfile {
        exchange: defect,
        reporting: ReportingBehavior::Truthful,
        faction: Faction::None,
    };
    let honest = 1.0 - attacker_fraction;
    let share = attacker_fraction / 5.0;
    PopulationMix::new(vec![
        (honest * (1.0 - VICTIM_SHARE), AgentProfile::honest()),
        (honest * VICTIM_SHARE, AgentProfile::honest()),
        (share, liar),     // colluder
        (share, truthful), // slanderer
        (share, liar),     // sybil
        (share, truthful), // oscillator
        (share, truthful), // whitewasher
    ])
}

fn base_cfg(model: ModelKind, seed: u64) -> MarketConfig {
    MarketConfig {
        n_agents: 30,
        rounds: 4,
        sessions_per_round: 25,
        model,
        seed,
        ..MarketConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A zoo population at coordination 0 produces a bit-identical
    /// `MarketReport` to the manually built independent baseline, for
    /// any attacker fraction, seed and trust model.
    #[test]
    fn zero_coordination_replays_the_independent_baseline(
        frac in 0.0f64..0.6,
        seed in 0u64..100_000,
        model_idx in 0usize..4,
    ) {
        let base = base_cfg(ModelKind::ALL[model_idx], seed);
        let zoo = MarketSim::new(MarketConfig {
            mix: zoo_mix(frac, 0.0),
            ..base.clone()
        })
        .run();
        let independent = MarketSim::new(MarketConfig {
            mix: independent_equivalent(frac),
            ..base
        })
        .run();
        prop_assert_eq!(zoo, independent);
    }

    /// A report-rate cap that can never bind is a strict no-op: the
    /// per-witness bookkeeping must not consume RNG or shift any
    /// delivery, even under a fully coordinated attack.
    #[test]
    fn unreachable_rate_cap_is_a_no_op(
        frac in 0.0f64..0.6,
        coord in 0.0f64..1.0,
        seed in 0u64..100_000,
    ) {
        let base = MarketConfig {
            mix: zoo_mix(frac, coord),
            ..base_cfg(ModelKind::Beta, seed)
        };
        let uncapped = MarketSim::new(base.clone()).run();
        let capped = MarketSim::new(MarketConfig {
            defense: DefenseConfig {
                scorer_weighted: false,
                report_rate_cap: Some(u32::MAX),
            },
            ..base
        })
        .run();
        prop_assert_eq!(capped, uncapped);
    }
}

/// Both defense knobs visibly change outcomes under a coordinated
/// attack — they are live levers, not dead configuration.
#[test]
fn defense_knobs_engage_under_attack() {
    let base = MarketConfig {
        n_agents: 40,
        rounds: 6,
        sessions_per_round: 40,
        mix: zoo_mix(0.4, 1.0),
        model: ModelKind::Beta,
        seed: 11,
        ..MarketConfig::default()
    };
    let off = MarketSim::new(base.clone()).run();
    let scorer = MarketSim::new(MarketConfig {
        defense: DefenseConfig {
            scorer_weighted: true,
            report_rate_cap: None,
        },
        ..base.clone()
    })
    .run();
    let capped = MarketSim::new(MarketConfig {
        defense: DefenseConfig {
            scorer_weighted: false,
            report_rate_cap: Some(2),
        },
        ..base
    })
    .run();
    assert_ne!(off, scorer, "scorer weighting must engage");
    assert_ne!(off, capped, "a tight rate cap must engage");
}
