//! The engage-or-decline decision: Figure 1's right-hand module.
//!
//! Before scheduling anything, each party decides whether the exchange is
//! worth entering at all: the expected gain under the trust estimate —
//! completion gain on honest behaviour, worst-case exposure loss on
//! defection — must clear a threshold.

use serde::{Deserialize, Serialize};
use trustex_core::money::Money;
use trustex_trust::model::TrustEstimate;

use crate::exposure::effective_dishonesty;

/// Why an exchange was declined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeclineReason {
    /// Expected gain below the configured threshold.
    ExpectedGainTooLow,
    /// The opponent's dishonesty estimate exceeds the hard limit.
    OpponentTooRisky,
}

/// Outcome of the engagement decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Engagement {
    /// Proceed to scheduling; the expected gain is attached.
    Engage {
        /// Expected gain under the trust estimate.
        expected_gain: Money,
    },
    /// Do not trade.
    Decline {
        /// Why.
        reason: DeclineReason,
    },
}

impl Engagement {
    /// Whether the decision is to engage.
    pub fn is_engage(self) -> bool {
        matches!(self, Engagement::Engage { .. })
    }
}

/// Parameters of the engagement rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngagementRule {
    /// Minimum acceptable expected gain (often zero).
    pub min_expected_gain: Money,
    /// Hard ceiling on the opponent's effective dishonesty probability;
    /// above it the party refuses regardless of stakes.
    pub max_dishonesty: f64,
}

impl Default for EngagementRule {
    fn default() -> Self {
        EngagementRule {
            min_expected_gain: Money::ZERO,
            max_dishonesty: 0.5,
        }
    }
}

/// Decides whether to enter an exchange.
///
/// `gain` is the party's completion gain; `exposure` the bound it would
/// grant (its worst-case loss). Expected gain =
/// `(1 − p̂)·gain − p̂·exposure` with `p̂` the confidence-blended
/// dishonesty estimate.
///
/// # Examples
///
/// ```
/// use trustex_core::money::Money;
/// use trustex_decision::engage::{decide, EngagementRule};
/// use trustex_trust::model::TrustEstimate;
///
/// let rule = EngagementRule::default();
/// let trusted = TrustEstimate::new(0.95, 1.0);
/// let d = decide(trusted, Money::from_units(10), Money::from_units(5), rule);
/// assert!(d.is_engage());
/// ```
pub fn decide(
    opponent: TrustEstimate,
    gain: Money,
    exposure: Money,
    rule: EngagementRule,
) -> Engagement {
    let p = effective_dishonesty(opponent);
    if p > rule.max_dishonesty {
        return Engagement::Decline {
            reason: DeclineReason::OpponentTooRisky,
        };
    }
    let expected = gain.scale(1.0 - p) - exposure.scale(p);
    if expected < rule.min_expected_gain {
        Engagement::Decline {
            reason: DeclineReason::ExpectedGainTooLow,
        }
    } else {
        Engagement::Engage {
            expected_gain: expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trusted_opponent_engaged() {
        let d = decide(
            TrustEstimate::new(0.95, 1.0),
            Money::from_units(10),
            Money::from_units(5),
            EngagementRule::default(),
        );
        match d {
            Engagement::Engage { expected_gain } => {
                // 0.95·10 − 0.05·5 = 9.25.
                assert_eq!(expected_gain, Money::from_f64(9.25));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn risky_opponent_declined_hard() {
        let d = decide(
            TrustEstimate::new(0.2, 1.0), // p̂ = 0.8 > 0.5
            Money::from_units(1_000),
            Money::ZERO,
            EngagementRule::default(),
        );
        assert_eq!(
            d,
            Engagement::Decline {
                reason: DeclineReason::OpponentTooRisky
            }
        );
    }

    #[test]
    fn low_expected_gain_declined() {
        // p̂ = 0.4: expected = 0.6·1 − 0.4·10 = −3.4 < 0.
        let d = decide(
            TrustEstimate::new(0.6, 1.0),
            Money::from_units(1),
            Money::from_units(10),
            EngagementRule::default(),
        );
        assert_eq!(
            d,
            Engagement::Decline {
                reason: DeclineReason::ExpectedGainTooLow
            }
        );
        assert!(!d.is_engage());
    }

    #[test]
    fn unknown_opponent_at_prior_boundary() {
        // Unknown ⇒ p_eff = 0.5, exactly at the default ceiling: allowed.
        let d = decide(
            TrustEstimate::UNKNOWN,
            Money::from_units(10),
            Money::ZERO,
            EngagementRule::default(),
        );
        assert!(d.is_engage(), "boundary is inclusive");
    }

    #[test]
    fn threshold_respected() {
        let rule = EngagementRule {
            min_expected_gain: Money::from_units(5),
            max_dishonesty: 1.0,
        };
        let d = decide(
            TrustEstimate::new(0.9, 1.0),
            Money::from_units(5),
            Money::ZERO,
            rule,
        );
        // expected = 4.5 < 5.
        assert!(!d.is_engage());
    }
}
