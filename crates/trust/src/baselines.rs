//! Baseline trust models: plain mean and EWMA.
//!
//! These are the strawmen for experiment E5: they use the same inputs as
//! the principled models but with naive statistics, quantifying how much
//! the Bayesian treatment (priors, discounting, witness reliability)
//! actually buys.

use crate::confidence::evidence_confidence;
use crate::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Arithmetic-mean trust: `p = honest / total`, 0.5 when unseen.
/// Witness reports count exactly like direct experience (no
/// discounting) — deliberately gullible.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MeanTrust {
    counts: HashMap<PeerId, (u64, u64)>, // (honest, total)
}

impl MeanTrust {
    /// Creates an empty model.
    pub fn new() -> MeanTrust {
        MeanTrust::default()
    }

    /// `(honest, total)` observation counts for a subject.
    pub fn counts(&self, subject: PeerId) -> (u64, u64) {
        self.counts.get(&subject).copied().unwrap_or((0, 0))
    }

    fn add(&mut self, subject: PeerId, conduct: Conduct) {
        let e = self.counts.entry(subject).or_insert((0, 0));
        if conduct.is_honest() {
            e.0 += 1;
        }
        e.1 += 1;
    }
}

impl TrustModel for MeanTrust {
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, _round: u64) {
        self.add(subject, conduct);
    }

    fn record_witness(&mut self, report: WitnessReport) {
        self.add(report.subject, report.conduct);
    }

    fn predict(&self, subject: PeerId) -> TrustEstimate {
        match self.counts(subject) {
            (_, 0) => TrustEstimate::UNKNOWN,
            (h, t) => TrustEstimate::new(h as f64 / t as f64, evidence_confidence(t as f64)),
        }
    }

    fn name(&self) -> &'static str {
        "mean"
    }
}

/// Exponentially weighted moving average trust.
///
/// `p ← (1 − λ)·p + λ·outcome` per observation, starting from 0.5.
/// Reacts quickly to behaviour changes but never converges, and treats
/// witness reports at weight `λ/2`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EwmaTrust {
    /// Learning rate λ in `(0, 1]`.
    rate: f64,
    scores: HashMap<PeerId, (f64, u64)>, // (score, observations)
}

impl EwmaTrust {
    /// Creates a model with learning rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rate ≤ 1`.
    pub fn new(rate: f64) -> EwmaTrust {
        assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
        EwmaTrust {
            rate,
            scores: HashMap::new(),
        }
    }

    /// The learning rate λ.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn update(&mut self, subject: PeerId, conduct: Conduct, weight: f64) {
        let (score, n) = self.scores.entry(subject).or_insert((0.5, 0));
        let target = if conduct.is_honest() { 1.0 } else { 0.0 };
        let lambda = self.rate * weight;
        *score = (1.0 - lambda) * *score + lambda * target;
        *n += 1;
    }
}

impl Default for EwmaTrust {
    /// λ = 0.2.
    fn default() -> Self {
        EwmaTrust::new(0.2)
    }
}

impl TrustModel for EwmaTrust {
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, _round: u64) {
        self.update(subject, conduct, 1.0);
    }

    fn record_witness(&mut self, report: WitnessReport) {
        self.update(report.subject, report.conduct, 0.5);
    }

    fn predict(&self, subject: PeerId) -> TrustEstimate {
        match self.scores.get(&subject) {
            None => TrustEstimate::UNKNOWN,
            Some((score, n)) => TrustEstimate::new(*score, evidence_confidence(*n as f64)),
        }
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_matches_fraction() {
        let mut m = MeanTrust::new();
        let p = PeerId(1);
        for i in 0..10 {
            m.record_direct(p, Conduct::from_honest(i % 5 != 0), 0);
        }
        // 8 honest of 10.
        assert!((m.predict(p).p_honest - 0.8).abs() < 1e-12);
        assert_eq!(m.counts(p), (8, 10));
    }

    #[test]
    fn mean_unknown_is_half() {
        let m = MeanTrust::new();
        assert_eq!(m.predict(PeerId(3)), TrustEstimate::UNKNOWN);
    }

    #[test]
    fn mean_is_gullible_to_witnesses() {
        let mut m = MeanTrust::new();
        let p = PeerId(1);
        m.record_direct(p, Conduct::Honest, 0);
        m.record_witness(WitnessReport {
            witness: PeerId(2),
            subject: p,
            conduct: Conduct::Dishonest,
            round: 0,
        });
        assert!((m.predict(p).p_honest - 0.5).abs() < 1e-12, "full weight");
    }

    #[test]
    fn ewma_tracks_recent_behaviour() {
        let mut m = EwmaTrust::new(0.3);
        let p = PeerId(1);
        for _ in 0..30 {
            m.record_direct(p, Conduct::Honest, 0);
        }
        let high = m.predict(p).p_honest;
        assert!(high > 0.95);
        for _ in 0..10 {
            m.record_direct(p, Conduct::Dishonest, 0);
        }
        let low = m.predict(p).p_honest;
        assert!(low < 0.1, "EWMA must react to the behaviour flip: {low}");
    }

    #[test]
    fn ewma_update_formula() {
        let mut m = EwmaTrust::new(0.5);
        let p = PeerId(1);
        m.record_direct(p, Conduct::Honest, 0);
        // 0.5·0.5 + 0.5·1 = 0.75.
        assert!((m.predict(p).p_honest - 0.75).abs() < 1e-12);
        m.record_direct(p, Conduct::Dishonest, 0);
        // 0.5·0.75 + 0.5·0 = 0.375.
        assert!((m.predict(p).p_honest - 0.375).abs() < 1e-12);
    }

    #[test]
    fn ewma_witness_half_weight() {
        let mut m = EwmaTrust::new(0.5);
        let p = PeerId(1);
        m.record_witness(WitnessReport {
            witness: PeerId(9),
            subject: p,
            conduct: Conduct::Honest,
            round: 0,
        });
        // λ·w = 0.25: 0.75·0.5 + 0.25·1 = 0.625.
        assert!((m.predict(p).p_honest - 0.625).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn ewma_invalid_rate() {
        EwmaTrust::new(0.0);
    }

    #[test]
    fn names_and_defaults() {
        assert_eq!(MeanTrust::new().name(), "mean");
        assert_eq!(EwmaTrust::default().name(), "ewma");
        assert!((EwmaTrust::default().rate() - 0.2).abs() < 1e-12);
    }
}
