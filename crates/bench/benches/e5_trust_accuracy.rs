//! E5 bench: trust-model update and prediction costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_trust::baselines::{EwmaTrust, MeanTrust};
use trustex_trust::beta::BetaTrust;
use trustex_trust::complaints::ComplaintTrust;
use trustex_trust::model::{Conduct, PeerId, TrustEstimate, TrustModel};

fn loaded<M: TrustModel>(mut model: M) -> M {
    for subject in 0..100u32 {
        for round in 0..20u64 {
            model.record_direct(
                PeerId(subject),
                Conduct::from_honest(subject % 3 != 0),
                round,
            );
        }
    }
    model
}

fn bench_record(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5/record_direct");
    group.bench_function("beta", |b| {
        let mut m = loaded(BetaTrust::new());
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            m.record_direct(PeerId(7), Conduct::Honest, round);
        })
    });
    group.bench_function("complaints", |b| {
        let mut m = loaded(ComplaintTrust::new());
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            m.record_direct(PeerId(7), Conduct::Dishonest, round);
        })
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5/predict");
    let beta = loaded(BetaTrust::new());
    let complaints = loaded(ComplaintTrust::new());
    let mean = loaded(MeanTrust::new());
    let ewma = loaded(EwmaTrust::default());
    let subjects: Vec<PeerId> = (0..100u32).map(PeerId).collect();
    for (label, model) in [
        ("beta", &beta as &dyn TrustModel),
        ("complaints", &complaints),
        ("mean", &mean),
        ("ewma", &ewma),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &model, |b, model| {
            b.iter(|| {
                for s in &subjects {
                    black_box(model.predict(*s));
                }
            })
        });
    }
    group.finish();
}

/// The batched row sweep the accuracy metrics run on: one
/// `predict_row_into` call versus 100 point predicts (the complaint
/// model's median amortization shows up here most starkly — the old
/// sort-per-predict paid n log n per cell).
fn bench_predict_row(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5/predict_row_into");
    let beta = loaded(BetaTrust::with_population(100));
    let complaints = loaded(ComplaintTrust::with_population(100));
    let mean = loaded(MeanTrust::with_population(100));
    let ewma = loaded(EwmaTrust::with_population(0.2, 100));
    for (label, model) in [
        ("beta", &beta as &dyn TrustModel),
        ("complaints", &complaints),
        ("mean", &mean),
        ("ewma", &ewma),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &model, |b, model| {
            let mut row = vec![TrustEstimate::UNKNOWN; 100];
            b.iter(|| {
                model.predict_row_into(&mut row);
                black_box(row.last());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_record, bench_predict, bench_predict_row);
criterion_main!(benches);
