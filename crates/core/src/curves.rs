//! Valuation-curve generators for workloads and experiments.
//!
//! The feasibility of (trust-aware) safe exchange depends on the *shape*
//! of the two value functions: how surplus is distributed across items.
//! Experiment E1 sweeps these shapes. Generators are deterministic given
//! a uniform-random source, which callers supply as a closure so this
//! crate stays dependency-free (the simulator passes its own PRNG).

use crate::goods::{Goods, GoodsError};
use crate::money::Money;
use serde::{Deserialize, Serialize};

/// Named valuation-curve families used across the experiment suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CurveShape {
    /// All items identical: cost `c`, value `v` scaled to the deal size.
    Uniform,
    /// Supplier cost concentrated early in item index (front-loaded
    /// production), consumer value spread evenly.
    FrontLoadedCost,
    /// Consumer value concentrated in the last items (e.g. the final
    /// chapters of a serialized work) — the adversarial case for safe
    /// exchange.
    BackLoadedValue,
    /// Costs and values drawn independently at random (uniform).
    Random,
    /// A mix: half the items have negative surplus, half positive —
    /// exercises the two-phase structure of the optimal order.
    MixedSurplus,
}

impl CurveShape {
    /// All shapes, for parameter sweeps.
    pub const ALL: [CurveShape; 5] = [
        CurveShape::Uniform,
        CurveShape::FrontLoadedCost,
        CurveShape::BackLoadedValue,
        CurveShape::Random,
        CurveShape::MixedSurplus,
    ];

    /// A short stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            CurveShape::Uniform => "uniform",
            CurveShape::FrontLoadedCost => "front-cost",
            CurveShape::BackLoadedValue => "back-value",
            CurveShape::Random => "random",
            CurveShape::MixedSurplus => "mixed",
        }
    }
}

/// Parameters for generating a goods set from a [`CurveShape`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurveParams {
    /// Number of items to generate (must be ≥ 1).
    pub n_items: usize,
    /// Mean supplier cost per item, in major units.
    pub mean_cost: f64,
    /// Multiplier from mean cost to mean consumer value (> 0 keeps the
    /// deal socially valuable when > 1).
    pub value_markup: f64,
}

impl Default for CurveParams {
    fn default() -> Self {
        CurveParams {
            n_items: 8,
            mean_cost: 10.0,
            value_markup: 1.5,
        }
    }
}

/// Generates a goods set of the given shape.
///
/// `uniform` must yield independent draws in `[0, 1)`; the simulator
/// passes `|| rng.f64()`.
///
/// # Errors
///
/// Returns [`GoodsError::Empty`] when `params.n_items == 0`.
///
/// # Examples
///
/// ```
/// use trustex_core::curves::{generate, CurveParams, CurveShape};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut x = 0.37_f64;
/// // A deterministic low-discrepancy source is fine for the doc example.
/// let mut src = move || { x = (x + 0.61803398875).fract(); x };
/// let goods = generate(CurveShape::Random, CurveParams::default(), &mut src)?;
/// assert_eq!(goods.len(), 8);
/// # Ok(())
/// # }
/// ```
pub fn generate(
    shape: CurveShape,
    params: CurveParams,
    uniform: &mut dyn FnMut() -> f64,
) -> Result<Goods, GoodsError> {
    let n = params.n_items;
    if n == 0 {
        return Err(GoodsError::Empty);
    }
    let mc = params.mean_cost.max(0.0);
    let mv = (params.mean_cost * params.value_markup).max(0.0);
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
    match shape {
        CurveShape::Uniform => {
            for _ in 0..n {
                pairs.push((mc, mv));
            }
        }
        CurveShape::FrontLoadedCost => {
            // Costs decay geometrically with index; values stay flat.
            // Normalise so the mean cost is preserved.
            let ratio: f64 = 0.7;
            let weights: Vec<f64> = (0..n).map(|i| ratio.powi(i as i32)).collect();
            let wsum: f64 = weights.iter().sum();
            for w in &weights {
                pairs.push((mc * n as f64 * w / wsum, mv));
            }
        }
        CurveShape::BackLoadedValue => {
            // Values grow geometrically with index; costs stay flat.
            let ratio: f64 = 0.7;
            let weights: Vec<f64> = (0..n).map(|i| ratio.powi((n - 1 - i) as i32)).collect();
            let wsum: f64 = weights.iter().sum();
            for w in &weights {
                pairs.push((mc, mv * n as f64 * w / wsum));
            }
        }
        CurveShape::Random => {
            for _ in 0..n {
                let c = mc * 2.0 * uniform();
                let v = mv * 2.0 * uniform();
                pairs.push((c, v));
            }
        }
        CurveShape::MixedSurplus => {
            for i in 0..n {
                if i % 2 == 0 {
                    // Positive surplus: value well above cost.
                    pairs.push((mc * 0.5, mv * 1.5));
                } else {
                    // Negative surplus: cost above value.
                    pairs.push((mc * 1.5, mv * 0.5f64.min(mc / mv.max(1e-9))));
                }
            }
        }
    }
    Goods::new(
        pairs
            .into_iter()
            .map(|(c, v)| (Money::from_f64(c.max(0.0)), Money::from_f64(v.max(0.0))))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src() -> impl FnMut() -> f64 {
        let mut x = 0.12345_f64;
        move || {
            x = (x * 997.0 + 0.314159).fract();
            x
        }
    }

    #[test]
    fn all_shapes_generate_requested_size() {
        let mut s = src();
        for shape in CurveShape::ALL {
            let g = generate(
                shape,
                CurveParams {
                    n_items: 12,
                    ..CurveParams::default()
                },
                &mut s,
            )
            .unwrap();
            assert_eq!(g.len(), 12, "shape {shape:?}");
        }
    }

    #[test]
    fn zero_items_rejected() {
        let mut s = src();
        let err = generate(
            CurveShape::Uniform,
            CurveParams {
                n_items: 0,
                ..CurveParams::default()
            },
            &mut s,
        )
        .unwrap_err();
        assert_eq!(err, GoodsError::Empty);
    }

    #[test]
    fn uniform_items_identical() {
        let mut s = src();
        let g = generate(CurveShape::Uniform, CurveParams::default(), &mut s).unwrap();
        let first = g.get(0).unwrap();
        for item in g.iter() {
            assert_eq!(item.supplier_cost(), first.supplier_cost());
            assert_eq!(item.consumer_value(), first.consumer_value());
        }
    }

    #[test]
    fn front_loaded_costs_decrease() {
        let mut s = src();
        let g = generate(CurveShape::FrontLoadedCost, CurveParams::default(), &mut s).unwrap();
        let costs: Vec<_> = g.iter().map(|i| i.supplier_cost()).collect();
        for w in costs.windows(2) {
            assert!(w[0] >= w[1], "costs must be non-increasing: {costs:?}");
        }
    }

    #[test]
    fn back_loaded_values_increase() {
        let mut s = src();
        let g = generate(CurveShape::BackLoadedValue, CurveParams::default(), &mut s).unwrap();
        let vals: Vec<_> = g.iter().map(|i| i.consumer_value()).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1], "values must be non-decreasing: {vals:?}");
        }
    }

    #[test]
    fn front_loaded_preserves_mean_cost() {
        let mut s = src();
        let p = CurveParams {
            n_items: 10,
            mean_cost: 10.0,
            value_markup: 1.5,
        };
        let g = generate(CurveShape::FrontLoadedCost, p, &mut s).unwrap();
        let mean = g.total_supplier_cost().as_f64() / 10.0;
        assert!((mean - 10.0).abs() < 1e-6, "mean {mean}");
    }

    #[test]
    fn mixed_surplus_has_both_signs() {
        let mut s = src();
        let g = generate(
            CurveShape::MixedSurplus,
            CurveParams {
                n_items: 6,
                ..CurveParams::default()
            },
            &mut s,
        )
        .unwrap();
        let pos = g.iter().filter(|i| i.surplus().is_positive()).count();
        let neg = g.iter().filter(|i| i.surplus().is_negative()).count();
        assert!(pos > 0 && neg > 0, "pos={pos} neg={neg}");
    }

    #[test]
    fn random_uses_source() {
        let mut s = src();
        let g1 = generate(CurveShape::Random, CurveParams::default(), &mut s).unwrap();
        let g2 = generate(CurveShape::Random, CurveParams::default(), &mut s).unwrap();
        assert_ne!(g1, g2, "consecutive random draws should differ");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CurveShape::Uniform.label(), "uniform");
        assert_eq!(CurveShape::ALL.len(), 5);
    }
}
