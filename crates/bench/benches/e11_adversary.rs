//! E11 bench: one coordinated-attack market arm per trust model.
//!
//! Times a single zoo simulation (full zoo, maximum coordination,
//! defenses on) — the unit the e11 frontier fans across the pool — so
//! regressions in the campaign dispatch, Sybil echo or whitewash sweep
//! show up before they multiply across the whole table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_agents::adversary::zoo_mix;
use trustex_market::prelude::*;

fn zoo_cfg(model: ModelKind) -> MarketConfig {
    MarketConfig {
        n_agents: 60,
        rounds: 8,
        sessions_per_round: 60,
        workload: Workload::FileSharing,
        mix: zoo_mix(0.3, 1.0),
        model,
        defense: DefenseConfig {
            scorer_weighted: true,
            report_rate_cap: Some(8),
        },
        threads: 1,
        seed: 17,
        ..MarketConfig::default()
    }
}

fn bench_zoo_arm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11/zoo_arm");
    group.sample_size(20);
    for model in ModelKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.label()),
            &model,
            |b, &model| {
                b.iter(|| {
                    let report = MarketSim::new(zoo_cfg(model)).run();
                    black_box(report.welfare_per_session())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_zoo_arm);
criterion_main!(benches);
