//! Accuracy and welfare metrics for the experiment suite.

use crate::population::Community;
use trustex_trust::model::PeerId;

/// Mean absolute error of trust estimates against ground truth, averaged
/// over all ordered evaluator→subject pairs (`evaluator ≠ subject`).
pub fn trust_mae(community: &Community) -> f64 {
    let ids: Vec<PeerId> = community.agent_ids().collect();
    let mut total = 0.0;
    let mut count = 0usize;
    for &e in &ids {
        for &s in &ids {
            if e == s {
                continue;
            }
            let est = community.predict(e, s).p_honest;
            let truth = community.true_cooperation_prob(s);
            total += (est - truth).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Probability that a uniformly chosen (honest, dishonest) subject pair
/// is ranked correctly by a uniformly chosen evaluator (ties count ½) —
/// an AUC analogue. Returns 0.5 when either class is empty.
pub fn rank_accuracy(community: &Community) -> f64 {
    let ids: Vec<PeerId> = community.agent_ids().collect();
    let honest: Vec<PeerId> = ids
        .iter()
        .copied()
        .filter(|a| community.is_honest(*a))
        .collect();
    let dishonest: Vec<PeerId> = ids
        .iter()
        .copied()
        .filter(|a| !community.is_honest(*a))
        .collect();
    if honest.is_empty() || dishonest.is_empty() {
        return 0.5;
    }
    let mut score = 0.0;
    let mut count = 0usize;
    for &e in &ids {
        for &h in &honest {
            if h == e {
                continue;
            }
            for &d in &dishonest {
                if d == e {
                    continue;
                }
                let ph = community.predict(e, h).p_honest;
                let pd = community.predict(e, d).p_honest;
                score += if ph > pd {
                    1.0
                } else if ph == pd {
                    0.5
                } else {
                    0.0
                };
                count += 1;
            }
        }
    }
    if count == 0 {
        0.5
    } else {
        score / count as f64
    }
}

/// Fraction of evaluator→subject pairs classified correctly by
/// thresholding `p_honest` at 0.5 against the binary ground truth.
pub fn decision_accuracy(community: &Community) -> f64 {
    let ids: Vec<PeerId> = community.agent_ids().collect();
    let mut correct = 0usize;
    let mut count = 0usize;
    for &e in &ids {
        for &s in &ids {
            if e == s {
                continue;
            }
            let predicted_honest = community.predict(e, s).p_honest >= 0.5;
            if predicted_honest == community.is_honest(s) {
                correct += 1;
            }
            count += 1;
        }
    }
    if count == 0 {
        1.0
    } else {
        correct as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::ModelKind;
    use trustex_agents::profile::PopulationMix;
    use trustex_netsim::rng::SimRng;
    use trustex_trust::model::Conduct;

    fn community(dishonest: f64) -> Community {
        let mut rng = SimRng::new(1);
        Community::new(
            10,
            &PopulationMix::standard(dishonest, 0.0),
            ModelKind::Beta,
            &mut rng,
        )
    }

    /// Feed every evaluator perfect direct experience about everyone.
    fn educate(c: &mut Community, reps: u64) {
        let ids: Vec<PeerId> = c.agent_ids().collect();
        for &e in &ids {
            for &s in &ids {
                if e == s {
                    continue;
                }
                let conduct = Conduct::from_honest(c.is_honest(s));
                for r in 0..reps {
                    c.record_direct(e, s, conduct, r);
                }
            }
        }
    }

    #[test]
    fn mae_decreases_with_evidence() {
        let mut c = community(0.5);
        let cold = trust_mae(&c);
        assert!((cold - 0.5).abs() < 1e-9, "uninformed prior is 0.5 off");
        educate(&mut c, 10);
        let warm = trust_mae(&c);
        assert!(warm < 0.2, "educated community MAE: {warm}");
    }

    #[test]
    fn rank_accuracy_perfect_after_education() {
        let mut c = community(0.5);
        assert!(
            (rank_accuracy(&c) - 0.5).abs() < 1e-9,
            "cold start is a coin flip"
        );
        educate(&mut c, 5);
        assert_eq!(rank_accuracy(&c), 1.0);
    }

    #[test]
    fn decision_accuracy_after_education() {
        let mut c = community(0.3);
        educate(&mut c, 10);
        assert!(decision_accuracy(&c) > 0.95);
    }

    #[test]
    fn degenerate_populations() {
        let c = community(0.0);
        assert_eq!(rank_accuracy(&c), 0.5, "no dishonest class");
        // Decision accuracy with the cold prior (0.5 ≥ 0.5 ⇒ honest)
        // is exactly the honest fraction.
        assert!((decision_accuracy(&c) - 1.0).abs() < 1e-9);
    }
}
