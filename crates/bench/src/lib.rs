//! # trustex-bench — benchmarks and experiment reproduction
//!
//! This crate carries:
//!
//! * the `repro` binary — regenerates every table/figure of
//!   `EXPERIMENTS.md` (`cargo run --release -p trustex-bench --bin repro`),
//!   optionally a single experiment by id (`… -- e4`) and at smoke scale
//!   (`… -- --smoke`);
//! * one Criterion bench per experiment (`benches/e*.rs`) measuring the
//!   experiment's characteristic operation.
//!
//! The library portion only re-exports a tiny helper shared by the
//! benches.

pub use trustex_market::experiments::{find, Scale, ALL};
pub use trustex_market::table::Table;

/// Renders a table with a trailing blank line (the repro output format).
pub fn render_block(table: &Table) -> String {
    let mut s = table.render();
    s.push('\n');
    s
}

/// Serializes per-experiment wall-clock timings as the `BENCH_repro.json`
/// document: a flat JSON object mapping experiment id → milliseconds.
///
/// Hand-rolled because the workspace's vendored `serde` is a no-op stub;
/// ids are bare `[a-z0-9]+` so no string escaping is needed.
///
/// # Examples
///
/// ```
/// let json = trustex_bench::timings_to_json(&[("e0", 12.5), ("e1", 3.0)]);
/// assert_eq!(json, "{\n  \"e0\": 12.500,\n  \"e1\": 3.000\n}\n");
/// ```
pub fn timings_to_json(timings: &[(&str, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (id, ms)) in timings.iter().enumerate() {
        let comma = if i + 1 == timings.len() { "" } else { "," };
        out.push_str(&format!("  \"{id}\": {ms:.3}{comma}\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_block_appends_newline() {
        let t = Table::new("x", &["a"]);
        assert!(render_block(&t).ends_with("\n\n"));
    }

    #[test]
    fn timings_json_shape() {
        assert_eq!(timings_to_json(&[]), "{\n}\n");
        let one = timings_to_json(&[("e8", 1234.5678)]);
        assert_eq!(one, "{\n  \"e8\": 1234.568\n}\n");
        let two = timings_to_json(&[("e0", 1.0), ("e10", 2.25)]);
        assert!(two.contains("\"e0\": 1.000,"));
        assert!(two.contains("\"e10\": 2.250\n"));
        // No trailing comma before the closing brace.
        assert!(!two.contains(",\n}"));
    }
}
