//! Membership lifecycle: paced admissions and stale-peer eviction.
//!
//! [`PGrid::join`] and [`PGrid::leave`] are mechanism; this module is
//! policy. A real overlay cannot admit an unbounded burst of newcomers
//! in one step (every join costs `O(depth)` meetings of existing
//! members' time) and must shed peers that silently vanish rather than
//! announce their departure. Following the bounded, reputation-aware
//! peer-list shape of the governor pattern (ADR-0008 in SNIPPETS.md),
//! [`Lifecycle`] keeps a FIFO of join tickets with exponential backoff,
//! admits at most a configured number per tick, and evicts live peers
//! whose last activity is older than a staleness horizon.
//!
//! The layer is deterministic: given the same grid, RNG and call
//! sequence it produces the same admissions and evictions, so e6 tables
//! built through it stay bit-identical across thread counts.

use crate::pgrid::PGrid;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use trustex_netsim::rng::SimRng;

/// Pacing policy for joins and staleness-driven leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// Newcomers admitted per tick at most.
    pub max_admissions_per_tick: usize,
    /// Backoff after a deferred admission attempt: the ticket waits
    /// `min(backoff_cap, backoff_base << (attempts - 1))` ticks before
    /// becoming eligible again.
    pub backoff_base: u64,
    /// Upper bound on the per-attempt backoff delay, in ticks.
    pub backoff_cap: u64,
    /// A live peer not [`Lifecycle::touch`]ed for more than this many
    /// ticks is evicted. `0` disables stale eviction.
    pub stale_after: u64,
    /// Stale peers evicted per tick at most.
    pub max_evictions_per_tick: usize,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            max_admissions_per_tick: 8,
            backoff_base: 1,
            backoff_cap: 16,
            stale_after: 0,
            max_evictions_per_tick: 4,
        }
    }
}

/// The delay before a ticket's next admission attempt: exponential in
/// the attempt count, saturating into `backoff_cap` rather than
/// wrapping, and never less than one tick. The saturation arithmetic
/// (`2u64 << 63 == 0` would collapse late attempts to the minimum
/// delay) lives in the shared `trustex_netsim::backoff` helper, which
/// the fault-plane retry paths reuse.
fn backoff_delay(cfg: &LifecycleConfig, attempts: u32) -> u64 {
    trustex_netsim::backoff::backoff_delay(cfg.backoff_base, cfg.backoff_cap, attempts)
}

/// A queued join request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct JoinTicket {
    id: u64,
    attempts: u32,
    ready_at: u64,
}

/// What one [`Lifecycle::step`] did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TickReport {
    /// The tick that just ran (1-based).
    pub tick: u64,
    /// Dense indices the grid assigned to this tick's admissions, in
    /// admission order.
    pub admitted: Vec<usize>,
    /// Tickets that were eligible but pushed past the admission budget
    /// into backoff.
    pub deferred: usize,
    /// Dense indices of live peers evicted as stale.
    pub evicted: Vec<usize>,
}

/// The admission/eviction state machine over a [`PGrid`].
#[derive(Debug, Clone)]
pub struct Lifecycle {
    cfg: LifecycleConfig,
    tick: u64,
    pending: VecDeque<JoinTicket>,
    next_ticket: u64,
    /// `last_seen[i]` = tick of peer `i`'s last activity (admission
    /// counts). Indexed like the grid's dense indices; peers that
    /// predate the lifecycle start at tick 0.
    last_seen: Vec<u64>,
}

impl Lifecycle {
    /// A lifecycle layer over a grid with `initial_peers` already
    /// admitted (use `grid.len()`).
    pub fn new(cfg: LifecycleConfig, initial_peers: usize) -> Lifecycle {
        Lifecycle {
            cfg,
            tick: 0,
            pending: VecDeque::new(),
            next_ticket: 0,
            last_seen: vec![0; initial_peers],
        }
    }

    /// Enqueues a join request; returns its ticket id. The newcomer is
    /// admitted by a later [`Lifecycle::step`], budget permitting.
    pub fn request_join(&mut self) -> u64 {
        let id = self.next_ticket;
        self.next_ticket += 1;
        self.pending.push_back(JoinTicket {
            id,
            attempts: 0,
            ready_at: self.tick,
        });
        id
    }

    /// Join requests waiting for admission.
    pub fn pending_joins(&self) -> usize {
        self.pending.len()
    }

    /// The current tick (number of completed [`Lifecycle::step`]s).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Records activity for a live peer, resetting its staleness clock.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is not an index this lifecycle has seen.
    pub fn touch(&mut self, peer: usize) {
        self.last_seen[peer] = self.tick;
    }

    /// Follows a [`PGrid::compact`] renumbering: `mapping` is compact's
    /// return value. Departed peers' activity clocks are dropped and the
    /// survivors' slide down to their new dense indices, so `touch` and
    /// stale eviction keep working against the compacted grid.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` does not cover exactly the peers this
    /// lifecycle tracks.
    pub fn compacted(&mut self, mapping: &[Option<u32>]) {
        assert_eq!(
            mapping.len(),
            self.last_seen.len(),
            "mapping does not match the tracked population"
        );
        let mut write = 0usize;
        for (old, slot) in mapping.iter().enumerate() {
            if let Some(new) = *slot {
                debug_assert_eq!(new as usize, write, "compaction preserves order");
                self.last_seen[write] = self.last_seen[old];
                write += 1;
            }
        }
        self.last_seen.truncate(write);
    }

    /// Identity churn: `peer` leaves the overlay and immediately files
    /// a fresh join request, whose ticket id is returned. The departed
    /// index keeps its (dead) dense slot until the next
    /// [`PGrid::compact`]; the rejoining identity is admitted by a
    /// later [`Lifecycle::step`] like any other newcomer — paced,
    /// backed off, and with a cold staleness clock. This is the
    /// overlay-side counterpart of the market's whitewash sweep: the
    /// community forgets the peer because, structurally, a *different*
    /// peer comes back.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is not live.
    pub fn whitewash(&mut self, grid: &mut PGrid, peer: usize) -> u64 {
        assert!(grid.is_live(peer), "whitewashing a dead peer");
        grid.leave(peer);
        self.request_join()
    }

    /// Runs one tick: admits eligible tickets up to the budget (backing
    /// off the rest), then evicts stale live peers up to the eviction
    /// budget. Eviction never drops the overlay below two live peers.
    pub fn step(&mut self, grid: &mut PGrid, rng: &mut SimRng) -> TickReport {
        self.tick += 1;
        let mut report = TickReport {
            tick: self.tick,
            ..TickReport::default()
        };

        // Admissions: sweep the FIFO once; eligible tickets within the
        // budget join, eligible tickets past it back off exponentially,
        // not-yet-ready tickets just rotate through.
        for _ in 0..self.pending.len() {
            let mut ticket = self.pending.pop_front().expect("queue non-empty");
            if ticket.ready_at > self.tick {
                self.pending.push_back(ticket);
                continue;
            }
            if report.admitted.len() < self.cfg.max_admissions_per_tick {
                let idx = grid.join(rng);
                debug_assert_eq!(idx, self.last_seen.len(), "grid and lifecycle out of step");
                self.last_seen.push(self.tick);
                report.admitted.push(idx);
            } else {
                ticket.attempts += 1;
                let delay = backoff_delay(&self.cfg, ticket.attempts);
                ticket.ready_at = self.tick.saturating_add(delay);
                report.deferred += 1;
                self.pending.push_back(ticket);
            }
        }

        // Stale eviction: oldest indices first, bounded per tick, never
        // below a routable population.
        if self.cfg.stale_after > 0 {
            for peer in 0..self.last_seen.len() {
                if report.evicted.len() >= self.cfg.max_evictions_per_tick || grid.live_len() <= 2 {
                    break;
                }
                if grid.is_live(peer)
                    && self.tick.saturating_sub(self.last_seen[peer]) > self.cfg.stale_after
                {
                    grid.leave(peer);
                    report.evicted.push(peer);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pgrid::PGridConfig;

    fn grid(n: usize, seed: u64) -> (PGrid, SimRng) {
        let mut rng = SimRng::new(seed);
        let cfg = PGridConfig {
            max_depth: 3,
            ..PGridConfig::default()
        };
        (PGrid::build(n, cfg, &mut rng), rng)
    }

    #[test]
    fn admission_rate_is_bounded() {
        let (mut g, mut rng) = grid(32, 1);
        let cfg = LifecycleConfig {
            max_admissions_per_tick: 3,
            ..LifecycleConfig::default()
        };
        let mut lc = Lifecycle::new(cfg, g.len());
        for _ in 0..10 {
            lc.request_join();
        }
        let r1 = lc.step(&mut g, &mut rng);
        assert_eq!(r1.admitted.len(), 3);
        assert_eq!(r1.deferred, 7);
        assert_eq!(lc.pending_joins(), 7);
        // Deferred tickets backed off by one tick: round 2 admits the
        // next three.
        let r2 = lc.step(&mut g, &mut rng);
        assert_eq!(r2.admitted.len(), 3);
        // Drain the rest.
        let mut total = r1.admitted.len() + r2.admitted.len();
        for _ in 0..20 {
            total += lc.step(&mut g, &mut rng).admitted.len();
        }
        assert_eq!(total, 10);
        assert_eq!(lc.pending_joins(), 0);
        assert_eq!(g.live_len(), 42);
        g.check_invariants();
    }

    #[test]
    fn backoff_schedule_is_exponential_and_capped() {
        let (mut g, mut rng) = grid(8, 2);
        let cfg = LifecycleConfig {
            max_admissions_per_tick: 0, // everything defers forever
            backoff_base: 2,
            backoff_cap: 8,
            ..LifecycleConfig::default()
        };
        let mut lc = Lifecycle::new(cfg, g.len());
        lc.request_join();
        // attempts=1 → delay 2, attempts=2 → 4, attempts=3 → 8,
        // attempts=4 → capped at 8.
        let mut deferred_at = Vec::new();
        for _ in 0..40 {
            let r = lc.step(&mut g, &mut rng);
            if r.deferred > 0 {
                deferred_at.push(r.tick);
            }
        }
        assert_eq!(deferred_at[0], 1);
        let gaps: Vec<u64> = deferred_at.windows(2).map(|w| w[1] - w[0]).collect();
        assert_eq!(&gaps[..4], &[2, 4, 8, 8], "backoff gaps: {gaps:?}");
        assert_eq!(g.live_len(), 8, "nothing admitted at zero budget");
    }

    #[test]
    fn backoff_saturates_at_the_cap_past_the_shift_width() {
        let cfg = LifecycleConfig {
            backoff_base: 2,
            backoff_cap: 8,
            ..LifecycleConfig::default()
        };
        assert_eq!(backoff_delay(&cfg, 1), 2);
        assert_eq!(backoff_delay(&cfg, 2), 4);
        assert_eq!(backoff_delay(&cfg, 3), 8);
        // `2u64 << 63 == 0`: a plain shift collapses the delay to the
        // one-tick minimum at attempt 64 and beyond; the saturating
        // shift must hold the cap instead.
        for attempts in [4u32, 63, 64, 65, 200, u32::MAX] {
            assert_eq!(backoff_delay(&cfg, attempts), 8, "attempts={attempts}");
        }
        let wide = LifecycleConfig {
            backoff_base: u64::MAX,
            backoff_cap: u64::MAX,
            ..LifecycleConfig::default()
        };
        assert_eq!(backoff_delay(&wide, 2), u64::MAX);
        // A zero base still waits the minimum one tick.
        let zero = LifecycleConfig {
            backoff_base: 0,
            backoff_cap: 8,
            ..LifecycleConfig::default()
        };
        assert_eq!(backoff_delay(&zero, 5), 1);
    }

    #[test]
    fn whitewash_churns_identity_through_leave_and_rejoin() {
        let (mut g, mut rng) = grid(16, 5);
        let mut lc = Lifecycle::new(LifecycleConfig::default(), g.len());
        lc.whitewash(&mut g, 3);
        assert!(!g.is_live(3), "the old identity is gone");
        assert_eq!(g.live_len(), 15);
        assert_eq!(lc.pending_joins(), 1);
        let r = lc.step(&mut g, &mut rng);
        assert_eq!(r.admitted.len(), 1);
        let fresh = r.admitted[0];
        assert_ne!(fresh, 3, "rejoin gets a fresh dense identity");
        assert!(g.is_live(fresh));
        assert_eq!(g.live_len(), 16);
        g.check_invariants();
    }

    #[test]
    #[should_panic(expected = "whitewashing a dead peer")]
    fn whitewashing_a_dead_peer_panics() {
        let (mut g, _rng) = grid(8, 6);
        let mut lc = Lifecycle::new(LifecycleConfig::default(), g.len());
        g.leave(2);
        lc.whitewash(&mut g, 2);
    }

    #[test]
    fn stale_peers_are_evicted_but_touched_peers_survive() {
        let (mut g, mut rng) = grid(16, 3);
        let cfg = LifecycleConfig {
            stale_after: 2,
            max_evictions_per_tick: 2,
            ..LifecycleConfig::default()
        };
        let mut lc = Lifecycle::new(cfg, g.len());
        // Keep peers 10..16 fresh; 0..10 go stale after tick 2.
        for t in 0..6 {
            for p in 10..16 {
                lc.touch(p);
            }
            let r = lc.step(&mut g, &mut rng);
            if t < 2 {
                assert!(
                    r.evicted.is_empty(),
                    "too early to evict at tick {}",
                    r.tick
                );
            } else {
                assert_eq!(r.evicted.len(), 2, "bounded eviction per tick");
                assert!(r.evicted.iter().all(|&p| p < 10), "fresh peers survive");
            }
        }
        assert_eq!(g.live_len(), 16 - 4 * 2);
        assert!((10..16).all(|p| g.is_live(p)));
        g.check_invariants();
    }

    #[test]
    fn eviction_never_empties_the_overlay() {
        let (mut g, mut rng) = grid(4, 4);
        let cfg = LifecycleConfig {
            stale_after: 1,
            max_evictions_per_tick: 8,
            ..LifecycleConfig::default()
        };
        let mut lc = Lifecycle::new(cfg, g.len());
        for _ in 0..10 {
            lc.step(&mut g, &mut rng);
        }
        assert_eq!(g.live_len(), 2, "floor of two live peers");
    }

    #[test]
    fn compacted_remaps_staleness_clocks() {
        let (mut g, mut rng) = grid(12, 9);
        let cfg = LifecycleConfig {
            stale_after: 2,
            max_evictions_per_tick: 12,
            ..LifecycleConfig::default()
        };
        let mut lc = Lifecycle::new(cfg, g.len());
        // Evict peers 0..4 directly; the rest stay fresh.
        for p in 0..4 {
            g.leave(p);
        }
        lc.compacted(&g.compact());
        assert_eq!(g.len(), 8);
        // The survivors' clocks moved down with them: touching through
        // the new indices keeps everyone alive through stale sweeps.
        for _ in 0..6 {
            for p in 0..g.len() {
                lc.touch(p);
            }
            let r = lc.step(&mut g, &mut rng);
            assert!(r.evicted.is_empty(), "fresh peers evicted: {r:?}");
        }
        assert_eq!(g.live_len(), 8);
        g.check_invariants();
    }

    #[test]
    fn determinism_same_inputs_same_history() {
        let run = || {
            let (mut g, mut rng) = grid(24, 7);
            let cfg = LifecycleConfig {
                max_admissions_per_tick: 2,
                stale_after: 3,
                ..LifecycleConfig::default()
            };
            let mut lc = Lifecycle::new(cfg, g.len());
            let mut history = Vec::new();
            for t in 0..12u64 {
                if t % 2 == 0 {
                    lc.request_join();
                }
                for p in 0..8 {
                    lc.touch(p);
                }
                history.push(lc.step(&mut g, &mut rng));
            }
            (history, g.live_len())
        };
        assert_eq!(run(), run());
    }
}
