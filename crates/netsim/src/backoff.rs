//! Shared exponential-backoff arithmetic with overflow saturation.
//!
//! Extracted from the reputation lifecycle's rejoin scheduler so the
//! PR 8 overflow fix (`base << shift` silently wrapping to zero once the
//! shift reaches the word width) lives in exactly one place. Both the
//! lifecycle's rejoin pacing and the fault-plane retry paths
//! ([`RetryPolicy`]) compute their delays through [`backoff_delay`].
//!
//! All arithmetic here is pure — no RNG draws. [`RetryPolicy::timeout`]
//! derives its jitter from a caller-provided salt via a SplitMix64
//! finalizer, so retry schedules are bit-replayable at every thread
//! count and never perturb the simulation's shared random streams.

use crate::time::SimTime;

/// `base << shift`, saturating to `u64::MAX` instead of wrapping.
///
/// A plain `<<` on `u64` wraps silently once `shift` exceeds the
/// headroom (`2u64 << 63 == 0`), which is exactly the bug the rejoin
/// scheduler hit at high attempt counts.
pub fn saturating_shl(base: u64, shift: u32) -> u64 {
    if base == 0 {
        0
    } else if shift > base.leading_zeros() {
        u64::MAX
    } else {
        base << shift
    }
}

/// The capped exponential backoff delay for the `attempts`-th attempt.
///
/// Attempt 1 waits `base`, attempt 2 waits `2·base`, doubling up to
/// `cap`; the result is clamped to at least 1 so a zero base still
/// makes forward progress. Saturates instead of overflowing for any
/// `attempts`, including `u32::MAX`.
pub fn backoff_delay(base: u64, cap: u64, attempts: u32) -> u64 {
    cap.min(saturating_shl(base, attempts.saturating_sub(1)))
        .max(1)
}

/// SplitMix64 finalizer: a cheap, well-mixed pure hash of one word.
///
/// Used for deterministic jitter and by the fault plane's per-message
/// fate decisions — anywhere a replayable pseudo-random value must be a
/// pure function of its inputs rather than a draw from a shared stream.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bounded-retry schedule for one message path: exponential backoff
/// between attempts plus deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total send attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff base: the wait after the first failed attempt, in
    /// microseconds.
    pub base_us: u64,
    /// Backoff ceiling in microseconds (pre-jitter).
    pub cap_us: u64,
}

impl RetryPolicy {
    /// A conservative default: up to 7 attempts, 4 ms doubling to 64 ms.
    ///
    /// Worst-case cumulative wait ≈ 4+8+16+32+64+64 = 188 ms, enough for
    /// retries to straddle the partition-heal horizons the chaos
    /// experiments schedule.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 7,
            base_us: 4_000,
            cap_us: 64_000,
        }
    }

    /// Whether another attempt is allowed after `attempts` have failed.
    pub fn allows(&self, attempts: u32) -> bool {
        attempts < self.max_attempts
    }

    /// The wait before retrying once `attempts` attempts have failed:
    /// [`backoff_delay`] plus up to 25 % deterministic jitter keyed on
    /// `salt` (hash the link endpoints and attempt number in — distinct
    /// links desynchronize instead of thundering in lockstep).
    pub fn timeout(&self, attempts: u32, salt: u64) -> SimTime {
        let delay = backoff_delay(self.base_us, self.cap_us, attempts);
        let jitter_span = delay / 4 + 1;
        let jitter = splitmix64(salt ^ u64::from(attempts)) % jitter_span;
        SimTime::from_micros(delay.saturating_add(jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_saturates_at_word_width() {
        assert_eq!(saturating_shl(2, 62), 1 << 63);
        assert_eq!(saturating_shl(2, 63), u64::MAX);
        assert_eq!(saturating_shl(2, 64), u64::MAX);
        assert_eq!(saturating_shl(1, 63), 1 << 63);
        assert_eq!(saturating_shl(1, 64), u64::MAX);
        assert_eq!(saturating_shl(0, u32::MAX), 0);
        assert_eq!(saturating_shl(u64::MAX, 0), u64::MAX);
        assert_eq!(saturating_shl(u64::MAX, 1), u64::MAX);
    }

    /// The satellite's boundary ladder: attempts {63, 64, 65, u32::MAX}
    /// all pin to the cap instead of wrapping through zero.
    #[test]
    fn backoff_boundary_attempts_pin_to_cap() {
        let base = 2;
        let cap = 1_000_000;
        let ramp = backoff_delay(base, cap, 4);
        assert_eq!(ramp, 16); // 2 << 3, still on the ramp
        for attempts in [63, 64, 65, u32::MAX] {
            assert_eq!(
                backoff_delay(base, cap, attempts),
                cap,
                "attempts={attempts}"
            );
        }
    }

    #[test]
    fn backoff_floors_at_one() {
        assert_eq!(backoff_delay(0, 100, 1), 1);
        assert_eq!(backoff_delay(0, 100, u32::MAX), 1);
    }

    #[test]
    fn backoff_first_attempt_is_base() {
        assert_eq!(backoff_delay(5, 100, 0), 5);
        assert_eq!(backoff_delay(5, 100, 1), 5);
        assert_eq!(backoff_delay(5, 100, 2), 10);
    }

    #[test]
    fn retry_policy_allows_bounded_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_us: 10,
            cap_us: 40,
        };
        assert!(p.allows(0));
        assert!(p.allows(2));
        assert!(!p.allows(3));
        assert!(!p.allows(u32::MAX));
    }

    #[test]
    fn retry_timeout_is_pure_and_jitter_bounded() {
        let p = RetryPolicy::standard();
        for attempts in [1, 2, 3, 63, 64, 65, u32::MAX] {
            let a = p.timeout(attempts, 0xDEAD_BEEF);
            let b = p.timeout(attempts, 0xDEAD_BEEF);
            assert_eq!(a, b, "pure function of (attempts, salt)");
            let floor = backoff_delay(p.base_us, p.cap_us, attempts);
            let span = a.as_micros() - floor;
            assert!(span <= floor / 4, "jitter {span} beyond 25% of {floor}");
        }
        // Distinct salts actually desynchronize.
        let a = p.timeout(2, 1).as_micros();
        let b = p.timeout(2, 2).as_micros();
        let c = p.timeout(2, 3).as_micros();
        assert!(a != b || b != c, "jitter never varies across salts");
    }

    #[test]
    fn splitmix_matches_reference_vector() {
        // Reference values from the SplitMix64 paper's test vector
        // (seed 1234567's first output).
        assert_eq!(splitmix64(1234567), 6457827717110365317);
        assert_eq!(splitmix64(0), 16294208416658607535);
    }
}
