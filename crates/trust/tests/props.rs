//! Property tests for the trust models.

use proptest::prelude::*;
use trustex_trust::baselines::{EwmaTrust, MeanTrust};
use trustex_trust::beta::{BetaConfig, BetaTrust};
use trustex_trust::complaints::ComplaintTrust;
use trustex_trust::model::{Conduct, PeerId, TrustModel, WitnessReport};

fn conducts() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All models emit probabilities and confidences in [0, 1] whatever
    /// they are fed.
    #[test]
    fn estimates_always_in_range(history in conducts(), probe in 0u32..5) {
        let subject = PeerId(1);
        let mut models: Vec<Box<dyn TrustModel>> = vec![
            Box::new(BetaTrust::new()),
            Box::new(ComplaintTrust::new()),
            Box::new(MeanTrust::new()),
            Box::new(EwmaTrust::default()),
        ];
        for model in &mut models {
            for (round, honest) in history.iter().enumerate() {
                model.record_direct(subject, Conduct::from_honest(*honest), round as u64);
            }
            let est = model.predict(PeerId(probe));
            prop_assert!((0.0..=1.0).contains(&est.p_honest), "{}", model.name());
            prop_assert!((0.0..=1.0).contains(&est.confidence), "{}", model.name());
        }
    }

    /// The beta posterior mean equals (α₀+h)/(α₀+β₀+n) exactly.
    #[test]
    fn beta_posterior_closed_form(history in conducts()) {
        let mut m = BetaTrust::new();
        let subject = PeerId(1);
        for (round, honest) in history.iter().enumerate() {
            m.record_direct(subject, Conduct::from_honest(*honest), round as u64);
        }
        let h = history.iter().filter(|x| **x).count() as f64;
        let n = history.len() as f64;
        let expected = (1.0 + h) / (2.0 + n);
        prop_assert!((m.predict(subject).p_honest - expected).abs() < 1e-12);
    }

    /// Without forgetting, the beta model is exchangeable: permuting the
    /// observation order leaves the estimate unchanged.
    #[test]
    fn beta_exchangeability(history in conducts(), seed in any::<u64>()) {
        let subject = PeerId(1);
        let mut ordered = BetaTrust::new();
        for (round, honest) in history.iter().enumerate() {
            ordered.record_direct(subject, Conduct::from_honest(*honest), round as u64);
        }
        // Deterministic pseudo-shuffle of the history.
        let mut shuffled_history = history.clone();
        let mut state = seed;
        for i in (1..shuffled_history.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled_history.swap(i, j);
        }
        let mut shuffled = BetaTrust::new();
        for (round, honest) in shuffled_history.iter().enumerate() {
            shuffled.record_direct(subject, Conduct::from_honest(*honest), round as u64);
        }
        prop_assert_eq!(ordered.predict(subject).p_honest, shuffled.predict(subject).p_honest);
    }

    /// More honest observations never lower the beta estimate; more
    /// dishonest ones never raise it.
    #[test]
    fn beta_monotone_updates(history in conducts()) {
        let subject = PeerId(1);
        let mut m = BetaTrust::new();
        for (round, honest) in history.iter().enumerate() {
            let before = m.predict(subject).p_honest;
            m.record_direct(subject, Conduct::from_honest(*honest), round as u64);
            let after = m.predict(subject).p_honest;
            if *honest {
                prop_assert!(after >= before);
            } else {
                prop_assert!(after <= before);
            }
        }
    }

    /// Witness reports never dominate a contradicting direct history:
    /// with the default config, one stranger's slander moves the
    /// estimate by at most the discounted weight.
    #[test]
    fn stranger_slander_is_bounded(n_honest in 1u64..30) {
        let subject = PeerId(1);
        let mut m = BetaTrust::new();
        for round in 0..n_honest {
            m.record_direct(subject, Conduct::Honest, round);
        }
        let before = m.predict(subject).p_honest;
        m.record_witness(WitnessReport {
            witness: PeerId(99),
            subject,
            conduct: Conduct::Dishonest,
            round: n_honest,
        });
        let after = m.predict(subject).p_honest;
        // Weight 0.1 on a mass of ≥ 3 pseudo-counts: bounded drop.
        prop_assert!(before - after <= 0.05, "drop {}", before - after);
        prop_assert!(after < before, "slander must still register");
    }

    /// Complaint products are multiplicative in the two tallies and the
    /// assessment threshold scales with the population.
    #[test]
    fn complaint_product_formula(recv in 0u32..20, filed in 0u32..20) {
        let mut m = ComplaintTrust::new();
        let subject = PeerId(1);
        for v in 0..recv {
            m.file_complaint(PeerId(100 + v), subject, 0);
        }
        for v in 0..filed {
            m.file_complaint(subject, PeerId(200 + v), 0);
        }
        let expected = (recv as f64 + 1.0) * (filed as f64 + 1.0);
        prop_assert!((m.complaint_product(subject) - expected).abs() < 1e-9);
    }

    /// EWMA stays inside the convex hull of {initial, observations}.
    #[test]
    fn ewma_convexity(history in conducts(), rate in 0.01f64..1.0) {
        let subject = PeerId(1);
        let mut m = EwmaTrust::new(rate);
        for (round, honest) in history.iter().enumerate() {
            m.record_direct(subject, Conduct::from_honest(*honest), round as u64);
        }
        let p = m.predict(subject).p_honest;
        prop_assert!((0.0..=1.0).contains(&p));
        if history.iter().all(|h| *h) && !history.is_empty() {
            prop_assert!(p > 0.5, "all-honest history must trend up");
        }
        if history.iter().all(|h| !*h) && !history.is_empty() {
            prop_assert!(p < 0.5, "all-dishonest history must trend down");
        }
    }

    /// Forgetting interpolates: with factor 1 the model matches the
    /// no-forgetting posterior exactly.
    #[test]
    fn forgetting_one_is_identity(history in conducts()) {
        let subject = PeerId(1);
        let mut a = BetaTrust::new();
        let mut b = BetaTrust::with_config(BetaConfig { forgetting: 1.0, ..BetaConfig::default() });
        for (round, honest) in history.iter().enumerate() {
            a.record_direct(subject, Conduct::from_honest(*honest), round as u64);
            b.record_direct(subject, Conduct::from_honest(*honest), round as u64);
        }
        prop_assert_eq!(a.predict(subject).p_honest, b.predict(subject).p_honest);
    }
}
