//! Bayesian beta-reputation trust (the model of Mui, Mohtashemi &
//! Halberstadt, HICSS 2002 — reference \[3\] of the paper).
//!
//! Each subject's honesty is modelled as an unknown Bernoulli parameter
//! `θ` with a Beta(α, β) posterior. Direct experiences update the
//! posterior with unit weight; witness reports are *discounted* by the
//! evaluator's trust in the witness (fractional pseudo-counts), so
//! slander by unknown or distrusted witnesses has limited effect.
//!
//! The trust estimate is the posterior mean `α / (α + β)`; the confidence
//! is derived from the evidence mass, matching Mui et al.'s
//! Chernoff-bound "reliability" notion (see [`crate::confidence`]).

use crate::confidence::evidence_confidence;
use crate::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a [`BetaTrust`] model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaConfig {
    /// Prior pseudo-count of honest observations (α₀ > 0).
    pub prior_honest: f64,
    /// Prior pseudo-count of dishonest observations (β₀ > 0).
    pub prior_dishonest: f64,
    /// Per-round exponential forgetting factor in `(0, 1]`; 1 = no
    /// forgetting. Evidence from `d` rounds ago weighs `forgetting^d`.
    pub forgetting: f64,
    /// Weight multiplier for witness reports (before reliability
    /// discounting), in `[0, 1]`.
    pub witness_weight: f64,
    /// Assumed reliability of a never-graded witness, in `[0, 1]`.
    /// 0.5 ignores strangers entirely; the slightly optimistic default
    /// (0.6) lets a cold-started community benefit from gossip while
    /// graded liars still end up fully discounted.
    pub witness_prior: f64,
}

impl Default for BetaConfig {
    /// Uniform prior Beta(1, 1), no forgetting, witness weight ½,
    /// witness prior 0.6.
    fn default() -> Self {
        BetaConfig {
            prior_honest: 1.0,
            prior_dishonest: 1.0,
            forgetting: 1.0,
            witness_weight: 0.5,
            witness_prior: 0.6,
        }
    }
}

impl BetaConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics when priors are non-positive, forgetting outside `(0, 1]`,
    /// or witness weight outside `[0, 1]` — configurations are code, not
    /// user input.
    fn validate(&self) {
        assert!(
            self.prior_honest > 0.0 && self.prior_dishonest > 0.0,
            "beta priors must be positive"
        );
        assert!(
            self.forgetting > 0.0 && self.forgetting <= 1.0,
            "forgetting must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.witness_weight),
            "witness weight must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.witness_prior),
            "witness prior must be in [0, 1]"
        );
    }
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct Evidence {
    honest: f64,
    dishonest: f64,
    /// Round of the last decay application.
    last_round: u64,
}

impl Evidence {
    fn decay_to(&mut self, round: u64, forgetting: f64) {
        if forgetting < 1.0 && round > self.last_round {
            let f = forgetting.powf((round - self.last_round) as f64);
            self.honest *= f;
            self.dishonest *= f;
        }
        self.last_round = self.last_round.max(round);
    }

    fn add(&mut self, conduct: Conduct, weight: f64) {
        match conduct {
            Conduct::Honest => self.honest += weight,
            Conduct::Dishonest => self.dishonest += weight,
        }
    }
}

/// The beta-posterior trust model.
///
/// # Examples
///
/// ```
/// use trustex_trust::beta::BetaTrust;
/// use trustex_trust::model::{Conduct, PeerId, TrustModel};
///
/// let mut model = BetaTrust::new();
/// let alice = PeerId(1);
/// for _ in 0..8 {
///     model.record_direct(alice, Conduct::Honest, 0);
/// }
/// model.record_direct(alice, Conduct::Dishonest, 0);
/// let est = model.predict(alice);
/// // Posterior mean (1+8)/(2+9) ≈ 0.818.
/// assert!((est.p_honest - 9.0 / 11.0).abs() < 1e-9);
/// assert!(est.confidence > 0.5);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BetaTrust {
    config: BetaConfig,
    evidence: HashMap<PeerId, Evidence>,
    /// Witness reliability estimates (their own beta evidence), used to
    /// discount their reports.
    witness_evidence: HashMap<PeerId, Evidence>,
}

impl Default for BetaTrust {
    fn default() -> Self {
        Self::new()
    }
}

impl BetaTrust {
    /// Creates a model with [`BetaConfig::default`].
    pub fn new() -> BetaTrust {
        BetaTrust::with_config(BetaConfig::default())
    }

    /// Creates a model with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration values (see [`BetaConfig`]).
    pub fn with_config(config: BetaConfig) -> BetaTrust {
        config.validate();
        BetaTrust {
            config,
            evidence: HashMap::new(),
            witness_evidence: HashMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> BetaConfig {
        self.config
    }

    /// Marks a witness's report as later corroborated (`true`) or
    /// contradicted (`false`) by direct experience — feeds the witness
    /// reliability used for discounting.
    pub fn grade_witness(&mut self, witness: PeerId, corroborated: bool, round: u64) {
        let forgetting = self.config.forgetting;
        let e = self.witness_evidence.entry(witness).or_default();
        e.decay_to(round, forgetting);
        e.add(Conduct::from_honest(corroborated), 1.0);
    }

    /// The evaluator's reliability estimate for a witness in `[0, 1]`.
    pub fn witness_reliability(&self, witness: PeerId) -> f64 {
        match self.witness_evidence.get(&witness) {
            None => self.config.witness_prior,
            Some(e) => {
                (self.config.prior_honest + e.honest)
                    / (self.config.prior_honest
                        + self.config.prior_dishonest
                        + e.honest
                        + e.dishonest)
            }
        }
    }

    /// Raw posterior parameters `(α, β)` for a subject (including priors).
    pub fn posterior(&self, subject: PeerId) -> (f64, f64) {
        let e = self.evidence.get(&subject).copied().unwrap_or_default();
        (
            self.config.prior_honest + e.honest,
            self.config.prior_dishonest + e.dishonest,
        )
    }
}

impl TrustModel for BetaTrust {
    fn record_direct(&mut self, subject: PeerId, conduct: Conduct, round: u64) {
        let forgetting = self.config.forgetting;
        let e = self.evidence.entry(subject).or_default();
        e.decay_to(round, forgetting);
        e.add(conduct, 1.0);
    }

    fn record_witness(&mut self, report: WitnessReport) {
        // Jøsang-style discounting: the report enters with weight
        // witness_weight · (2·reliability − 1)⁺ — reports from witnesses
        // at or below coin-flip reliability are ignored entirely.
        let reliability = self.witness_reliability(report.witness);
        let discount = (2.0 * reliability - 1.0).max(0.0);
        let weight = self.config.witness_weight * discount;
        if weight <= 0.0 {
            return;
        }
        let forgetting = self.config.forgetting;
        let e = self.evidence.entry(report.subject).or_default();
        e.decay_to(report.round, forgetting);
        e.add(report.conduct, weight);
    }

    fn predict(&self, subject: PeerId) -> TrustEstimate {
        let (alpha, beta) = self.posterior(subject);
        let mean = alpha / (alpha + beta);
        // Evidence mass beyond the prior drives confidence.
        let mass = (alpha + beta) - (self.config.prior_honest + self.config.prior_dishonest);
        TrustEstimate::new(mean, evidence_confidence(mass))
    }

    fn name(&self) -> &'static str {
        "beta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: u64 = 0;

    #[test]
    fn prior_gives_half() {
        let m = BetaTrust::new();
        let e = m.predict(PeerId(9));
        assert_eq!(e.p_honest, 0.5);
        assert_eq!(e.confidence, 0.0);
    }

    #[test]
    fn posterior_mean_matches_formula() {
        let mut m = BetaTrust::new();
        let p = PeerId(1);
        for _ in 0..3 {
            m.record_direct(p, Conduct::Honest, R);
        }
        m.record_direct(p, Conduct::Dishonest, R);
        let (a, b) = m.posterior(p);
        assert_eq!((a, b), (4.0, 2.0));
        assert!((m.predict(p).p_honest - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn confidence_grows_with_evidence() {
        let mut m = BetaTrust::new();
        let p = PeerId(1);
        let mut last = m.predict(p).confidence;
        for i in 0..20 {
            m.record_direct(p, Conduct::Honest, i);
            let c = m.predict(p).confidence;
            assert!(c >= last, "confidence must be monotone");
            last = c;
        }
        assert!(last > 0.6, "confidence after 20 observations: {last}");
    }

    #[test]
    fn forgetting_discounts_old_evidence() {
        let cfg = BetaConfig {
            forgetting: 0.5,
            ..BetaConfig::default()
        };
        let mut m = BetaTrust::with_config(cfg);
        let p = PeerId(1);
        // 10 dishonest observations at round 0.
        for _ in 0..10 {
            m.record_direct(p, Conduct::Dishonest, 0);
        }
        assert!(m.predict(p).p_honest < 0.2);
        // 5 honest at round 10: the old evidence has decayed by 2^-10.
        for _ in 0..5 {
            m.record_direct(p, Conduct::Honest, 10);
        }
        assert!(
            m.predict(p).p_honest > 0.8,
            "recent honesty should dominate: {}",
            m.predict(p).p_honest
        );
    }

    #[test]
    fn no_forgetting_is_order_independent() {
        let mut a = BetaTrust::new();
        let mut b = BetaTrust::new();
        let p = PeerId(1);
        a.record_direct(p, Conduct::Honest, 0);
        a.record_direct(p, Conduct::Dishonest, 5);
        b.record_direct(p, Conduct::Dishonest, 5);
        b.record_direct(p, Conduct::Honest, 0);
        assert_eq!(a.predict(p).p_honest, b.predict(p).p_honest);
    }

    #[test]
    fn unknown_witness_reports_weigh_little() {
        let mut m = BetaTrust::new();
        let subject = PeerId(1);
        m.record_witness(WitnessReport {
            witness: PeerId(2),
            subject,
            conduct: Conduct::Dishonest,
            round: R,
        });
        // Unknown witness: prior reliability 0.6 → discount 0.2 →
        // weight 0.1: a nudge, far from a direct observation.
        let p = m.predict(subject).p_honest;
        assert!(p < 0.5 && p > 0.45, "small nudge expected: {p}");
    }

    #[test]
    fn neutral_witness_prior_ignores_strangers() {
        let mut m = BetaTrust::with_config(BetaConfig {
            witness_prior: 0.5,
            ..BetaConfig::default()
        });
        m.record_witness(WitnessReport {
            witness: PeerId(2),
            subject: PeerId(1),
            conduct: Conduct::Dishonest,
            round: R,
        });
        assert_eq!(m.predict(PeerId(1)).p_honest, 0.5);
    }

    #[test]
    fn reliable_witness_reports_move_the_estimate() {
        let mut m = BetaTrust::new();
        let witness = PeerId(2);
        let subject = PeerId(1);
        for _ in 0..10 {
            m.grade_witness(witness, true, R);
        }
        assert!(m.witness_reliability(witness) > 0.9);
        for round in 0..6 {
            m.record_witness(WitnessReport {
                witness,
                subject,
                conduct: Conduct::Dishonest,
                round,
            });
        }
        assert!(
            m.predict(subject).p_honest < 0.4,
            "trusted witness reports must matter: {}",
            m.predict(subject).p_honest
        );
    }

    #[test]
    fn contradicted_witness_loses_influence() {
        let mut m = BetaTrust::new();
        let witness = PeerId(2);
        for _ in 0..10 {
            m.grade_witness(witness, false, R);
        }
        assert!(m.witness_reliability(witness) < 0.2);
        let subject = PeerId(1);
        m.record_witness(WitnessReport {
            witness,
            subject,
            conduct: Conduct::Dishonest,
            round: R,
        });
        assert_eq!(m.predict(subject).p_honest, 0.5, "slander ignored");
    }

    #[test]
    fn witness_weight_zero_disables_witnesses() {
        let mut m = BetaTrust::with_config(BetaConfig {
            witness_weight: 0.0,
            ..BetaConfig::default()
        });
        let witness = PeerId(2);
        for _ in 0..10 {
            m.grade_witness(witness, true, R);
        }
        m.record_witness(WitnessReport {
            witness,
            subject: PeerId(1),
            conduct: Conduct::Dishonest,
            round: R,
        });
        assert_eq!(m.predict(PeerId(1)).p_honest, 0.5);
    }

    #[test]
    #[should_panic(expected = "priors must be positive")]
    fn invalid_prior_panics() {
        BetaTrust::with_config(BetaConfig {
            prior_honest: 0.0,
            ..BetaConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "forgetting")]
    fn invalid_forgetting_panics() {
        BetaTrust::with_config(BetaConfig {
            forgetting: 1.5,
            ..BetaConfig::default()
        });
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(BetaTrust::new().name(), "beta");
    }
}
