//! Message-level network model: latency distributions, loss, accounting.
//!
//! The P-Grid reputation storage (crate `trustex-reputation`) routes
//! queries through this model so that the experiment suite can report the
//! *message cost* of reputation lookups — the metric the underlying
//! CIKM 2001 system was evaluated on — without opening real sockets.

use crate::rng::SimRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a simulated node.
///
/// A plain newtype over `u32`; the reputation layer maps its own peer
/// identifiers onto these.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// One-way message latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Latency {
    /// Every message takes exactly this long (microseconds).
    Constant(u64),
    /// Uniform in `[lo, hi)` microseconds.
    Uniform {
        /// Inclusive lower bound in microseconds.
        lo: u64,
        /// Exclusive upper bound in microseconds.
        hi: u64,
    },
    /// Mostly `base`, but with probability `spike_prob` a spike of
    /// `base * spike_factor` — a crude model of congested links.
    Spiky {
        /// Baseline latency in microseconds.
        base: u64,
        /// Probability of a spike, in `[0, 1]`.
        spike_prob: f64,
        /// Multiplier applied to `base` during a spike.
        spike_factor: u64,
    },
}

impl Default for Latency {
    /// A LAN-ish default: uniform 200µs–2ms.
    fn default() -> Self {
        Latency::Uniform { lo: 200, hi: 2_000 }
    }
}

impl Latency {
    /// Samples a one-way delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimTime {
        let us = match *self {
            Latency::Constant(us) => us,
            Latency::Uniform { lo, hi } => {
                if lo + 1 >= hi {
                    lo
                } else {
                    rng.range_u64(lo, hi)
                }
            }
            Latency::Spiky {
                base,
                spike_prob,
                spike_factor,
            } => {
                if rng.chance(spike_prob) {
                    base.saturating_mul(spike_factor)
                } else {
                    base
                }
            }
        };
        SimTime::from_micros(us)
    }
}

/// Static configuration of a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// One-way latency model.
    pub latency: Latency,
    /// Independent probability that any message is silently dropped.
    pub drop_prob: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: Latency::default(),
            drop_prob: 0.0,
        }
    }
}

/// Outcome of attempting to send one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Message arrives after the contained one-way delay.
    Delivered(SimTime),
    /// Message was lost.
    Dropped,
}

/// A message-accounting network model.
///
/// `Network` does not own an event queue; callers sample deliveries and
/// schedule them however they like (the P-Grid layer routes recursively
/// and simply sums delays and hops). What `Network` *does* own is the
/// bookkeeping: messages sent / dropped per kind, so experiments can
/// report exact message complexities.
///
/// # Examples
///
/// ```
/// use trustex_netsim::net::{Network, NetConfig, Latency, Delivery};
/// use trustex_netsim::rng::SimRng;
///
/// let mut rng = SimRng::new(1);
/// let mut net = Network::new(NetConfig { latency: Latency::Constant(500), drop_prob: 0.0 });
/// match net.send("query", &mut rng) {
///     Delivery::Delivered(d) => assert_eq!(d.as_micros(), 500),
///     Delivery::Dropped => unreachable!(),
/// }
/// assert_eq!(net.sent("query"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetConfig,
    sent: BTreeMap<&'static str, u64>,
    dropped: BTreeMap<&'static str, u64>,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(cfg: NetConfig) -> Self {
        Network {
            cfg,
            sent: BTreeMap::new(),
            dropped: BTreeMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }

    /// Attempts to send a message of the given kind, returning its fate.
    ///
    /// Every call counts as one sent message of `kind`; drops are counted
    /// separately.
    pub fn send(&mut self, kind: &'static str, rng: &mut SimRng) -> Delivery {
        *self.sent.entry(kind).or_insert(0) += 1;
        if rng.chance(self.cfg.drop_prob) {
            *self.dropped.entry(kind).or_insert(0) += 1;
            Delivery::Dropped
        } else {
            Delivery::Delivered(self.cfg.latency.sample(rng))
        }
    }

    /// Messages sent of a given kind (including later-dropped ones).
    pub fn sent(&self, kind: &str) -> u64 {
        self.sent.get(kind).copied().unwrap_or(0)
    }

    /// Messages dropped of a given kind.
    pub fn dropped(&self, kind: &str) -> u64 {
        self.dropped.get(kind).copied().unwrap_or(0)
    }

    /// Total messages sent across all kinds.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total messages dropped across all kinds.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Iterates over `(kind, sent, dropped)` triples in kind order.
    pub fn iter_kinds(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.sent.iter().map(move |(k, s)| {
            let d = self.dropped.get(k).copied().unwrap_or(0);
            (*k, *s, d)
        })
    }

    /// Resets all counters (configuration is kept).
    pub fn reset_counters(&mut self) {
        self.sent.clear();
        self.dropped.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency() {
        let mut rng = SimRng::new(1);
        let lat = Latency::Constant(750);
        for _ in 0..10 {
            assert_eq!(lat.sample(&mut rng).as_micros(), 750);
        }
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let mut rng = SimRng::new(2);
        let lat = Latency::Uniform { lo: 100, hi: 200 };
        for _ in 0..1000 {
            let d = lat.sample(&mut rng).as_micros();
            assert!((100..200).contains(&d), "{d}");
        }
    }

    #[test]
    fn uniform_degenerate_band() {
        let mut rng = SimRng::new(3);
        let lat = Latency::Uniform { lo: 100, hi: 100 };
        assert_eq!(lat.sample(&mut rng).as_micros(), 100);
    }

    #[test]
    fn spiky_latency_spikes() {
        let mut rng = SimRng::new(4);
        let lat = Latency::Spiky {
            base: 100,
            spike_prob: 0.5,
            spike_factor: 10,
        };
        let mut base_seen = false;
        let mut spike_seen = false;
        for _ in 0..200 {
            match lat.sample(&mut rng).as_micros() {
                100 => base_seen = true,
                1_000 => spike_seen = true,
                other => panic!("unexpected latency {other}"),
            }
        }
        assert!(base_seen && spike_seen);
    }

    #[test]
    fn send_counts_and_drops() {
        let mut rng = SimRng::new(5);
        let mut net = Network::new(NetConfig {
            latency: Latency::Constant(10),
            drop_prob: 0.5,
        });
        let mut delivered = 0;
        for _ in 0..1000 {
            if let Delivery::Delivered(_) = net.send("q", &mut rng) {
                delivered += 1;
            }
        }
        assert_eq!(net.sent("q"), 1000);
        assert_eq!(net.dropped("q") + delivered, 1000);
        let frac = net.dropped("q") as f64 / 1000.0;
        assert!((frac - 0.5).abs() < 0.06, "drop fraction {frac}");
    }

    #[test]
    fn kinds_are_separate() {
        let mut rng = SimRng::new(6);
        let mut net = Network::new(NetConfig::default());
        net.send("a", &mut rng);
        net.send("a", &mut rng);
        net.send("b", &mut rng);
        assert_eq!(net.sent("a"), 2);
        assert_eq!(net.sent("b"), 1);
        assert_eq!(net.sent("c"), 0);
        assert_eq!(net.total_sent(), 3);
        let kinds: Vec<_> = net.iter_kinds().collect();
        assert_eq!(kinds, vec![("a", 2, 0), ("b", 1, 0)]);
    }

    #[test]
    fn reset_keeps_config() {
        let mut rng = SimRng::new(7);
        let cfg = NetConfig {
            latency: Latency::Constant(1),
            drop_prob: 0.25,
        };
        let mut net = Network::new(cfg);
        net.send("x", &mut rng);
        net.reset_counters();
        assert_eq!(net.total_sent(), 0);
        assert_eq!(net.config(), cfg);
    }

    #[test]
    fn node_id_display_and_from() {
        let n: NodeId = 7u32.into();
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(n, NodeId(7));
    }
}
