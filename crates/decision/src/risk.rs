//! Risk attitudes.
//!
//! The paper (§3) leaves "how much to decrease the expected gains" to the
//! partners, noting it depends on their *risk averseness* and the
//! opponent's trustworthiness. [`RiskProfile`] captures the risk
//! averseness half: it scales the fraction of the completion gain a party
//! is willing to put at risk.

use serde::{Deserialize, Serialize};

/// A party's attitude towards exposure risk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum RiskProfile {
    /// Accepts a risk budget equal to the base fraction of its gain.
    #[default]
    Neutral,
    /// Scales the budget down: `gamma` in `(0, 1)`; smaller = more
    /// cautious.
    Averse {
        /// Budget multiplier in `(0, 1)`.
        gamma: f64,
    },
    /// Scales the budget up: `gamma > 1`; larger = more aggressive.
    Seeking {
        /// Budget multiplier `> 1`.
        gamma: f64,
    },
}

impl RiskProfile {
    /// The multiplier applied to the base risk budget.
    ///
    /// # Panics
    ///
    /// Panics if an averse gamma is outside `(0, 1]` or a seeking gamma
    /// is `< 1` — profiles are configuration, not user input.
    pub fn multiplier(self) -> f64 {
        match self {
            RiskProfile::Neutral => 1.0,
            RiskProfile::Averse { gamma } => {
                assert!(gamma > 0.0 && gamma <= 1.0, "averse gamma in (0,1]");
                gamma
            }
            RiskProfile::Seeking { gamma } => {
                assert!(gamma >= 1.0, "seeking gamma ≥ 1");
                gamma
            }
        }
    }

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            RiskProfile::Neutral => "neutral",
            RiskProfile::Averse { .. } => "averse",
            RiskProfile::Seeking { .. } => "seeking",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multipliers() {
        assert_eq!(RiskProfile::Neutral.multiplier(), 1.0);
        assert_eq!(RiskProfile::Averse { gamma: 0.25 }.multiplier(), 0.25);
        assert_eq!(RiskProfile::Seeking { gamma: 2.0 }.multiplier(), 2.0);
        assert_eq!(RiskProfile::default(), RiskProfile::Neutral);
    }

    #[test]
    #[should_panic(expected = "averse gamma")]
    fn bad_averse() {
        RiskProfile::Averse { gamma: 1.5 }.multiplier();
    }

    #[test]
    #[should_panic(expected = "seeking gamma")]
    fn bad_seeking() {
        RiskProfile::Seeking { gamma: 0.5 }.multiplier();
    }

    #[test]
    fn labels() {
        assert_eq!(RiskProfile::Neutral.label(), "neutral");
        assert_eq!(RiskProfile::Averse { gamma: 0.5 }.label(), "averse");
        assert_eq!(RiskProfile::Seeking { gamma: 2.0 }.label(), "seeking");
    }
}
