//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of criterion's API that the `e0`–`e10` benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`Throughput`], [`criterion_group!`] and [`criterion_main!`] — backed
//! by a deliberately simple wall-clock sampler: each benchmark is warmed
//! up once, then timed over an adaptive number of iterations bounded by a
//! per-benchmark time budget, and the mean ns/iter is printed.
//!
//! Two command-line flags mirror the real harness closely enough for
//! cargo integration: `--test` runs every benchmark body exactly once
//! (this is what `cargo test --benches` passes), and a positional
//! `<filter>` substring restricts which benchmarks run. All other flags
//! (`--bench`, which cargo passes to bench targets) are ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget for the adaptive sampler.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// How the harness should treat each registered benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Warm up, then sample adaptively and report ns/iter.
    Measure,
    /// Run the body exactly once (smoke mode; `--test`).
    TestOnce,
}

/// Stand-in for `criterion::Criterion`, the harness entry point.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut mode = Mode::Measure;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => mode = Mode::TestOnce,
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { mode, filter }
    }
}

impl Criterion {
    /// Benchmark a single function under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.0, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, f: &mut F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.mode,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        match self.mode {
            Mode::TestOnce => println!("test {name} ... ok"),
            Mode::Measure => println!("{name:<50} {:>14.1} ns/iter", bencher.mean_ns),
        }
    }
}

/// Stand-in for `criterion::BenchmarkGroup`: scopes related benchmarks
/// under a shared name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Declare the throughput of each iteration (recorded, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Set the target sample count (the stub's adaptive sampler ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the target measurement time (the stub's budget is fixed).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Set the warm-up time (the stub always warms up with one call).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a function within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Benchmark a function parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.criterion
            .run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Close the group. (The stub keeps no cross-group state.)
    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`: times the closure passed to
/// [`Bencher::iter`].
pub struct Bencher {
    mode: Mode,
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive via [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::TestOnce {
            black_box(routine());
            return;
        }
        // Warm-up call doubles as the pilot measurement.
        let pilot_start = Instant::now();
        black_box(routine());
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));

        // Choose an iteration count that fits the time budget.
        let iters = (TIME_BUDGET.as_nanos() / pilot.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// Benchmark identifier; renders as `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A two-part id: function name plus parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id that is just the parameter value (group supplies the name).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Stand-in for `criterion::Throughput`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes processed per iteration, reported in decimal units.
    BytesDecimal(u64),
}

/// Identity function the optimiser must treat as opaque
/// (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a named group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` that runs each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
