//! E3 bench: full scheduling (order + payments + verification) under
//! trust-aware margins, per workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_core::policy::PaymentPolicy;
use trustex_core::safety::SafetyMargins;
use trustex_core::scheduler::{schedule, Algorithm};
use trustex_market::workload::Workload;
use trustex_netsim::rng::SimRng;

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3/schedule_verified");
    for w in Workload::ALL {
        let mut rng = SimRng::new(5);
        let deal = w.generate_deal(&mut rng);
        let margins = SafetyMargins::symmetric(deal.goods().total_surplus()).expect("non-negative");
        group.bench_with_input(BenchmarkId::from_parameter(w.label()), &deal, |b, deal| {
            b.iter(|| {
                black_box(
                    schedule(deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)
                        .expect("feasible at surplus-wide margins"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
