//! Agent profiles and population mixes.
//!
//! A profile couples an exchange behaviour with a reporting behaviour; a
//! [`PopulationMix`] describes the composition of a community and samples
//! concrete populations deterministically.

use crate::adversary::Faction;
use crate::behavior::ExchangeBehavior;
use crate::reporting::ReportingBehavior;
use serde::{Deserialize, Serialize};
use trustex_netsim::rng::SimRng;

/// One agent's complete behavioural profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentProfile {
    /// Behaviour inside exchanges.
    pub exchange: ExchangeBehavior,
    /// Behaviour towards the reputation system.
    pub reporting: ReportingBehavior,
    /// Coordinated-campaign membership ([`Faction::None`] for every
    /// independent profile).
    pub faction: Faction,
}

impl AgentProfile {
    /// The canonical honest citizen.
    pub fn honest() -> AgentProfile {
        AgentProfile {
            exchange: ExchangeBehavior::Honest,
            reporting: ReportingBehavior::Truthful,
            faction: Faction::None,
        }
    }

    /// A cheater that also lies about its victims.
    pub fn malicious(defect_prob: f64) -> AgentProfile {
        AgentProfile {
            exchange: ExchangeBehavior::Stochastic { defect_prob },
            reporting: ReportingBehavior::Liar,
            faction: Faction::None,
        }
    }
}

/// A weighted mixture of profiles describing a community.
///
/// # Examples
///
/// ```
/// use trustex_agents::profile::{AgentProfile, PopulationMix};
/// use trustex_netsim::rng::SimRng;
///
/// let mix = PopulationMix::new(vec![
///     (0.7, AgentProfile::honest()),
///     (0.3, AgentProfile::malicious(0.8)),
/// ]);
/// let mut rng = SimRng::new(1);
/// let population = mix.sample(100, &mut rng);
/// assert_eq!(population.len(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationMix {
    entries: Vec<(f64, AgentProfile)>,
}

impl PopulationMix {
    /// Creates a mix from `(weight, profile)` entries.
    ///
    /// # Panics
    ///
    /// Panics when empty or when any weight is negative / non-finite, or
    /// all weights are zero.
    pub fn new(entries: Vec<(f64, AgentProfile)>) -> PopulationMix {
        assert!(!entries.is_empty(), "population mix cannot be empty");
        let total: f64 = entries.iter().map(|(w, _)| *w).sum();
        assert!(
            entries.iter().all(|(w, _)| w.is_finite() && *w >= 0.0) && total > 0.0,
            "weights must be non-negative with positive sum"
        );
        PopulationMix { entries }
    }

    /// The standard experiment mix: `1 − dishonest_fraction` honest
    /// truthful agents, the rest zero-stake rational defectors of which
    /// `liar_share` also lie in their reports.
    pub fn standard(dishonest_fraction: f64, liar_share: f64) -> PopulationMix {
        let d = dishonest_fraction.clamp(0.0, 1.0);
        let l = liar_share.clamp(0.0, 1.0);
        let mut entries = vec![(1.0 - d, AgentProfile::honest())];
        if d > 0.0 {
            entries.push((
                d * (1.0 - l),
                AgentProfile {
                    exchange: ExchangeBehavior::Rational { stake_micros: 0 },
                    reporting: ReportingBehavior::Truthful,
                    faction: Faction::None,
                },
            ));
            if l > 0.0 {
                entries.push((
                    d * l,
                    AgentProfile {
                        exchange: ExchangeBehavior::Rational { stake_micros: 0 },
                        reporting: ReportingBehavior::Liar,
                        faction: Faction::None,
                    },
                ));
            }
        }
        PopulationMix::new(entries)
    }

    /// The mix entries.
    pub fn entries(&self) -> &[(f64, AgentProfile)] {
        &self.entries
    }

    /// Samples a concrete population of `n` agents.
    ///
    /// Deterministic given the RNG state; the realized composition
    /// matches the weights in expectation (stratified assignment keeps it
    /// close to exact: quotas are computed by largest remainder, then the
    /// assignment is shuffled).
    pub fn sample(&self, n: usize, rng: &mut SimRng) -> Vec<AgentProfile> {
        let total: f64 = self.entries.iter().map(|(w, _)| *w).sum();
        // Largest-remainder quotas.
        let mut quotas: Vec<(usize, f64)> = self
            .entries
            .iter()
            .map(|(w, _)| {
                let exact = n as f64 * w / total;
                (exact.floor() as usize, exact.fract())
            })
            .collect();
        let assigned: usize = quotas.iter().map(|(q, _)| *q).sum();
        // Distribute the remainder by largest fractional part (ties by
        // entry order for determinism).
        let mut order: Vec<usize> = (0..quotas.len()).collect();
        order.sort_by(|&a, &b| {
            quotas[b]
                .1
                .partial_cmp(&quotas[a].1)
                .expect("finite weights")
                .then(a.cmp(&b))
        });
        for i in 0..(n - assigned) {
            quotas[order[i % order.len()]].0 += 1;
        }
        let mut population = Vec::with_capacity(n);
        for ((q, _), (_, profile)) in quotas.iter().zip(&self.entries) {
            population.extend(std::iter::repeat_n(*profile, *q));
        }
        rng.shuffle(&mut population);
        population
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_respects_quotas_exactly() {
        let mix = PopulationMix::new(vec![
            (0.5, AgentProfile::honest()),
            (0.5, AgentProfile::malicious(1.0)),
        ]);
        let mut rng = SimRng::new(3);
        let pop = mix.sample(10, &mut rng);
        let honest = pop
            .iter()
            .filter(|p| p.exchange == ExchangeBehavior::Honest)
            .count();
        assert_eq!(honest, 5);
    }

    #[test]
    fn largest_remainder_rounds_sensibly() {
        let mix = PopulationMix::new(vec![
            (2.0, AgentProfile::honest()),
            (1.0, AgentProfile::malicious(1.0)),
        ]);
        let mut rng = SimRng::new(4);
        let pop = mix.sample(10, &mut rng);
        let honest = pop
            .iter()
            .filter(|p| p.exchange == ExchangeBehavior::Honest)
            .count();
        assert!(honest == 7, "2/3 of 10 ≈ 7 by largest remainder: {honest}");
        assert_eq!(pop.len(), 10);
    }

    #[test]
    fn sample_is_shuffled_but_deterministic() {
        let mix = PopulationMix::standard(0.5, 0.0);
        let mut rng1 = SimRng::new(5);
        let mut rng2 = SimRng::new(5);
        let a = mix.sample(50, &mut rng1);
        let b = mix.sample(50, &mut rng2);
        assert_eq!(a, b, "same seed, same population");
        // Not all honest agents first (shuffled).
        let first_half_honest = a[..25]
            .iter()
            .filter(|p| p.exchange == ExchangeBehavior::Honest)
            .count();
        assert!(first_half_honest > 5 && first_half_honest < 20);
    }

    #[test]
    fn standard_mix_composition() {
        let mix = PopulationMix::standard(0.4, 0.5);
        let mut rng = SimRng::new(6);
        let pop = mix.sample(100, &mut rng);
        let honest = pop
            .iter()
            .filter(|p| p.exchange == ExchangeBehavior::Honest)
            .count();
        let liars = pop
            .iter()
            .filter(|p| p.reporting == ReportingBehavior::Liar)
            .count();
        assert_eq!(honest, 60);
        assert_eq!(liars, 20);
    }

    #[test]
    fn standard_mix_degenerate_fractions() {
        let all_honest = PopulationMix::standard(0.0, 0.0);
        let mut rng = SimRng::new(7);
        assert!(all_honest
            .sample(10, &mut rng)
            .iter()
            .all(|p| p.exchange == ExchangeBehavior::Honest));
        let all_bad = PopulationMix::standard(1.0, 1.0);
        assert!(all_bad
            .sample(10, &mut rng)
            .iter()
            .all(|p| p.exchange != ExchangeBehavior::Honest));
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_mix_panics() {
        PopulationMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        PopulationMix::new(vec![(-1.0, AgentProfile::honest())]);
    }

    #[test]
    fn profile_constructors() {
        let h = AgentProfile::honest();
        assert!(h.exchange.is_fundamentally_honest());
        assert!(h.reporting.is_truthful());
        let m = AgentProfile::malicious(0.9);
        assert!(!m.exchange.is_fundamentally_honest());
        assert!(!m.reporting.is_truthful());
    }
}
