//! Node availability (churn) timelines.
//!
//! Peer-to-peer reputation storage must tolerate peers joining and
//! leaving. [`ChurnModel`] describes alternating exponential up/down
//! periods; [`ChurnTimeline`] materialises one deterministic timeline per
//! node over a finite horizon and answers point queries.

use crate::rng::SimRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Alternating-renewal churn model: nodes are up for an exponential
/// duration with mean `mean_up`, then down with mean `mean_down`
/// (both in simulated seconds).
///
/// `initial_up_prob` gives the probability that a node starts in the up
/// state; the stationary choice is `mean_up / (mean_up + mean_down)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnModel {
    /// Mean duration of an up period, in seconds.
    pub mean_up: f64,
    /// Mean duration of a down period, in seconds.
    pub mean_down: f64,
    /// Probability a node starts up.
    pub initial_up_prob: f64,
}

impl ChurnModel {
    /// A model in which every node is permanently up.
    pub const ALWAYS_UP: ChurnModel = ChurnModel {
        mean_up: f64::INFINITY,
        mean_down: 1.0,
        initial_up_prob: 1.0,
    };

    /// Creates a churn model with the stationary initial-state probability.
    ///
    /// # Panics
    ///
    /// Panics if either mean is not positive.
    pub fn new(mean_up: f64, mean_down: f64) -> Self {
        assert!(mean_up > 0.0 && mean_down > 0.0);
        let p = if mean_up.is_infinite() {
            1.0
        } else {
            mean_up / (mean_up + mean_down)
        };
        ChurnModel {
            mean_up,
            mean_down,
            initial_up_prob: p,
        }
    }

    /// Expected long-run fraction of time a node is available.
    pub fn availability(&self) -> f64 {
        if self.mean_up.is_infinite() {
            1.0
        } else {
            self.mean_up / (self.mean_up + self.mean_down)
        }
    }
}

/// A materialised availability timeline for a set of nodes.
///
/// For each node the timeline stores the sorted instants at which the node
/// flips state; queries binary-search those instants.
///
/// # Examples
///
/// ```
/// use trustex_netsim::churn::{ChurnModel, ChurnTimeline};
/// use trustex_netsim::rng::SimRng;
/// use trustex_netsim::time::SimTime;
///
/// let mut rng = SimRng::new(3);
/// let tl = ChurnTimeline::generate(8, SimTime::from_secs(100), ChurnModel::ALWAYS_UP, &mut rng);
/// assert!(tl.is_up(0, SimTime::from_secs(50)));
/// assert_eq!(tl.up_nodes(SimTime::from_secs(50)).len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ChurnTimeline {
    initial_up: Vec<bool>,
    // Flip instants per node, strictly increasing.
    flips: Vec<Vec<SimTime>>,
    horizon: SimTime,
}

impl ChurnTimeline {
    /// Generates a deterministic timeline for `n` nodes over `[0, horizon]`.
    pub fn generate(n: usize, horizon: SimTime, model: ChurnModel, rng: &mut SimRng) -> Self {
        let mut initial_up = Vec::with_capacity(n);
        let mut flips = Vec::with_capacity(n);
        for _ in 0..n {
            let mut up = rng.chance(model.initial_up_prob);
            initial_up.push(up);
            let mut node_flips = Vec::new();
            let mut t = 0.0f64;
            let horizon_s = horizon.as_secs_f64();
            loop {
                let mean = if up { model.mean_up } else { model.mean_down };
                if mean.is_infinite() {
                    break;
                }
                // Exponential holding time with the current state's mean.
                t += rng.exponential(1.0 / mean);
                if t >= horizon_s {
                    break;
                }
                // Truncating to whole microseconds can land two close
                // flips on the same instant, where `is_up`'s partition
                // point would swallow both toggles; bump to keep the
                // flip list strictly increasing.
                let mut instant = SimTime::from_micros((t * 1e6) as u64);
                if let Some(&last) = node_flips.last() {
                    if instant <= last {
                        instant = SimTime::from_micros(last.as_micros() + 1);
                    }
                }
                node_flips.push(instant);
                up = !up;
            }
            flips.push(node_flips);
        }
        ChurnTimeline {
            initial_up,
            flips,
            horizon,
        }
    }

    /// Number of nodes covered by the timeline.
    pub fn len(&self) -> usize {
        self.initial_up.len()
    }

    /// Whether the timeline covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.initial_up.is_empty()
    }

    /// The generation horizon; queries beyond it extrapolate the last state.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Whether `node` is up at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_up(&self, node: usize, t: SimTime) -> bool {
        let n_flips = self.flips[node].partition_point(|ft| *ft <= t);
        // Each flip toggles the state; even count = initial state.
        self.initial_up[node] ^ (n_flips % 2 == 1)
    }

    /// Indices of all nodes that are up at time `t`.
    pub fn up_nodes(&self, t: SimTime) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.is_up(i, t)).collect()
    }

    /// Fraction of nodes up at time `t` (0 when there are no nodes).
    pub fn availability_at(&self, t: SimTime) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.up_nodes(t).len() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_up_never_flips() {
        let mut rng = SimRng::new(1);
        let tl = ChurnTimeline::generate(
            10,
            SimTime::from_secs(1_000),
            ChurnModel::ALWAYS_UP,
            &mut rng,
        );
        for i in 0..10 {
            assert!(tl.is_up(i, SimTime::ZERO));
            assert!(tl.is_up(i, SimTime::from_secs(999)));
        }
        assert!((tl.availability_at(SimTime::from_secs(500)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_availability_close_to_model() {
        let mut rng = SimRng::new(2);
        let model = ChurnModel::new(30.0, 10.0); // availability 0.75
        let tl = ChurnTimeline::generate(2_000, SimTime::from_secs(500), model, &mut rng);
        let a = tl.availability_at(SimTime::from_secs(250));
        assert!((a - 0.75).abs() < 0.05, "availability {a}");
    }

    #[test]
    fn flips_toggle_state() {
        let mut rng = SimRng::new(3);
        let model = ChurnModel::new(1.0, 1.0);
        let tl = ChurnTimeline::generate(50, SimTime::from_secs(100), model, &mut rng);
        // Walk one node through its flip list and confirm is_up alternates.
        let node = 0;
        let mut expect = tl.initial_up[node];
        assert_eq!(tl.is_up(node, SimTime::ZERO), expect);
        for &ft in &tl.flips[node] {
            expect = !expect;
            assert_eq!(tl.is_up(node, ft), expect, "state after flip at {ft}");
        }
    }

    #[test]
    fn model_constructor_stationary_prob() {
        let m = ChurnModel::new(20.0, 5.0);
        assert!((m.initial_up_prob - 0.8).abs() < 1e-12);
        assert!((m.availability() - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn invalid_model_panics() {
        ChurnModel::new(0.0, 1.0);
    }

    #[test]
    fn determinism() {
        let mk = || {
            let mut rng = SimRng::new(77);
            ChurnTimeline::generate(
                20,
                SimTime::from_secs(100),
                ChurnModel::new(5.0, 5.0),
                &mut rng,
            )
        };
        let a = mk();
        let b = mk();
        for t in [0u64, 10, 50, 99] {
            assert_eq!(
                a.up_nodes(SimTime::from_secs(t)),
                b.up_nodes(SimTime::from_secs(t))
            );
        }
    }

    /// Regression: sub-microsecond holding times used to truncate onto
    /// the same `SimTime`, breaking the documented strictly-increasing
    /// invariant and making `is_up` swallow both toggles at that instant.
    #[test]
    fn flips_stay_strictly_increasing_under_submicrosecond_holding_times() {
        let mut rng = SimRng::new(11);
        // Mean down-time of 1 ns: consecutive down→up flips land well
        // inside the same microsecond before truncation.
        let model = ChurnModel::new(2.0, 1e-9);
        let tl = ChurnTimeline::generate(64, SimTime::from_secs(50), model, &mut rng);
        let mut collisions_possible = 0usize;
        for node in 0..tl.len() {
            let flips = &tl.flips[node];
            for pair in flips.windows(2) {
                assert!(
                    pair[0] < pair[1],
                    "node {node}: flips must be strictly increasing, got {:?}",
                    pair
                );
                if pair[1].as_micros() - pair[0].as_micros() == 1 {
                    collisions_possible += 1;
                }
            }
            // Every flip must be observable: the state at flip k differs
            // from the state just before it.
            let mut expect = tl.initial_up[node];
            for &ft in flips {
                expect = !expect;
                assert_eq!(tl.is_up(node, ft), expect, "node {node} flip at {ft}");
            }
        }
        assert!(
            collisions_possible > 0,
            "the scenario must actually exercise the collision path"
        );
    }

    #[test]
    fn empty_timeline() {
        let mut rng = SimRng::new(4);
        let tl = ChurnTimeline::generate(0, SimTime::from_secs(1), ChurnModel::ALWAYS_UP, &mut rng);
        assert!(tl.is_empty());
        assert_eq!(tl.availability_at(SimTime::ZERO), 0.0);
    }
}
