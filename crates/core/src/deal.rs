//! A deal: goods plus an agreed total price.
//!
//! The paper assumes supplier and consumer "agreed about the overall price
//! the consumer will have to pay for the goods (P)". A [`Deal`] packages
//! the goods set with that price and checks *individual rationality*: a
//! price below the supplier's total cost or above the consumer's total
//! value would make one side prefer not to trade at all, independent of
//! trust.

use crate::goods::Goods;
use crate::money::Money;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error constructing a [`Deal`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DealError {
    /// `P < Vs(G)`: the supplier would lose money even if fully paid.
    PriceBelowCost {
        /// The offered price.
        price: Money,
        /// The supplier's total cost `Vs(G)`.
        total_cost: Money,
    },
    /// `P > Vc(G)`: the consumer pays more than the goods are worth.
    PriceAboveValue {
        /// The offered price.
        price: Money,
        /// The consumer's total value `Vc(G)`.
        total_value: Money,
    },
    /// Negative prices are not meaningful.
    NegativePrice,
}

impl fmt::Display for DealError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DealError::PriceBelowCost { price, total_cost } => {
                write!(f, "price {price} below total supplier cost {total_cost}")
            }
            DealError::PriceAboveValue { price, total_value } => {
                write!(f, "price {price} above total consumer value {total_value}")
            }
            DealError::NegativePrice => write!(f, "negative price"),
        }
    }
}

impl std::error::Error for DealError {}

/// An individually rational deal: goods and total price `P` with
/// `Vs(G) ≤ P ≤ Vc(G)`.
///
/// # Examples
///
/// ```
/// use trustex_core::deal::Deal;
/// use trustex_core::goods::Goods;
/// use trustex_core::money::Money;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0)])?;
/// let deal = Deal::new(goods, Money::from_units(6))?;
/// assert_eq!(deal.supplier_profit(), Money::from_units(3));
/// assert_eq!(deal.consumer_surplus(), Money::from_units(3));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deal {
    goods: Goods,
    price: Money,
}

impl Deal {
    /// Creates a deal, validating individual rationality.
    ///
    /// # Errors
    ///
    /// Returns a [`DealError`] when the price is negative, below `Vs(G)`,
    /// or above `Vc(G)`.
    pub fn new(goods: Goods, price: Money) -> Result<Deal, DealError> {
        if price.is_negative() {
            return Err(DealError::NegativePrice);
        }
        if price < goods.total_supplier_cost() {
            return Err(DealError::PriceBelowCost {
                price,
                total_cost: goods.total_supplier_cost(),
            });
        }
        if price > goods.total_consumer_value() {
            return Err(DealError::PriceAboveValue {
                price,
                total_value: goods.total_consumer_value(),
            });
        }
        Ok(Deal { goods, price })
    }

    /// Creates a deal that splits the total surplus in half:
    /// `P = (Vs(G) + Vc(G)) / 2` — the symmetric Nash bargaining price.
    ///
    /// # Errors
    ///
    /// Propagates [`DealError`] (only possible for degenerate goods whose
    /// total surplus is negative, which `Goods` permits item-wise but not
    /// in aggregate here).
    pub fn with_split_surplus(goods: Goods) -> Result<Deal, DealError> {
        let mid_micros = (goods.total_supplier_cost().as_micros()
            + goods.total_consumer_value().as_micros())
            / 2;
        let price = Money::from_micros(mid_micros);
        Deal::new(goods, price)
    }

    /// The goods being exchanged.
    pub fn goods(&self) -> &Goods {
        &self.goods
    }

    /// The agreed total price `P`.
    pub fn price(&self) -> Money {
        self.price
    }

    /// The supplier's profit on completion: `P − Vs(G)` (≥ 0).
    pub fn supplier_profit(&self) -> Money {
        self.price - self.goods.total_supplier_cost()
    }

    /// The consumer's surplus on completion: `Vc(G) − P` (≥ 0).
    pub fn consumer_surplus(&self) -> Money {
        self.goods.total_consumer_value() - self.price
    }

    /// Decomposes the deal into its goods and price.
    pub fn into_parts(self) -> (Goods, Money) {
        (self.goods, self.price)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goods() -> Goods {
        Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap()
        // Vs(G) = 6, Vc(G) = 12
    }

    #[test]
    fn valid_deal() {
        let d = Deal::new(goods(), Money::from_units(9)).unwrap();
        assert_eq!(d.price(), Money::from_units(9));
        assert_eq!(d.supplier_profit(), Money::from_units(3));
        assert_eq!(d.consumer_surplus(), Money::from_units(3));
        assert_eq!(d.goods().len(), 3);
    }

    #[test]
    fn boundary_prices_allowed() {
        assert!(Deal::new(goods(), Money::from_units(6)).is_ok());
        assert!(Deal::new(goods(), Money::from_units(12)).is_ok());
    }

    #[test]
    fn price_below_cost_rejected() {
        let err = Deal::new(goods(), Money::from_units(5)).unwrap_err();
        assert!(matches!(err, DealError::PriceBelowCost { .. }));
        assert!(err.to_string().contains("below total supplier cost"));
    }

    #[test]
    fn price_above_value_rejected() {
        let err = Deal::new(goods(), Money::from_units(13)).unwrap_err();
        assert!(matches!(err, DealError::PriceAboveValue { .. }));
    }

    #[test]
    fn negative_price_rejected() {
        let err = Deal::new(goods(), Money::from_units(-1)).unwrap_err();
        assert_eq!(err, DealError::NegativePrice);
    }

    #[test]
    fn split_surplus_is_midpoint() {
        let d = Deal::with_split_surplus(goods()).unwrap();
        assert_eq!(d.price(), Money::from_units(9));
        assert_eq!(d.supplier_profit(), d.consumer_surplus());
    }

    #[test]
    fn into_parts_roundtrip() {
        let d = Deal::new(goods(), Money::from_units(7)).unwrap();
        let (g, p) = d.into_parts();
        assert_eq!(p, Money::from_units(7));
        assert_eq!(g.len(), 3);
    }
}
