//! Durable evidence for the whole trust service: the composite
//! snapshot (`TXSN`) bundling the P-Grid overlay and the epoch-swapped
//! trust engine, plus the E13 warm-start / crash-recovery experiment.
//!
//! A peer that restarts without durable state re-enters the market as a
//! stranger — exactly the whitewashing loophole the reputation layer
//! exists to close. The composite snapshot captures everything a trust
//! service holds: the overlay arena (paths, references, complaint
//! stores, directory), the published trust tables and the pending
//! seq-tagged event window. Restoring it is a parse, not a rebuild —
//! E13 measures the difference.

use crate::experiments::storage::build_base;
use crate::experiments::Scale;
use crate::table::Table;
use std::time::Instant;
use trustex_netsim::rng::SimRng;
use trustex_persist::snapshot::{Persistable, SnapshotReader, SnapshotWriter};
use trustex_persist::PersistError;
use trustex_reputation::pgrid::PGrid;
use trustex_trust::beta::BetaTrust;
use trustex_trust::engine::{TrustEngine, TrustEvent};
use trustex_trust::evidence_log::{EvidenceLog, EvidenceRecord};
use trustex_trust::model::{Conduct, PeerId, TrustModel, WitnessReport};

/// Magic identifying a composite service snapshot.
pub const SERVICE_MAGIC: [u8; 4] = *b"TXSN";

/// Serializes a grid + engine pair as one `TXSN` container (one tagged,
/// CRC-protected section each).
pub fn snapshot_service<M>(grid: &PGrid, engine: &TrustEngine<M>) -> Vec<u8>
where
    M: TrustModel + Clone + Persistable,
{
    let mut w = SnapshotWriter::new(SERVICE_MAGIC);
    w.section(grid);
    w.section(engine);
    w.into_bytes()
}

/// Restores a grid + engine pair from a `TXSN` container. Typed errors
/// on any corruption; both sections re-validate their invariants.
pub fn restore_service<M>(bytes: &[u8]) -> Result<(PGrid, TrustEngine<M>), PersistError>
where
    M: TrustModel + Clone + Persistable,
{
    let reader = SnapshotReader::parse(bytes, SERVICE_MAGIC)?;
    let grid: PGrid = reader.decode()?;
    let engine: TrustEngine<M> = reader.decode()?;
    Ok((grid, engine))
}

/// Deterministic evidence stream for the warm-start engine: a mix of
/// direct experiences and witness reports over `n` peers.
fn event_stream(n: usize, events: usize, rng: &mut SimRng) -> Vec<TrustEvent> {
    (0..events)
        .map(|_| {
            let subject = PeerId(rng.index(n) as u32);
            let conduct = Conduct::from_honest(!rng.chance(0.3));
            let round = rng.index(1000) as u64;
            if rng.chance(0.4) {
                let mut w = rng.index(n.max(2) - 1);
                if w >= subject.0 as usize {
                    w += 1;
                }
                TrustEvent::Witness(WitnessReport {
                    witness: PeerId(w as u32),
                    subject,
                    conduct,
                    round,
                })
            } else {
                TrustEvent::direct(subject, conduct, round)
            }
        })
        .collect()
}

/// Cold-starts the full service state: overlay bootstrap (the emergent
/// meeting protocol plus complaint seeding) and the trust engine fed
/// with the whole event stream in published windows, with a tail left
/// pending so snapshots cover the mid-window case.
fn cold_start(n: usize, events: &[TrustEvent]) -> (PGrid, TrustEngine<BetaTrust>) {
    let grid = build_base(n, 4, 0xE13);
    let engine = TrustEngine::new(BetaTrust::with_population(n));
    let window = (events.len() / 8).max(1);
    for (i, &event) in events.iter().enumerate() {
        engine.submit(i as u64, event);
        if (i + 1) % window == 0 {
            engine.publish();
        }
    }
    (grid, engine)
}

/// Milliseconds since `start`, as a float.
fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// One fault-injection arm: corrupt a snapshot and demand a typed
/// error. Returns `"detected"` only if restore refuses the blob.
fn inject(bytes: &[u8], fault: &str) -> &'static str {
    let corrupted: Vec<u8> = match fault {
        "truncated-tail" => bytes[..bytes.len() * 2 / 3].to_vec(),
        "bit-flip" => {
            let mut b = bytes.to_vec();
            let mid = b.len() / 2;
            b[mid] ^= 0x04;
            b
        }
        "wrong-version" => {
            let mut b = bytes.to_vec();
            b[4] = b[4].wrapping_add(1);
            b
        }
        "wrong-magic" => {
            let mut b = bytes.to_vec();
            b[0] ^= 0xFF;
            b
        }
        _ => unreachable!("unknown fault arm"),
    };
    match restore_service::<BetaTrust>(&corrupted) {
        Err(_) => "detected",
        Ok(_) => "MISSED",
    }
}

/// E13 — *Table R7*: durable evidence. Warm-starting a full service
/// (10⁵-peer overlay + trust engine at paper scale) from a snapshot
/// versus re-bootstrapping it, the snapshot/restore costs and sizes,
/// crash-recovery fault injection (every corruption class must surface
/// as a typed error), and the evidence-log replay with gossip-duplicate
/// dedup. The `wall_ms` / `speedup_x` columns are wall-clock and
/// machine-dependent by design (like E2 and E12); the `check` column is
/// the correctness verdict and must read `ok` / `detected` everywhere.
pub fn e13_persistence(scale: Scale) -> Table {
    let n = scale.pick(400, 100_000);
    let n_events = scale.pick(2_000, 200_000);
    let mut table = Table::new(
        "E13: durable evidence — warm start, crash recovery, log replay",
        &[
            "arm",
            "peers",
            "events",
            "bytes",
            "wall_ms",
            "speedup_x",
            "check",
        ],
    );
    let mut rng = SimRng::new(0xD13);
    let events = event_stream(n, n_events, &mut rng);

    let t0 = Instant::now();
    let (grid, engine) = cold_start(n, &events);
    let cold_ms = ms(t0);

    let t0 = Instant::now();
    let blob = snapshot_service(&grid, &engine);
    let snapshot_ms = ms(t0);

    let t0 = Instant::now();
    let restored = restore_service::<BetaTrust>(&blob);
    let restore_ms = ms(t0);
    let restore_check = match &restored {
        Ok((grid2, engine2)) => {
            grid2.check_invariants();
            if snapshot_service(grid2, engine2) == blob {
                "ok"
            } else {
                "MISMATCH"
            }
        }
        Err(_) => "MISSED",
    };

    let rows: [(&str, usize, f64, f64, &str); 3] = [
        ("cold-build", blob.len(), cold_ms, 1.0, "ok"),
        ("snapshot", blob.len(), snapshot_ms, 0.0, "ok"),
        (
            "restore",
            blob.len(),
            restore_ms,
            cold_ms / restore_ms.max(1e-9),
            restore_check,
        ),
    ];
    for (arm, bytes, wall, speedup, check) in rows {
        table.push_row(vec![
            arm.into(),
            n.into(),
            n_events.into(),
            bytes.into(),
            wall.into(),
            speedup.into(),
            check.into(),
        ]);
    }

    for fault in ["truncated-tail", "bit-flip", "wrong-version", "wrong-magic"] {
        let t0 = Instant::now();
        let check = inject(&blob, fault);
        table.push_row(vec![
            format!("fault:{fault}").into(),
            n.into(),
            n_events.into(),
            blob.len().into(),
            ms(t0).into(),
            0.0.into(),
            check.into(),
        ]);
    }

    // Evidence-log replay: every event framed and checksummed, every
    // fourth frame re-sent (a gossip retry), dedup folds them away.
    let t0 = Instant::now();
    let mut log = EvidenceLog::new();
    for (i, &event) in events.iter().enumerate() {
        let rec = EvidenceRecord {
            issuer: PeerId((i % n) as u32),
            seq: i as u64,
            event,
        };
        log.append(&rec);
        if i % 4 == 0 {
            log.append(&rec);
        }
    }
    let replay = EvidenceLog::replay(log.as_bytes());
    let log_check = match &replay {
        Ok(r) if r.records.len() == events.len() && r.duplicates == events.len().div_ceil(4) => {
            "ok"
        }
        _ => "MISMATCH",
    };
    table.push_row(vec![
        "log-replay".into(),
        n.into(),
        events.len().into(),
        log.as_bytes().len().into(),
        ms(t0).into(),
        0.0.into(),
        log_check.into(),
    ]);

    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn text(cell: &Cell) -> &str {
        match cell {
            Cell::Text(s) => s,
            other => panic!("expected text, got {other:?}"),
        }
    }

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    #[test]
    fn e13_every_check_passes_and_restore_beats_cold_start() {
        let t = e13_persistence(Scale::Smoke);
        assert_eq!(t.rows().len(), 8, "3 timing + 4 fault + 1 log arms");
        for row in t.rows() {
            let arm = text(&row[0]);
            let check = text(&row[6]);
            if arm.starts_with("fault:") {
                assert_eq!(check, "detected", "{arm} slipped through");
            } else {
                assert_eq!(check, "ok", "{arm} failed its verdict");
            }
        }
        let restore = t
            .rows()
            .iter()
            .find(|r| text(&r[0]) == "restore")
            .expect("restore arm");
        assert!(
            num(&restore[5]) > 1.0,
            "warm start must beat re-bootstrap, got speedup {}",
            num(&restore[5])
        );
        assert!(num(&restore[3]) > 0.0, "snapshot has a size");
    }

    #[test]
    fn composite_snapshot_round_trips() {
        let mut rng = SimRng::new(7);
        let events = event_stream(50, 400, &mut rng);
        let (grid, engine) = cold_start(50, &events);
        let blob = snapshot_service(&grid, &engine);
        let (grid2, engine2) = restore_service::<BetaTrust>(&blob).expect("restore");
        assert_eq!(snapshot_service(&grid2, &engine2), blob);
        assert_eq!(grid2.live_len(), grid.live_len());
        assert_eq!(engine2.snapshot().epoch(), engine.snapshot().epoch());
    }

    #[test]
    fn composite_snapshot_rejects_swapped_sections() {
        let mut rng = SimRng::new(9);
        let events = event_stream(20, 100, &mut rng);
        let (grid, engine) = cold_start(20, &events);
        // A container missing the engine section must fail typed.
        let mut w = SnapshotWriter::new(SERVICE_MAGIC);
        w.section(&grid);
        assert!(matches!(
            restore_service::<BetaTrust>(&w.into_bytes()),
            Err(PersistError::MissingSection { .. })
        ));
        let _ = engine;
    }
}
