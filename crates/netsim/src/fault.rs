//! Deterministic message-level fault plane: loss, duplication, delay
//! jitter and partition episodes.
//!
//! A [`FaultPlane`] decides the fate of every message on a link purely
//! from `(seed, src, dst, msg_seq)` — no draw from any shared RNG
//! stream. That purity is the load-bearing property: a zero-fault plane
//! consumes exactly zero randomness, so routing a path through it is
//! bit-identical to not having a plane at all, and any faulty run
//! replays identically at every thread count.
//!
//! Partitions are *episodes*, not samples: a [`PartitionSpec`] names a
//! deterministic grouping of peers (a bisection or `k` islands, both
//! assigned by hashing the peer id with the plane seed) and a scheduled
//! heal time. Cross-group messages are [`FaultFate::Blocked`] while the
//! episode is live and flow normally once the virtual clock passes
//! `heal_at` — which is what lets bounded retries with backoff straddle
//! a partition and deliver after the heal.

use crate::backoff::splitmix64;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

const SALT_LOSS: u64 = 0x4C4F_5353_4C4F_5353; // "LOSSLOSS"
const SALT_DUP: u64 = 0x4455_5044_5550_4455; // "DUPDUPDU"
const SALT_DELAY: u64 = 0x4445_4C41_5944_4C59; // "DELAYDLY"
const SALT_GROUP: u64 = 0x4752_4F55_5047_5250; // "GROUPGRP"

/// A named partition episode with a scheduled heal time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PartitionSpec {
    /// No partition; every link is up.
    #[default]
    None,
    /// The population splits into two halves (peer-hash parity); all
    /// cross-half traffic is blocked until `heal_at`.
    Bisect {
        /// Virtual time at which the partition heals.
        heal_at: SimTime,
    },
    /// The population shatters into `islands` hash-assigned groups;
    /// inter-island traffic is blocked until `heal_at`.
    Islands {
        /// Number of islands (clamped to at least 1).
        islands: u32,
        /// Virtual time at which the partition heals.
        heal_at: SimTime,
    },
}

impl PartitionSpec {
    /// A short stable label for tables ("none", "bisect", "islands").
    pub fn label(&self) -> &'static str {
        match self {
            PartitionSpec::None => "none",
            PartitionSpec::Bisect { .. } => "bisect",
            PartitionSpec::Islands { .. } => "islands",
        }
    }
}

/// Knobs of a [`FaultPlane`]. The default is the zero plane: no loss,
/// no duplication, no extra delay, no partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultConfig {
    /// Independent per-message loss probability in `[0, 1]`.
    pub loss: f64,
    /// Independent probability that a delivered message arrives twice.
    pub duplicate: f64,
    /// Maximum extra delay jitter in microseconds; each delivered
    /// message gains a hash-uniform extra delay in `[0, max]`.
    pub extra_delay_max_us: u64,
    /// Partition episode, if any.
    pub partition: PartitionSpec,
}

impl FaultConfig {
    /// Whether this is the zero plane (injects nothing).
    pub fn is_zero(&self) -> bool {
        self.loss <= 0.0
            && self.duplicate <= 0.0
            && self.extra_delay_max_us == 0
            && self.partition == PartitionSpec::None
    }
}

/// The fate of one message, decided by [`FaultPlane::decide`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFate {
    /// The message arrives (possibly late, possibly more than once).
    Deliver {
        /// Extra delay injected on top of the link's base latency.
        extra_delay: SimTime,
        /// Extra copies delivered beyond the first (0 = exactly once).
        duplicates: u32,
    },
    /// The message is silently lost.
    Lost,
    /// A live partition episode separates `src` and `dst`.
    Blocked,
}

impl FaultFate {
    /// The exactly-once clean delivery.
    pub const CLEAN: FaultFate = FaultFate::Deliver {
        extra_delay: SimTime::ZERO,
        duplicates: 0,
    };

    /// Whether at least one copy arrives.
    pub fn is_delivered(&self) -> bool {
        matches!(self, FaultFate::Deliver { .. })
    }
}

/// A seeded, pure per-link fault injector.
///
/// # Examples
///
/// ```
/// use trustex_netsim::fault::{FaultConfig, FaultFate, FaultPlane};
/// use trustex_netsim::time::SimTime;
///
/// let plane = FaultPlane::new(7, FaultConfig { loss: 0.5, ..FaultConfig::default() });
/// let fate = plane.decide(1, 2, 0, SimTime::ZERO);
/// // Pure function: the same (src, dst, seq) always gets the same fate.
/// assert_eq!(fate, plane.decide(1, 2, 0, SimTime::ZERO));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlane {
    seed: u64,
    cfg: FaultConfig,
}

impl FaultPlane {
    /// A plane with the given seed and knobs.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlane {
        FaultPlane { seed, cfg }
    }

    /// The zero plane: delivers everything exactly once, on time.
    pub fn transparent(seed: u64) -> FaultPlane {
        FaultPlane::new(seed, FaultConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> FaultConfig {
        self.cfg
    }

    /// The plane seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn mix(&self, salt: u64, src: u32, dst: u32, seq: u64) -> u64 {
        let link = (u64::from(src) << 32) | u64::from(dst);
        splitmix64(
            splitmix64(self.seed ^ salt)
                .wrapping_add(splitmix64(link))
                .wrapping_add(seq),
        )
    }

    /// Hash word → uniform in `[0, 1)` (same 53-bit construction as
    /// `SimRng::f64`, but from a pure hash).
    fn unit(h: u64) -> f64 {
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The partition group a peer belongs to under the active episode
    /// (always 0 when no partition is configured).
    pub fn group_of(&self, peer: u32) -> u32 {
        let h = splitmix64(self.seed ^ SALT_GROUP ^ u64::from(peer));
        match self.cfg.partition {
            PartitionSpec::None => 0,
            PartitionSpec::Bisect { .. } => (h & 1) as u32,
            PartitionSpec::Islands { islands, .. } => (h % u64::from(islands.max(1))) as u32,
        }
    }

    /// Whether a live partition episode separates `src` and `dst` at
    /// virtual time `at`.
    pub fn blocked(&self, src: u32, dst: u32, at: SimTime) -> bool {
        let heal_at = match self.cfg.partition {
            PartitionSpec::None => return false,
            PartitionSpec::Bisect { heal_at } => heal_at,
            PartitionSpec::Islands { heal_at, .. } => heal_at,
        };
        at < heal_at && self.group_of(src) != self.group_of(dst)
    }

    /// Decides the fate of message `seq` from `src` to `dst` sent at
    /// virtual time `at`. Pure: no shared state, no RNG.
    pub fn decide(&self, src: u32, dst: u32, seq: u64, at: SimTime) -> FaultFate {
        if self.blocked(src, dst, at) {
            return FaultFate::Blocked;
        }
        if self.cfg.loss > 0.0 && Self::unit(self.mix(SALT_LOSS, src, dst, seq)) < self.cfg.loss {
            return FaultFate::Lost;
        }
        let duplicates = if self.cfg.duplicate > 0.0
            && Self::unit(self.mix(SALT_DUP, src, dst, seq)) < self.cfg.duplicate
        {
            1
        } else {
            0
        };
        let extra_delay = if self.cfg.extra_delay_max_us > 0 {
            SimTime::from_micros(
                self.mix(SALT_DELAY, src, dst, seq) % (self.cfg.extra_delay_max_us + 1),
            )
        } else {
            SimTime::ZERO
        };
        FaultFate::Deliver {
            extra_delay,
            duplicates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(loss: f64) -> FaultPlane {
        FaultPlane::new(
            0xFA17,
            FaultConfig {
                loss,
                ..FaultConfig::default()
            },
        )
    }

    #[test]
    fn zero_plane_is_always_clean() {
        let plane = FaultPlane::transparent(99);
        assert!(plane.config().is_zero());
        for seq in 0..500 {
            assert_eq!(plane.decide(3, 8, seq, SimTime::ZERO), FaultFate::CLEAN);
        }
    }

    #[test]
    fn fate_is_pure_in_all_inputs() {
        let plane = FaultPlane::new(
            1,
            FaultConfig {
                loss: 0.3,
                duplicate: 0.2,
                extra_delay_max_us: 500,
                partition: PartitionSpec::Bisect {
                    heal_at: SimTime::from_millis(10),
                },
            },
        );
        for seq in 0..200 {
            let a = plane.decide(4, 9, seq, SimTime::from_millis(seq % 20));
            let b = plane.decide(4, 9, seq, SimTime::from_millis(seq % 20));
            assert_eq!(a, b);
        }
        // Distinct seqs decorrelate (sampled past the heal so the
        // partition cannot flatten every fate to Blocked).
        let healed = SimTime::from_millis(10);
        let fates: Vec<_> = (0..64).map(|s| plane.decide(1, 2, s, healed)).collect();
        assert!(fates.iter().any(|f| *f != fates[0]));
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let plane = lossy(0.25);
        let lost = (0..4000)
            .filter(|&seq| plane.decide(0, 1, seq, SimTime::ZERO) == FaultFate::Lost)
            .count();
        let frac = lost as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.03, "loss fraction {frac}");
    }

    #[test]
    fn duplicate_rate_tracks_probability() {
        let plane = FaultPlane::new(
            2,
            FaultConfig {
                duplicate: 0.5,
                ..FaultConfig::default()
            },
        );
        let dups: u32 = (0..2000)
            .map(|seq| match plane.decide(0, 1, seq, SimTime::ZERO) {
                FaultFate::Deliver { duplicates, .. } => duplicates,
                _ => 0,
            })
            .sum();
        let frac = f64::from(dups) / 2000.0;
        assert!((frac - 0.5).abs() < 0.04, "dup fraction {frac}");
    }

    #[test]
    fn extra_delay_is_bounded() {
        let plane = FaultPlane::new(
            3,
            FaultConfig {
                extra_delay_max_us: 250,
                ..FaultConfig::default()
            },
        );
        let mut max_seen = 0;
        for seq in 0..2000 {
            match plane.decide(5, 6, seq, SimTime::ZERO) {
                FaultFate::Deliver { extra_delay, .. } => {
                    assert!(extra_delay.as_micros() <= 250);
                    max_seen = max_seen.max(extra_delay.as_micros());
                }
                other => panic!("unexpected fate {other:?}"),
            }
        }
        assert!(max_seen > 0, "jitter never fired");
    }

    #[test]
    fn bisect_blocks_cross_group_until_heal() {
        let heal_at = SimTime::from_millis(50);
        let plane = FaultPlane::new(
            11,
            FaultConfig {
                partition: PartitionSpec::Bisect { heal_at },
                ..FaultConfig::default()
            },
        );
        // Find one cross-group and one same-group pair.
        let g0 = plane.group_of(0);
        let cross = (1..64)
            .find(|&p| plane.group_of(p) != g0)
            .expect("cross peer");
        let same = (1..64)
            .find(|&p| plane.group_of(p) == g0)
            .expect("same peer");
        let during = SimTime::from_millis(10);
        assert_eq!(plane.decide(0, cross, 0, during), FaultFate::Blocked);
        assert!(plane.decide(0, same, 0, during).is_delivered());
        // Heal boundary: at `heal_at` traffic flows again.
        assert!(plane.decide(0, cross, 0, heal_at).is_delivered());
        assert!(plane
            .decide(0, cross, 0, SimTime::from_millis(60))
            .is_delivered());
    }

    #[test]
    fn islands_assign_every_group_and_heal() {
        let heal_at = SimTime::from_millis(20);
        let plane = FaultPlane::new(
            13,
            FaultConfig {
                partition: PartitionSpec::Islands {
                    islands: 4,
                    heal_at,
                },
                ..FaultConfig::default()
            },
        );
        let mut seen = [false; 4];
        for p in 0..256 {
            let g = plane.group_of(p);
            assert!(g < 4);
            seen[g as usize] = true;
        }
        assert_eq!(seen, [true; 4], "some island never assigned");
        // Pick two peers on different islands: blocked, then healed.
        let g0 = plane.group_of(0);
        let other = (1..256).find(|&p| plane.group_of(p) != g0).unwrap();
        assert_eq!(plane.decide(0, other, 0, SimTime::ZERO), FaultFate::Blocked);
        assert!(plane.decide(0, other, 0, heal_at).is_delivered());
    }

    #[test]
    fn partition_labels_are_stable() {
        assert_eq!(PartitionSpec::None.label(), "none");
        assert_eq!(
            PartitionSpec::Bisect {
                heal_at: SimTime::ZERO
            }
            .label(),
            "bisect"
        );
        assert_eq!(
            PartitionSpec::Islands {
                islands: 3,
                heal_at: SimTime::ZERO
            }
            .label(),
            "islands"
        );
    }
}
