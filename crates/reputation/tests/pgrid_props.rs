//! Property-test suite for the scaled P-Grid: routing and replication
//! invariants on randomly shaped grids (random population, depth, seed).
//!
//! The leaf-directory properties pin the tentpole refactor: the indexed
//! replica-group resolution must agree *exactly* with the naive
//! O(n) full-population scan it replaced — the old scan lives on here as
//! the test oracle.

use proptest::prelude::*;
use trustex_netsim::net::{NetConfig, Network};
use trustex_netsim::rng::SimRng;
use trustex_reputation::pgrid::{PGrid, PGridConfig};
use trustex_reputation::record::{key_for_peer, Complaint, Key};
use trustex_trust::model::PeerId;

fn build_grid(n: usize, depth: u8, seed: u64) -> (PGrid, SimRng) {
    let mut rng = SimRng::new(seed);
    let cfg = PGridConfig {
        max_depth: depth,
        ..PGridConfig::default()
    };
    let grid = PGrid::build(n, cfg, &mut rng);
    (grid, rng)
}

/// The pre-index O(n) full-population scan, pinned as the oracle the
/// leaf directory must reproduce bit-for-bit. Departed peers are not
/// responsible for anything.
fn naive_responsible(grid: &PGrid, key: Key) -> Vec<usize> {
    let w = grid.config().key_bits;
    (0..grid.len())
        .filter(|&i| grid.is_live(i) && grid.path(i).is_prefix_of_key(key, w))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Routing either lands on a peer whose path prefixes the key
    /// within the hop limit, or returns `None` — never a wrong peer,
    /// never an unbounded walk.
    #[test]
    fn route_lands_on_prefix_peer_or_fails(
        n in 2usize..180,
        depth in 1u8..8,
        seed in 0u64..100_000,
        key_raw in any::<u32>(),
    ) {
        let (grid, mut rng) = build_grid(n, depth, seed);
        let mut net = Network::new(NetConfig::default());
        let key = Key::from_bits(key_raw & 0xFFFF);
        let origin = rng.index(grid.len());
        if let Some((peer, hops, _)) = grid.route(origin, key, None, &mut net, &mut rng) {
            prop_assert!(
                grid.path(peer).is_prefix_of_key(key, grid.config().key_bits),
                "landed on non-responsible peer {peer}"
            );
            prop_assert!(hops <= grid.hop_limit(), "{hops} hops broke the bound");
        }
    }

    /// (b) Insert-then-query round-trips: whenever the insert reached at
    /// least one replica, a query over the same live population finds
    /// the item on every replica that stored it, and the answering set
    /// is exactly the live replica group.
    #[test]
    fn insert_query_roundtrip_over_live_replica_group(
        n in 8usize..160,
        depth in 1u8..6,
        seed in 0u64..100_000,
        subject_raw in 0u32..50_000,
        down in 0.0f64..0.35,
    ) {
        let (mut grid, mut rng) = build_grid(n, depth, seed);
        let mut net = Network::new(NetConfig::default());
        let alive: Vec<bool> = (0..n).map(|_| !rng.chance(down)).collect();
        let subject = PeerId(subject_raw);
        let key = key_for_peer(subject, grid.config().key_bits);
        let item = Complaint { by: PeerId(1), about: subject, round: 2 };
        prop_assume!(alive.iter().any(|up| *up));
        let origin = (0..n).find(|&i| alive[i]).expect("someone is up");
        let receipt = grid.insert(origin, key, item, Some(&alive), &mut net, &mut rng);
        prop_assume!(receipt.replicas_reached > 0);

        let result = grid.query(origin, key, Some(&alive), &mut net, &mut rng);
        prop_assume!(result.is_resolved());
        // Answering replicas are live members of the key's replica group.
        let group = grid.responsible_peers(key);
        for (member, items) in &result.answers {
            prop_assert!(alive[*member], "dead replica {member} answered");
            prop_assert!(group.contains(member), "{member} outside the group");
            prop_assert!(
                items.contains(&item),
                "replica {member} lost the complaint"
            );
        }
        // Every live group member answers (default network drops nothing).
        let live_group: Vec<usize> = group.iter().copied().filter(|&i| alive[i]).collect();
        prop_assert_eq!(result.answers.len(), live_group.len());
    }

    /// (c) The leaf directory agrees exactly with the naive O(n) scan —
    /// the ordered index is a drop-in replacement for the old code path.
    #[test]
    fn leaf_index_matches_naive_scan(
        n in 1usize..220,
        depth in 1u8..9,
        seed in 0u64..100_000,
        key_raw in any::<u32>(),
    ) {
        let (grid, _) = build_grid(n, depth, seed);
        let key = Key::from_bits(key_raw & 0xFFFF);
        prop_assert_eq!(grid.responsible_peers(key), naive_responsible(&grid, key));
        // The trie partitions the key space: someone is always
        // responsible.
        prop_assert!(!grid.responsible_peers(key).is_empty());
    }

    /// (c′) The agreement survives post-build structural mutation:
    /// churn repair evicts references and extends paths via fresh
    /// meetings, and the directory must track every move.
    #[test]
    fn leaf_index_matches_naive_scan_after_repair(
        n in 2usize..120,
        depth in 1u8..6,
        seed in 0u64..100_000,
        down in 0.0f64..0.6,
        key_raw in any::<u32>(),
    ) {
        let (mut grid, mut rng) = build_grid(n, depth, seed);
        let alive: Vec<bool> = (0..n).map(|_| !rng.chance(down)).collect();
        grid.repair(&alive, 2 * n, &mut rng);
        let key = Key::from_bits(key_raw & 0xFFFF);
        prop_assert_eq!(grid.responsible_peers(key), naive_responsible(&grid, key));
    }

    /// Complaint stores stay compacted under arbitrary insert batches:
    /// at most one entry per (by, about) pair, carrying the max round.
    #[test]
    fn stores_stay_compacted_under_repeated_inserts(
        n in 8usize..80,
        seed in 0u64..100_000,
        rounds in prop::collection::vec(0u64..50, 1..12),
    ) {
        let (mut grid, mut rng) = build_grid(n, 3, seed);
        let mut net = Network::new(NetConfig::default());
        let subject = PeerId(7);
        let key = key_for_peer(subject, grid.config().key_bits);
        let mut stored_rounds = Vec::new();
        for &round in &rounds {
            let item = Complaint { by: PeerId(1), about: subject, round };
            let receipt = grid.insert(rng.index(n), key, item, None, &mut net, &mut rng);
            if receipt.replicas_reached > 0 {
                stored_rounds.push(round);
            }
        }
        for peer in 0..grid.len() {
            prop_assert!(grid.store_len(peer) <= 1, "store grew past the pair count");
            if let Some(item) = grid.stored(peer).next() {
                // Compaction keeps a round that was actually inserted,
                // never older than the latest round this replica saw —
                // with a full sweep, exactly the global maximum.
                prop_assert!(stored_rounds.contains(&item.round), "unknown round");
                if stored_rounds.len() == rounds.len() {
                    let max_round = rounds.iter().copied().max().expect("non-empty");
                    prop_assert_eq!(item.round, max_round, "stale round survived");
                }
            }
        }
    }

    /// (d) Membership dynamics keep the directory exact: after an
    /// arbitrary interleaving of joins and leaves, the leaf index still
    /// agrees with the naive scan, every structural invariant holds
    /// (`dir_pos` sync, subtree counts, bucket capacities), and routing
    /// from any live origin still lands only on live prefix-owners.
    #[test]
    fn leaf_index_matches_naive_scan_after_join_leave(
        n in 4usize..100,
        depth in 1u8..6,
        seed in 0u64..100_000,
        churn in prop::collection::vec(any::<bool>(), 1..40),
        key_raw in any::<u32>(),
    ) {
        let (mut grid, mut rng) = build_grid(n, depth, seed);
        let mut net = Network::new(NetConfig::default());
        for &join in &churn {
            if join || grid.live_len() <= 2 {
                grid.join(&mut rng);
            } else {
                let live: Vec<usize> =
                    (0..grid.len()).filter(|&i| grid.is_live(i)).collect();
                grid.leave(live[rng.index(live.len())]);
            }
        }
        grid.check_invariants();
        let key = Key::from_bits(key_raw & 0xFFFF);
        // Exact agreement with the naive scan; note coverage itself can
        // be lost under churn (when a whole replica group departs, its
        // subspace is orphaned), so unlike the static property there is
        // no non-emptiness claim here.
        prop_assert_eq!(grid.responsible_peers(key), naive_responsible(&grid, key));
        let origin = (0..grid.len()).find(|&i| grid.is_live(i)).expect("live peer");
        if let Some((peer, hops, _)) = grid.route(origin, key, None, &mut net, &mut rng) {
            prop_assert!(grid.is_live(peer), "routed to a departed peer");
            prop_assert!(grid.path(peer).is_prefix_of_key(key, grid.config().key_bits));
            prop_assert!(hops <= grid.hop_limit());
        }
    }

    /// (e) Replica handoff preserves data across admission: an item
    /// inserted before a wave of joins is still found by a post-churn
    /// query, on *every* answering replica — including freshly admitted
    /// peers that became responsible for the key.
    #[test]
    fn insert_query_roundtrip_across_handoff(
        n in 8usize..80,
        depth in 1u8..5,
        seed in 0u64..100_000,
        subject_raw in 0u32..50_000,
        joins in 1usize..24,
    ) {
        let (mut grid, mut rng) = build_grid(n, depth, seed);
        let mut net = Network::new(NetConfig::default());
        let subject = PeerId(subject_raw);
        let key = key_for_peer(subject, grid.config().key_bits);
        let item = Complaint { by: PeerId(1), about: subject, round: 2 };
        let receipt = grid.insert(0, key, item, None, &mut net, &mut rng);
        prop_assume!(receipt.replicas_reached > 0);
        for _ in 0..joins {
            grid.join(&mut rng);
        }
        grid.check_invariants();
        let result = grid.query(1, key, None, &mut net, &mut rng);
        prop_assume!(result.is_resolved());
        for (member, items) in &result.answers {
            prop_assert!(
                items.contains(&item),
                "replica {member} (admitted post-insert: {}) lost the item",
                *member >= n
            );
        }
    }
}
