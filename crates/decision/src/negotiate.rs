//! Bilateral planning: both parties' trust estimates → safety margins →
//! a scheduled, verified exchange.
//!
//! This is the paper's full §3 pipeline in one call: each side derives
//! the exposure bound it accepts from its trust in the other and its
//! risk attitude; the bounds become [`SafetyMargins`]; the scheduler
//! finds a sequence within them or reports the margin that would have
//! been needed.

use crate::engage::{decide, Engagement, EngagementRule};
use crate::exposure::{exposure_bound, ExposurePolicy};
use serde::{Deserialize, Serialize};
use trustex_core::deal::Deal;
use trustex_core::policy::PaymentPolicy;
use trustex_core::safety::SafetyMargins;
use trustex_core::scheduler::{min_required_margin, schedule, Algorithm, ScheduleError};
use trustex_core::sequence::VerifiedSequence;
use trustex_trust::model::TrustEstimate;

/// One party's inputs to the negotiation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartyInputs {
    /// The party's trust estimate of its *opponent*.
    pub trust_in_opponent: TrustEstimate,
    /// The party's exposure policy (risk budget, attitude, cap).
    pub exposure: ExposurePolicy,
    /// The party's engagement rule.
    pub engagement: EngagementRule,
}

/// Why planning failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanError {
    /// The supplier declined to engage.
    SupplierDeclined,
    /// The consumer declined to engage.
    ConsumerDeclined,
    /// Both engaged but the margins their trust supports are too tight;
    /// carries what would have been needed vs granted (in micro-units of
    /// the total margin).
    MarginsTooTight {
        /// Minimal total margin that would make the deal schedulable
        /// (micro-units).
        required_micros: i64,
        /// Total margin the parties granted (micro-units).
        available_micros: i64,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::SupplierDeclined => write!(f, "supplier declined to engage"),
            PlanError::ConsumerDeclined => write!(f, "consumer declined to engage"),
            PlanError::MarginsTooTight {
                required_micros,
                available_micros,
            } => write!(
                f,
                "trust-supported margins too tight: required {required_micros}µ, available {available_micros}µ"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A successful negotiation: margins plus a verified schedule.
#[derive(Debug, Clone)]
pub struct NegotiatedExchange {
    /// The margins both sides granted.
    pub margins: SafetyMargins,
    /// The scheduled and independently verified sequence.
    pub plan: VerifiedSequence,
}

/// Runs the full §3 pipeline.
///
/// # Errors
///
/// [`PlanError`] when either side declines or the margins don't support
/// any sequence.
///
/// # Examples
///
/// ```
/// use trustex_core::prelude::*;
/// use trustex_decision::negotiate::{plan_exchange, PartyInputs};
/// use trustex_decision::exposure::ExposurePolicy;
/// use trustex_decision::engage::EngagementRule;
/// use trustex_trust::model::TrustEstimate;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0)])?;
/// let deal = Deal::with_split_surplus(goods)?;
/// let inputs = PartyInputs {
///     trust_in_opponent: TrustEstimate::new(0.95, 0.9),
///     exposure: ExposurePolicy::with_cap(deal.price()),
///     engagement: EngagementRule::default(),
/// };
/// let nx = plan_exchange(&deal, inputs, inputs, PaymentPolicy::Lazy)?;
/// assert!(nx.plan.sequence().delivery_count() == 2);
/// # Ok(())
/// # }
/// ```
pub fn plan_exchange(
    deal: &Deal,
    supplier: PartyInputs,
    consumer: PartyInputs,
    policy: PaymentPolicy,
) -> Result<NegotiatedExchange, PlanError> {
    // Each side translates trust into the exposure bound it tolerates.
    let eps_s = exposure_bound(
        supplier.trust_in_opponent,
        deal.supplier_profit(),
        supplier.exposure,
    );
    let eps_c = exposure_bound(
        consumer.trust_in_opponent,
        deal.consumer_surplus(),
        consumer.exposure,
    );

    // Engagement checks with the derived worst-case exposures.
    let s_decision = decide(
        supplier.trust_in_opponent,
        deal.supplier_profit(),
        eps_s,
        supplier.engagement,
    );
    if !matches!(s_decision, Engagement::Engage { .. }) {
        return Err(PlanError::SupplierDeclined);
    }
    let c_decision = decide(
        consumer.trust_in_opponent,
        deal.consumer_surplus(),
        eps_c,
        consumer.engagement,
    );
    if !matches!(c_decision, Engagement::Engage { .. }) {
        return Err(PlanError::ConsumerDeclined);
    }

    let margins =
        SafetyMargins::new(eps_s, eps_c).expect("exposure bounds are non-negative by construction");
    match schedule(deal, margins, policy, Algorithm::Greedy) {
        Ok(plan) => Ok(NegotiatedExchange { margins, plan }),
        Err(ScheduleError::Infeasible {
            required,
            available,
        }) => Err(PlanError::MarginsTooTight {
            required_micros: required.as_micros(),
            available_micros: available.as_micros(),
        }),
        Err(ScheduleError::TooManyItems { .. }) => {
            unreachable!("greedy scheduler has no size limit")
        }
    }
}

/// The minimal *symmetric-trust* level at which a deal becomes
/// schedulable under the given exposure policies: returns the smallest
/// `p_honest` (searched at full confidence, to 10⁻³ resolution) such
/// that the derived margins cover [`min_required_margin`]. `None` when
/// even full trust (capped exposure) is insufficient.
pub fn min_trust_to_trade(
    deal: &Deal,
    supplier_policy: ExposurePolicy,
    consumer_policy: ExposurePolicy,
) -> Option<f64> {
    let needed = min_required_margin(deal.goods());
    let margins_at = |p: f64| {
        let est = TrustEstimate::new(p, 1.0);
        let eps_s = exposure_bound(est, deal.supplier_profit(), supplier_policy);
        let eps_c = exposure_bound(est, deal.consumer_surplus(), consumer_policy);
        eps_s + eps_c
    };
    if margins_at(1.0) < needed {
        return None;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // Exposure is monotone in trust: bisect.
    while hi - lo > 1e-3 {
        let mid = 0.5 * (lo + hi);
        if margins_at(mid) >= needed {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_core::goods::Goods;
    use trustex_core::money::Money;

    fn deal() -> Deal {
        let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap();
        Deal::new(goods, Money::from_units(9)).unwrap()
    }

    fn inputs(p_honest: f64, confidence: f64) -> PartyInputs {
        PartyInputs {
            trust_in_opponent: TrustEstimate::new(p_honest, confidence),
            exposure: ExposurePolicy::with_cap(Money::from_units(9)),
            engagement: EngagementRule::default(),
        }
    }

    #[test]
    fn high_trust_schedules() {
        let d = deal();
        let nx = plan_exchange(
            &d,
            inputs(0.95, 1.0),
            inputs(0.95, 1.0),
            PaymentPolicy::Lazy,
        )
        .expect("high trust must trade");
        assert!(nx.margins.total() >= min_required_margin(d.goods()));
        assert_eq!(nx.plan.sequence().delivery_count(), 3);
    }

    #[test]
    fn low_trust_declines_or_fails() {
        let d = deal();
        let err = plan_exchange(&d, inputs(0.1, 1.0), inputs(0.95, 1.0), PaymentPolicy::Lazy)
            .unwrap_err();
        assert_eq!(err, PlanError::SupplierDeclined);
        let err = plan_exchange(&d, inputs(0.95, 1.0), inputs(0.1, 1.0), PaymentPolicy::Lazy)
            .unwrap_err();
        assert_eq!(err, PlanError::ConsumerDeclined);
    }

    /// A deal whose required margin (3 = the single item's cost) dwarfs
    /// the gains (0.5 each side), so trust-derived margins cannot cover
    /// it at any credible estimate.
    fn tight_deal() -> Deal {
        let goods = Goods::from_f64_pairs(&[(3.0, 4.0)]).unwrap();
        Deal::new(goods, Money::from_f64(3.5)).unwrap()
    }

    #[test]
    fn moderate_trust_margins_too_tight() {
        let d = tight_deal();
        assert_eq!(min_required_margin(d.goods()), Money::from_units(3));
        // p̂ = 0.45 ≤ ceiling ⇒ both engage; ε each ≈ 0.05/0.45 ≈ 0.11.
        let err = plan_exchange(
            &d,
            inputs(0.55, 1.0),
            inputs(0.55, 1.0),
            PaymentPolicy::Lazy,
        )
        .unwrap_err();
        match err {
            PlanError::MarginsTooTight {
                required_micros,
                available_micros,
            } => {
                assert_eq!(required_micros, 3_000_000);
                assert!(available_micros < required_micros);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn min_trust_to_trade_bisection() {
        // deal(): required margin 1; each side's budget is 0.3, so the
        // *margin* threshold solves 0.6/(1−p) = 1 ⇒ p ≈ 0.4.
        let d = deal();
        let policy = ExposurePolicy::with_cap(d.price());
        let p = min_trust_to_trade(&d, policy, policy).expect("full trust suffices (cap = 9)");
        assert!((0.3..0.6).contains(&p), "threshold should be ≈0.4: {p}");
        // At the threshold the derived margins cover the requirement…
        let est = TrustEstimate::new(p, 1.0);
        let eps_s = crate::exposure::exposure_bound(est, d.supplier_profit(), policy);
        let eps_c = crate::exposure::exposure_bound(est, d.consumer_surplus(), policy);
        assert!(eps_s + eps_c >= min_required_margin(d.goods()));
        // …and distinctly below they don't (decline or tight margins).
        assert!(plan_exchange(
            &d,
            inputs((p - 0.05).max(0.0), 1.0),
            inputs((p - 0.05).max(0.0), 1.0),
            PaymentPolicy::Lazy
        )
        .is_err());
        // Comfortably above both the margin and engagement thresholds the
        // trade goes through.
        let nx = plan_exchange(
            &d,
            inputs(p.max(0.55), 1.0),
            inputs(p.max(0.55), 1.0),
            PaymentPolicy::Lazy,
        );
        assert!(nx.is_ok(), "trade must work above the threshold: {nx:?}");
    }

    #[test]
    fn min_trust_none_when_cap_too_small() {
        let goods = Goods::from_f64_pairs(&[(5.0, 6.0)]).unwrap();
        let d = Deal::new(goods, Money::from_units(6)).unwrap();
        // Requirement = 5; caps of 1 each can cover at most 2.
        let tight = ExposurePolicy::with_cap(Money::from_units(1));
        assert_eq!(min_trust_to_trade(&d, tight, tight), None);
    }

    #[test]
    fn unknown_estimates_follow_prior_path() {
        let d = tight_deal();
        // Unknown opponents: p_eff = 0.5, at the default ceiling; the
        // margins derived from the prior are small (≈0.1 a side), so the
        // plan fails with tight margins rather than a decline.
        let r = plan_exchange(&d, inputs(0.5, 0.0), inputs(0.5, 0.0), PaymentPolicy::Lazy);
        assert!(matches!(r, Err(PlanError::MarginsTooTight { .. })), "{r:?}");
    }

    #[test]
    fn plan_error_display() {
        let e = PlanError::MarginsTooTight {
            required_micros: 5,
            available_micros: 3,
        };
        assert!(e.to_string().contains("required 5µ"));
        assert_eq!(
            PlanError::SupplierDeclined.to_string(),
            "supplier declined to engage"
        );
    }
}
