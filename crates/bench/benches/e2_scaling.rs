//! E2 bench: scheduler runtime scaling — the allocation-free greedy hot
//! path to `n = 10⁶`, the indexed `O(n log n)` Sandholm to `n = 10⁵`,
//! the original `O(n²)` scan while affordable, and the exact oracles at
//! their differential-suite sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use trustex_core::goods::{Goods, ItemId};
use trustex_core::money::Money;
use trustex_core::safety::SafetyMargins;
use trustex_core::scheduler::{
    branch_and_bound_order, sandholm_order_scan, subset_dp_order, Scheduler,
};
use trustex_netsim::rng::SimRng;

fn instance(n: usize, seed: u64) -> Goods {
    let mut rng = SimRng::new(seed);
    Goods::new(
        (0..n)
            .map(|_| {
                (
                    Money::from_f64(rng.range_f64(0.5, 20.0)),
                    Money::from_f64(rng.range_f64(0.5, 30.0)),
                )
            })
            .collect(),
    )
    .expect("non-empty")
}

fn wide_margins(goods: &Goods) -> SafetyMargins {
    SafetyMargins::new(
        goods.total_supplier_cost() + goods.total_consumer_value(),
        Money::ZERO,
    )
    .expect("non-negative")
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/greedy");
    let mut sched = Scheduler::new();
    for n in [1024usize, 16_384, 65_536, 262_144, 1_000_000] {
        let goods = instance(n, 2);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &goods, |b, g| {
            b.iter(|| black_box(sched.min_required_margin(g)))
        });
    }
    group.finish();
}

fn bench_sandholm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/sandholm");
    let mut sched = Scheduler::new();
    let mut order: Vec<ItemId> = Vec::new();
    for n in [1024usize, 16_384, 100_000] {
        let goods = instance(n, 3);
        let margins = wide_margins(&goods);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &goods, |b, g| {
            b.iter(|| {
                sched
                    .sandholm_order_into(g, margins, &mut order)
                    .expect("feasible");
                black_box(order.len())
            })
        });
    }
    group.finish();
}

fn bench_sandholm_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/sandholm_scan");
    for n in [256usize, 1024, 4096] {
        let goods = instance(n, 3);
        let margins = wide_margins(&goods);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &goods, |b, g| {
            b.iter(|| black_box(sandholm_order_scan(g, margins).expect("feasible")))
        });
    }
    group.finish();
}

fn bench_subset_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/subset_dp");
    for n in [8usize, 12, 16, 20] {
        let goods = instance(n, 4);
        let margins = wide_margins(&goods);
        group.bench_with_input(BenchmarkId::from_parameter(n), &goods, |b, g| {
            b.iter(|| black_box(subset_dp_order(g, margins).expect("size ok")))
        });
    }
    group.finish();
}

fn bench_branch_and_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2/bnb");
    for n in [16usize, 24, 30] {
        let goods = instance(n, 4);
        // The exact feasibility boundary, where the search actually
        // branches (wide margins hit the root completion bound).
        let req = trustex_core::scheduler::min_required_margin(&goods);
        let margins = SafetyMargins::new(req, Money::ZERO).expect("non-negative");
        group.bench_with_input(BenchmarkId::from_parameter(n), &goods, |b, g| {
            b.iter(|| black_box(branch_and_bound_order(g, margins).expect("size ok")))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy,
    bench_sandholm,
    bench_sandholm_scan,
    bench_subset_dp,
    bench_branch_and_bound
);
criterion_main!(benches);
