//! The end-to-end marketplace simulation: Figure 1 as a running loop.
//!
//! Every round, random pairs strike deals from a [`Workload`], schedule
//! them with a [`Strategy`], execute against the agents' true behaviours,
//! and feed the observed conduct back into trust models and gossip — the
//! full reputation → trust → decision → exchange → feedback cycle of the
//! paper's reference model.

use crate::metrics::{decision_accuracy, rank_accuracy, trust_mae};
use crate::population::{Community, ModelKind};
use crate::strategy::{plan, Strategy};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use trustex_agents::profile::PopulationMix;
use trustex_core::execute::{execute, ExchangeStatus};
use trustex_core::policy::PaymentPolicy;
use trustex_core::state::Role;
use trustex_netsim::rng::SimRng;
use trustex_trust::model::{Conduct, PeerId, WitnessReport};

/// Configuration of one market simulation.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Community size.
    pub n_agents: usize,
    /// Number of rounds.
    pub rounds: u64,
    /// Exchange sessions attempted per round.
    pub sessions_per_round: usize,
    /// Population composition.
    pub mix: PopulationMix,
    /// Trust model run by every agent.
    pub model: ModelKind,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Deal generator.
    pub workload: Workload,
    /// Payment interleaving policy.
    pub payment_policy: PaymentPolicy,
    /// Witnesses each party gossips its observation to after a session.
    pub gossip_witnesses: usize,
    /// Master seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Record O(n²) trust metrics every round (else only at the end).
    pub track_trust_per_round: bool,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            n_agents: 100,
            rounds: 30,
            sessions_per_round: 100,
            mix: PopulationMix::standard(0.3, 0.25),
            model: ModelKind::Beta,
            strategy: Strategy::TrustAware,
            workload: Workload::Ebay,
            payment_policy: PaymentPolicy::Lazy,
            gossip_witnesses: 3,
            seed: 42,
            track_trust_per_round: false,
        }
    }
}

/// Per-round aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index.
    pub round: u64,
    /// Sessions attempted.
    pub sessions: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Sessions aborted by a defection.
    pub aborted: u64,
    /// Sessions never scheduled (declined or infeasible).
    pub no_trade: u64,
    /// Realized welfare (sum of both parties' gains), major units.
    pub welfare: f64,
    /// Losses (negative gains) suffered by fundamentally honest agents.
    pub honest_losses: f64,
    /// Trust MAE at the end of the round, when tracked.
    pub trust_mae: Option<f64>,
}

/// Whole-run aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketReport {
    /// Per-round statistics.
    pub per_round: Vec<RoundStats>,
    /// Total sessions attempted.
    pub sessions: u64,
    /// Total completed.
    pub completed: u64,
    /// Total aborted by defection.
    pub aborted: u64,
    /// Total unscheduled (declined / infeasible).
    pub no_trade: u64,
    /// Total realized welfare, major units.
    pub total_welfare: f64,
    /// Total gains of fundamentally honest agents.
    pub honest_gain: f64,
    /// Total gains of dishonest agents.
    pub dishonest_gain: f64,
    /// Total losses suffered by honest agents.
    pub honest_losses: f64,
    /// Final trust MAE over all pairs.
    pub final_mae: f64,
    /// Final ranking accuracy (AUC analogue).
    pub final_rank_accuracy: f64,
    /// Final decision accuracy (threshold 0.5).
    pub final_decision_accuracy: f64,
}

impl MarketReport {
    /// Completed / attempted (0 when nothing attempted).
    pub fn completion_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.completed as f64 / self.sessions as f64
        }
    }

    /// Fraction of sessions that were never scheduled.
    pub fn no_trade_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.no_trade as f64 / self.sessions as f64
        }
    }

    /// Mean welfare per attempted session.
    pub fn welfare_per_session(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.total_welfare / self.sessions as f64
        }
    }
}

/// The simulation driver.
#[derive(Debug)]
pub struct MarketSim {
    cfg: MarketConfig,
    community: Community,
    rng: SimRng,
    honest_gain: f64,
    dishonest_gain: f64,
}

impl MarketSim {
    /// Builds the simulation (samples the population).
    pub fn new(cfg: MarketConfig) -> MarketSim {
        let mut rng = SimRng::new(cfg.seed);
        let community = Community::new(cfg.n_agents, &cfg.mix, cfg.model, &mut rng);
        MarketSim {
            cfg,
            community,
            rng,
            honest_gain: 0.0,
            dishonest_gain: 0.0,
        }
    }

    /// Read access to the community (e.g. for custom metrics).
    pub fn community(&self) -> &Community {
        &self.community
    }

    /// Runs all rounds and produces the report.
    pub fn run(mut self) -> MarketReport {
        let mut per_round = Vec::with_capacity(self.cfg.rounds as usize);
        let mut report = MarketReport {
            per_round: Vec::new(),
            sessions: 0,
            completed: 0,
            aborted: 0,
            no_trade: 0,
            total_welfare: 0.0,
            honest_gain: 0.0,
            dishonest_gain: 0.0,
            honest_losses: 0.0,
            final_mae: 0.0,
            final_rank_accuracy: 0.0,
            final_decision_accuracy: 0.0,
        };
        for round in 0..self.cfg.rounds {
            let stats = self.run_round(round);
            report.sessions += stats.sessions;
            report.completed += stats.completed;
            report.aborted += stats.aborted;
            report.no_trade += stats.no_trade;
            report.total_welfare += stats.welfare;
            report.honest_losses += stats.honest_losses;
            per_round.push(stats);
        }
        // Gains per class are accumulated inside run_round via fields on
        // self; fold them here.
        report.honest_gain = self.honest_gain;
        report.dishonest_gain = self.dishonest_gain;
        report.final_mae = trust_mae(&self.community);
        report.final_rank_accuracy = rank_accuracy(&self.community);
        report.final_decision_accuracy = decision_accuracy(&self.community);
        report.per_round = per_round;
        report
    }

    fn run_round(&mut self, round: u64) -> RoundStats {
        let n = self.community.len();
        let mut stats = RoundStats {
            round,
            sessions: 0,
            completed: 0,
            aborted: 0,
            no_trade: 0,
            welfare: 0.0,
            honest_losses: 0.0,
            trust_mae: None,
        };
        for _ in 0..self.cfg.sessions_per_round {
            stats.sessions += 1;
            let supplier = PeerId(self.rng.index(n) as u32);
            let consumer = loop {
                let c = PeerId(self.rng.index(n) as u32);
                if c != supplier {
                    break c;
                }
            };
            let deal = self.cfg.workload.generate_deal(&mut self.rng);
            let s_trust = self.community.predict(supplier, consumer);
            let c_trust = self.community.predict(consumer, supplier);
            let sequence = match plan(
                self.cfg.strategy,
                &deal,
                s_trust,
                c_trust,
                self.cfg.payment_policy,
            ) {
                Ok(seq) => seq,
                Err(_) => {
                    stats.no_trade += 1;
                    continue;
                }
            };
            // Execute against the true behaviours.
            let mut rng_s = self.rng.fork(0xD1CE);
            let mut rng_c = self.rng.fork(0xFACE);
            let s_behavior = self.community.profile(supplier).exchange;
            let c_behavior = self.community.profile(consumer).exchange;
            let outcome = {
                let mut s_oracle = s_behavior.oracle(round, &mut rng_s);
                let mut c_oracle = c_behavior.oracle(round, &mut rng_c);
                execute(&deal, &sequence, &mut s_oracle, &mut c_oracle)
            };

            // Accounting.
            stats.welfare += outcome.welfare().as_f64();
            let s_gain = outcome.supplier_gain.as_f64();
            let c_gain = outcome.consumer_gain.as_f64();
            for (agent, gain) in [(supplier, s_gain), (consumer, c_gain)] {
                if self.community.is_honest(agent) {
                    self.honest_gain += gain;
                    if gain < 0.0 {
                        stats.honest_losses += -gain;
                    }
                } else {
                    self.dishonest_gain += gain;
                }
            }
            match outcome.status {
                ExchangeStatus::Completed => stats.completed += 1,
                ExchangeStatus::Aborted { .. } => stats.aborted += 1,
            }

            // Feedback: both parties observed whether the other defected.
            let s_defected = matches!(
                outcome.status,
                ExchangeStatus::Aborted {
                    by: Role::Supplier,
                    ..
                }
            );
            let c_defected = matches!(
                outcome.status,
                ExchangeStatus::Aborted {
                    by: Role::Consumer,
                    ..
                }
            );
            self.feedback(supplier, consumer, Conduct::from_honest(!c_defected), round);
            self.feedback(consumer, supplier, Conduct::from_honest(!s_defected), round);

            // Unprovoked slander.
            for observer in [supplier, consumer] {
                let reporting = self.community.profile(observer).reporting;
                if reporting.slanders_now(&mut self.rng) {
                    let victim = PeerId(self.rng.index(n) as u32);
                    if victim != observer {
                        self.gossip(observer, victim, Conduct::Dishonest, round);
                    }
                }
            }
        }
        if self.cfg.track_trust_per_round {
            stats.trust_mae = Some(trust_mae(&self.community));
        }
        stats
    }

    /// Records `observer`'s direct experience and gossips the (possibly
    /// distorted) report to random witnesses.
    fn feedback(&mut self, observer: PeerId, subject: PeerId, truth: Conduct, round: u64) {
        self.community
            .record_direct(observer, subject, truth, round);
        let reporting = self.community.profile(observer).reporting;
        if let Some(shaped) = reporting.report(truth) {
            self.gossip(observer, subject, shaped, round);
        }
    }

    /// Delivers a witness report about `subject` to `gossip_witnesses`
    /// random other agents.
    fn gossip(&mut self, witness: PeerId, subject: PeerId, conduct: Conduct, round: u64) {
        let n = self.community.len();
        let k = self.cfg.gossip_witnesses.min(n.saturating_sub(2));
        for _ in 0..k {
            let target = PeerId(self.rng.index(n) as u32);
            if target == witness || target == subject {
                continue;
            }
            self.community.deliver_witness_report(
                target,
                WitnessReport {
                    witness,
                    subject,
                    conduct,
                    round,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(strategy: Strategy) -> MarketConfig {
        MarketConfig {
            n_agents: 40,
            rounds: 8,
            sessions_per_round: 40,
            strategy,
            workload: Workload::FileSharing,
            ..MarketConfig::default()
        }
    }

    #[test]
    fn deterministic_runs() {
        let a = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        let b = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.aborted, b.aborted);
        assert!((a.total_welfare - b.total_welfare).abs() < 1e-9);
    }

    #[test]
    fn safe_only_never_trades_positive_cost_workloads() {
        let report = MarketSim::new(smoke_cfg(Strategy::SafeOnly)).run();
        assert_eq!(report.completed, 0);
        assert_eq!(report.no_trade, report.sessions);
        assert_eq!(report.total_welfare, 0.0);
    }

    #[test]
    fn trust_aware_trades_and_learns() {
        let report = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        assert!(report.completed > 0, "trust-aware must enable trades");
        assert!(
            report.final_rank_accuracy > 0.6,
            "models should separate honest from dishonest: {}",
            report.final_rank_accuracy
        );
        // Honest agents end up net positive in aggregate.
        assert!(report.honest_gain > 0.0);
    }

    #[test]
    fn deliver_first_bleeds_welfare_to_defectors() {
        let naive = MarketSim::new(smoke_cfg(Strategy::UnsafeDeliverFirst)).run();
        let aware = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        // The naive strategy completes trades with everyone, so dishonest
        // agents capture gains; honest losses exceed the trust-aware ones.
        assert!(naive.honest_losses > aware.honest_losses);
        assert!(naive.aborted > 0);
    }

    #[test]
    fn report_rates_consistent() {
        let r = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        assert_eq!(r.sessions, r.completed + r.aborted + r.no_trade);
        assert!((0.0..=1.0).contains(&r.completion_rate()));
        assert!((0.0..=1.0).contains(&r.no_trade_rate()));
        assert_eq!(r.per_round.len(), 8);
        let sum: u64 = r.per_round.iter().map(|s| s.sessions).sum();
        assert_eq!(sum, r.sessions);
    }

    #[test]
    fn per_round_trust_tracking() {
        let cfg = MarketConfig {
            track_trust_per_round: true,
            ..smoke_cfg(Strategy::TrustAware)
        };
        let r = MarketSim::new(cfg).run();
        assert!(r.per_round.iter().all(|s| s.trust_mae.is_some()));
        let first = r.per_round.first().unwrap().trust_mae.unwrap();
        let last = r.per_round.last().unwrap().trust_mae.unwrap();
        assert!(
            last <= first,
            "trust error should not grow: {first} -> {last}"
        );
    }
}
