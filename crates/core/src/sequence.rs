//! Exchange sequences and the independent safety verifier.
//!
//! An [`ExchangeSequence`] is the concrete schedule the paper's algorithm
//! outputs: an interleaving of item deliveries and payment chunks. The
//! [`verify`] function replays a sequence against a deal and margins and
//! checks *every* prefix against the safety conditions — it shares no
//! code with the schedulers, so the two act as independent witnesses in
//! the test suite.

use crate::deal::Deal;
use crate::goods::ItemId;
use crate::money::Money;
use crate::safety::{check, SafetyCheck, SafetyMargins};
use crate::state::{Progress, Role, StateError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One atomic step of an exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// The supplier delivers the identified item.
    Deliver(ItemId),
    /// The consumer pays the contained amount.
    Pay(Money),
}

impl Action {
    /// The role that performs this action.
    pub fn actor(&self) -> Role {
        match self {
            Action::Deliver(_) => Role::Supplier,
            Action::Pay(_) => Role::Consumer,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Deliver(id) => write!(f, "deliver {id}"),
            Action::Pay(m) => write!(f, "pay {m}"),
        }
    }
}

/// An ordered schedule of actions for one deal.
///
/// Construction does not validate anything; validation is the verifier's
/// job so that tests can build intentionally broken sequences.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExchangeSequence {
    actions: Vec<Action>,
}

impl ExchangeSequence {
    /// Creates a sequence from raw actions.
    pub fn new(actions: Vec<Action>) -> ExchangeSequence {
        ExchangeSequence { actions }
    }

    /// The actions in order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Appends an action.
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// Number of delivery actions.
    pub fn delivery_count(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, Action::Deliver(_)))
            .count()
    }

    /// Number of payment actions.
    pub fn payment_count(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, Action::Pay(_)))
            .count()
    }

    /// Sum of all payments in the sequence.
    pub fn total_paid(&self) -> Money {
        self.actions
            .iter()
            .filter_map(|a| match a {
                Action::Pay(m) => Some(*m),
                Action::Deliver(_) => None,
            })
            .sum()
    }

    /// The delivery order as a list of item ids.
    pub fn delivery_order(&self) -> Vec<ItemId> {
        self.actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver(id) => Some(*id),
                Action::Pay(_) => None,
            })
            .collect()
    }
}

impl FromIterator<Action> for ExchangeSequence {
    fn from_iter<T: IntoIterator<Item = Action>>(iter: T) -> Self {
        ExchangeSequence {
            actions: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a ExchangeSequence {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;
    fn into_iter(self) -> Self::IntoIter {
        self.actions.iter()
    }
}

/// Why a sequence failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The very first state (nothing exchanged) already violates safety —
    /// the price is outside the initial window.
    UnsafeInitialState {
        /// Whose temptation is violated initially.
        tempted: Role,
        /// By how much.
        excess: Money,
    },
    /// Safety violated after executing the action at `step`.
    UnsafePrefix {
        /// Index of the violating action.
        step: usize,
        /// The violating action.
        action: Action,
        /// Whose temptation exceeds its bound.
        tempted: Role,
        /// By how much.
        excess: Money,
    },
    /// An action was structurally invalid (double delivery, unknown item,
    /// non-positive payment).
    InvalidAction {
        /// Index of the invalid action.
        step: usize,
        /// The underlying state error.
        source: StateError,
    },
    /// Payments in the sequence exceed the price `P`.
    Overpayment {
        /// Index of the action at which cumulative payments first exceed P.
        step: usize,
        /// Cumulative amount paid after that action.
        paid: Money,
        /// The agreed price.
        price: Money,
    },
    /// The sequence ended without delivering every item and paying `P`.
    Incomplete {
        /// Items delivered by the end.
        delivered: usize,
        /// Items in the deal.
        total_items: usize,
        /// Amount paid by the end.
        paid: Money,
        /// The agreed price.
        price: Money,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnsafeInitialState { tempted, excess } => write!(
                f,
                "initial state unsafe: {tempted} temptation exceeds bound by {excess}"
            ),
            VerifyError::UnsafePrefix {
                step,
                action,
                tempted,
                excess,
            } => write!(
                f,
                "unsafe after step {step} ({action}): {tempted} temptation exceeds bound by {excess}"
            ),
            VerifyError::InvalidAction { step, source } => {
                write!(f, "invalid action at step {step}: {source}")
            }
            VerifyError::Overpayment { step, paid, price } => {
                write!(f, "overpayment at step {step}: paid {paid} of price {price}")
            }
            VerifyError::Incomplete {
                delivered,
                total_items,
                paid,
                price,
            } => write!(
                f,
                "incomplete sequence: delivered {delivered}/{total_items}, paid {paid}/{price}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::InvalidAction { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A sequence that passed verification, with its exposure profile.
///
/// The exposure profile records the worst temptation each party was
/// subjected to along the way — the realized counterpart of the ε bounds
/// (exposed per C-INTERMEDIATE so callers don't recompute it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VerifiedSequence {
    sequence: ExchangeSequence,
    max_consumer_temptation: Money,
    max_supplier_temptation: Money,
}

impl VerifiedSequence {
    /// The verified sequence.
    pub fn sequence(&self) -> &ExchangeSequence {
        &self.sequence
    }

    /// Consumes the wrapper, returning the sequence.
    pub fn into_sequence(self) -> ExchangeSequence {
        self.sequence
    }

    /// Largest consumer temptation reached (the supplier's realized risk).
    pub fn max_consumer_temptation(&self) -> Money {
        self.max_consumer_temptation
    }

    /// Largest supplier temptation reached (the consumer's realized risk).
    pub fn max_supplier_temptation(&self) -> Money {
        self.max_supplier_temptation
    }
}

/// Replays `sequence` against `deal`, checking the (relaxed) safety
/// conditions after the initial state and every action, plus structural
/// validity and completeness.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered, or the verified
/// sequence with its exposure profile.
pub fn verify(
    deal: &Deal,
    margins: SafetyMargins,
    sequence: &ExchangeSequence,
) -> Result<VerifiedSequence, VerifyError> {
    let mut progress = Progress::new(deal);
    let mut max_tc = Money::MIN;
    let mut max_ts = Money::MIN;

    // Initial state check.
    match check(&progress.view(), margins) {
        SafetyCheck::Safe => {}
        SafetyCheck::Violated { tempted, excess } => {
            return Err(VerifyError::UnsafeInitialState { tempted, excess });
        }
    }
    max_tc = max_tc.max(progress.view().consumer_temptation());
    max_ts = max_ts.max(progress.view().supplier_temptation());

    for (step, action) in sequence.actions().iter().enumerate() {
        let applied = match action {
            Action::Deliver(id) => progress.deliver(*id),
            Action::Pay(amount) => progress.pay(*amount),
        };
        if let Err(source) = applied {
            return Err(VerifyError::InvalidAction { step, source });
        }
        if progress.state().paid() > deal.price() {
            return Err(VerifyError::Overpayment {
                step,
                paid: progress.state().paid(),
                price: deal.price(),
            });
        }
        match check(&progress.view(), margins) {
            SafetyCheck::Safe => {}
            SafetyCheck::Violated { tempted, excess } => {
                return Err(VerifyError::UnsafePrefix {
                    step,
                    action: *action,
                    tempted,
                    excess,
                });
            }
        }
        max_tc = max_tc.max(progress.view().consumer_temptation());
        max_ts = max_ts.max(progress.view().supplier_temptation());
    }

    if !progress.is_complete() {
        return Err(VerifyError::Incomplete {
            delivered: progress.state().delivered_count(),
            total_items: deal.goods().len(),
            paid: progress.state().paid(),
            price: deal.price(),
        });
    }

    Ok(VerifiedSequence {
        sequence: sequence.clone(),
        max_consumer_temptation: max_tc,
        max_supplier_temptation: max_ts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goods::Goods;

    /// Vs = [2,1,3], Vc = [5,4,3]; Vs(G)=6, Vc(G)=12, P=9.
    fn deal() -> Deal {
        let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap();
        Deal::new(goods, Money::from_units(9)).unwrap()
    }

    fn ids(deal: &Deal) -> Vec<ItemId> {
        deal.goods().ids().collect()
    }

    #[test]
    fn sequence_accessors() {
        let d = deal();
        let id = ids(&d)[0];
        let mut seq = ExchangeSequence::new(vec![Action::Pay(Money::from_units(3))]);
        seq.push(Action::Deliver(id));
        assert_eq!(seq.len(), 2);
        assert!(!seq.is_empty());
        assert_eq!(seq.delivery_count(), 1);
        assert_eq!(seq.payment_count(), 1);
        assert_eq!(seq.total_paid(), Money::from_units(3));
        assert_eq!(seq.delivery_order(), vec![id]);
        assert_eq!(seq.actions()[1].actor(), Role::Supplier);
        assert_eq!(Action::Pay(Money::from_units(3)).actor(), Role::Consumer);
        let collected: ExchangeSequence = seq.actions().iter().copied().collect();
        assert_eq!(collected, seq);
        assert_eq!((&seq).into_iter().count(), 2);
        assert_eq!(format!("{}", seq.actions()[0]), "pay 3.000000");
        assert!(format!("{}", seq.actions()[1]).starts_with("deliver item#"));
    }

    /// A hand-built sequence that is safe under a symmetric ε = 3 margin:
    /// pay 3 → deliver #2 (Vc=3,Vs=3) → pay 3 → deliver #1 (Vc=4,Vs=1)
    /// → deliver #0 (Vc=5,Vs=2) → pay 3.
    fn relaxed_sequence(d: &Deal) -> ExchangeSequence {
        let ids = ids(d);
        ExchangeSequence::new(vec![
            Action::Pay(Money::from_units(3)),
            Action::Deliver(ids[2]),
            Action::Pay(Money::from_units(3)),
            Action::Deliver(ids[1]),
            Action::Deliver(ids[0]),
            Action::Pay(Money::from_units(3)),
        ])
    }

    #[test]
    fn verifier_accepts_relaxed_sequence() {
        let d = deal();
        let margins = SafetyMargins::symmetric(Money::from_units(3)).unwrap();
        let verified = verify(&d, margins, &relaxed_sequence(&d)).unwrap();
        // The final delivery leaves the consumer holding all goods owing 3:
        // T_c = 3 at that point; the supplier was at most owed cost 3.
        assert_eq!(verified.max_consumer_temptation(), Money::from_units(3));
        assert!(verified.max_supplier_temptation() <= Money::from_units(3));
        assert_eq!(verified.sequence().len(), 6);
        assert_eq!(verified.clone().into_sequence().len(), 6);
    }

    #[test]
    fn verifier_rejects_same_sequence_fully_safe() {
        let d = deal();
        let err = verify(&d, SafetyMargins::fully_safe(), &relaxed_sequence(&d)).unwrap_err();
        match err {
            VerifyError::UnsafePrefix {
                step,
                tempted,
                excess,
                ..
            } => {
                // The early payments sit exactly on the boundary (T_s = 0);
                // the first strict violation is the final delivery, which
                // leaves the consumer holding everything while owing 3.
                assert_eq!(tempted, Role::Consumer);
                assert_eq!(step, 4);
                assert_eq!(excess, Money::from_units(3));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn verifier_rejects_incomplete() {
        let d = deal();
        let margins = SafetyMargins::symmetric(Money::from_units(12)).unwrap();
        let seq = ExchangeSequence::new(vec![Action::Pay(Money::from_units(1))]);
        let err = verify(&d, margins, &seq).unwrap_err();
        assert!(matches!(err, VerifyError::Incomplete { delivered: 0, .. }));
        assert!(err.to_string().contains("incomplete"));
    }

    #[test]
    fn verifier_rejects_double_delivery() {
        let d = deal();
        let margins = SafetyMargins::symmetric(Money::from_units(20)).unwrap();
        let id = ids(&d)[0];
        let seq = ExchangeSequence::new(vec![Action::Deliver(id), Action::Deliver(id)]);
        let err = verify(&d, margins, &seq).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::InvalidAction {
                step: 1,
                source: StateError::AlreadyDelivered(_)
            }
        ));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn verifier_rejects_overpayment() {
        let d = deal();
        let margins = SafetyMargins::symmetric(Money::from_units(20)).unwrap();
        let seq = ExchangeSequence::new(vec![
            Action::Pay(Money::from_units(9)),
            Action::Pay(Money::from_units(1)),
        ]);
        let err = verify(&d, margins, &seq).unwrap_err();
        assert!(matches!(err, VerifyError::Overpayment { step: 1, .. }));
    }

    #[test]
    fn initial_state_of_validated_deal_is_always_safe() {
        // Deal validation guarantees Vs(G) ≤ P ≤ Vc(G), which makes both
        // initial temptations ≤ 0 — `UnsafeInitialState` is therefore
        // unreachable through the public constructors and exists only as
        // a defensive check. Boundary case: P = Vc(G).
        let goods = Goods::from_f64_pairs(&[(1.0, 2.0)]).unwrap();
        let deal = Deal::new(goods, Money::from_units(2)).unwrap();
        // Any single positive-cost item makes a fully safe completion
        // impossible: the failure must be an UnsafePrefix at the delivery,
        // never an unsafe initial state.
        let err = verify(
            &deal,
            SafetyMargins::fully_safe(),
            &ExchangeSequence::new(vec![
                Action::Pay(Money::from_units(1)),
                Action::Deliver(deal.goods().ids().next().unwrap()),
                Action::Pay(Money::from_units(1)),
            ]),
        )
        .unwrap_err();
        match err {
            VerifyError::UnsafePrefix { step, tempted, .. } => {
                assert_eq!(step, 1);
                assert_eq!(tempted, Role::Consumer);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unknown_item_is_invalid_action() {
        let d = deal();
        let margins = SafetyMargins::symmetric(Money::from_units(20)).unwrap();
        let seq = ExchangeSequence::new(vec![Action::Deliver(ItemId(42))]);
        let err = verify(&d, margins, &seq).unwrap_err();
        assert!(matches!(
            err,
            VerifyError::InvalidAction {
                step: 0,
                source: StateError::UnknownItem(_)
            }
        ));
    }

    #[test]
    fn fully_safe_single_zero_cost_item() {
        // One item with Vs = 0: pay-all-then-deliver is fully safe since
        // the supplier loses nothing by delivering.
        let goods = Goods::from_f64_pairs(&[(0.0, 5.0)]).unwrap();
        let deal = Deal::new(goods, Money::from_units(4)).unwrap();
        let id = deal.goods().ids().next().unwrap();
        let seq =
            ExchangeSequence::new(vec![Action::Pay(Money::from_units(4)), Action::Deliver(id)]);
        let v = verify(&deal, SafetyMargins::fully_safe(), &seq).unwrap();
        assert_eq!(v.max_consumer_temptation(), Money::ZERO);
        assert_eq!(v.max_supplier_temptation(), Money::ZERO);
    }

    #[test]
    fn zero_payment_rejected_structurally() {
        let d = deal();
        let margins = SafetyMargins::symmetric(Money::from_units(20)).unwrap();
        let seq = ExchangeSequence::new(vec![Action::Pay(Money::ZERO)]);
        let err = verify(&d, margins, &seq).unwrap_err();
        assert!(matches!(err, VerifyError::InvalidAction { .. }));
    }
}
