//! Fast end-to-end smoke test of the reproduction pipeline.
//!
//! Mirrors `cargo run -p trustex-bench --bin repro -- --smoke` twice
//! over: once in-process through the experiment registry (so a failure
//! points at the experiment that broke), and once by spawning the actual
//! `repro` binary (so the CLI surface — flag parsing, experiment
//! selection, exit codes — stays covered too).

use std::process::Command;
use trustex_bench::{find, render_block, Scale, ALL};

/// Every experiment runs at smoke scale and produces a non-trivial table.
#[test]
fn all_experiments_run_at_smoke_scale() {
    for experiment in &ALL {
        let table = (experiment.run)(Scale::Smoke);
        assert!(
            !table.rows().is_empty(),
            "experiment {} produced an empty table",
            experiment.id
        );
        let rendered = render_block(&table);
        assert!(
            rendered.trim_start().starts_with("##"),
            "experiment {} table does not render a markdown heading:\n{rendered}",
            experiment.id
        );
    }
}

/// The registry lookup used by the CLI finds every id and nothing else.
#[test]
fn registry_lookup_is_consistent() {
    for experiment in &ALL {
        let found = find(experiment.id).expect("registered id must resolve");
        assert_eq!(found.id, experiment.id);
    }
    assert!(find("e99").is_none());
    assert!(find("").is_none());
}

/// The real binary completes `--smoke` and prints every experiment's tag.
#[test]
fn repro_binary_smoke_run_succeeds() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--smoke")
        .output()
        .expect("failed to spawn repro binary");
    assert!(
        output.status.success(),
        "repro --smoke exited with {:?}\nstderr: {}",
        output.status.code(),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("smoke scale"), "missing smoke-scale header");
    for experiment in &ALL {
        assert!(
            stdout.contains(&format!("[{}]", experiment.id)),
            "experiment {} missing from repro output",
            experiment.id
        );
    }
}

/// Unknown experiment ids are rejected with exit code 2.
#[test]
fn repro_binary_rejects_unknown_id() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--smoke", "e99"])
        .output()
        .expect("failed to spawn repro binary");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown experiment id"));
}
