//! Failure injection: the system under adversarial and degraded
//! conditions — churn in the storage overlay, lying storage peers,
//! exit-scam behaviour switches, and hostile sequences fed to the
//! execution engine.

use trust_aware_cooperation::agents::prelude::*;
use trust_aware_cooperation::core::prelude::*;
use trust_aware_cooperation::netsim::churn::{ChurnModel, ChurnTimeline};
use trust_aware_cooperation::netsim::rng::SimRng;
use trust_aware_cooperation::netsim::time::SimTime;
use trust_aware_cooperation::reputation::prelude::*;
use trust_aware_cooperation::trust::prelude::*;

/// Complaints filed before churn remain mostly retrievable while peers
/// flap, thanks to replication.
#[test]
fn reputation_survives_churn_timeline() {
    let mut sys = ReputationSystem::new(128, ReputationConfig::default(), 31);
    let offender = PeerId(5);
    for v in 50..56 {
        sys.file_complaint(PeerId(v), offender, 0, None);
    }
    let mut rng = SimRng::new(32);
    // 25% long-run downtime.
    let model = ChurnModel::new(30.0, 10.0);
    let timeline = ChurnTimeline::generate(128, SimTime::from_secs(100), model, &mut rng);

    let mut resolved = 0;
    let mut correct = 0;
    let probes = 40;
    for t in 0..probes {
        let at = SimTime::from_secs(2 * t as u64 + 1);
        let alive: Vec<bool> = (0..128).map(|i| timeline.is_up(i, at)).collect();
        // Query from a live peer.
        let Some(origin) = alive.iter().position(|up| *up) else {
            continue;
        };
        if let Some(tally) = sys.query_tally(PeerId(origin as u32), offender, Some(&alive)) {
            resolved += 1;
            if tally.received == 6 {
                correct += 1;
            }
        }
    }
    assert!(
        resolved >= probes * 6 / 10,
        "under 25% churn most queries should resolve: {resolved}/{probes}"
    );
    assert!(
        correct * 10 >= resolved * 8,
        "resolved queries should be correct: {correct}/{resolved}"
    );
}

/// Sweep storage corruption: tallies stay exact through minority
/// corruption and only break down when liars dominate replica groups.
#[test]
fn corruption_sweep_degrades_gracefully() {
    let mut exact_by_level = Vec::new();
    for (i, fraction) in [0.0, 0.2, 0.8].into_iter().enumerate() {
        let mut sys = ReputationSystem::new(96, ReputationConfig::default(), 77 + i as u64);
        let subject = PeerId(11);
        for v in 40..45 {
            sys.file_complaint(PeerId(v), subject, 0, None);
        }
        sys.corrupt_fraction(fraction);
        let mut exact = 0;
        for q in 0..20u32 {
            if let Some(t) = sys.query_tally(PeerId(60 + q), subject, None) {
                if t.received == 5 && t.filed == 0 {
                    exact += 1;
                }
            }
        }
        exact_by_level.push(exact);
    }
    assert_eq!(exact_by_level[0], 20, "clean storage must be exact");
    assert!(
        exact_by_level[1] >= 14,
        "20% corruption should be mostly voted out: {exact_by_level:?}"
    );
    assert!(
        exact_by_level[2] <= exact_by_level[1],
        "heavy corruption cannot beat light: {exact_by_level:?}"
    );
}

/// An exit scammer builds a clean record, then turns; the trust model
/// catches the turn within a few observations.
#[test]
fn exit_scam_is_caught_after_the_turn() {
    let scammer = ExchangeBehavior::ExitScam { honest_rounds: 10 };
    let goods = Goods::from_f64_pairs(&[(1.0, 3.0), (2.0, 4.0)]).unwrap();
    let deal = Deal::with_split_surplus(goods).unwrap();
    let margins = SafetyMargins::symmetric(Money::from_units(2)).unwrap();
    let seq = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)
        .unwrap()
        .into_sequence();

    let mut model = BetaTrust::new();
    let victim_view = PeerId(1);
    let mut completions_before_turn = 0;
    let mut completions_after_turn = 0;
    for round in 0..20u64 {
        let mut rng = SimRng::new(round);
        let mut oracle = scammer.oracle(round, &mut rng);
        let outcome = execute(&deal, &seq, &mut Honest, &mut oracle);
        let honest = outcome.status.is_completed();
        if round < 10 {
            completions_before_turn += honest as u32;
        } else {
            completions_after_turn += honest as u32;
        }
        model.record_direct(victim_view, Conduct::from_honest(honest), round);
    }
    assert_eq!(
        completions_before_turn, 10,
        "scammer farms reputation first"
    );
    assert_eq!(completions_after_turn, 0, "then defects every time");
    let estimate = model.predict(victim_view);
    assert!(
        estimate.p_honest < 0.6,
        "ten defections must drag the estimate down: {}",
        estimate.p_honest
    );
}

/// Hostile hand-built sequences: the verifier rejects them under honest
/// margins even when they "look" plausible.
#[test]
fn verifier_rejects_adversarial_schedules() {
    let goods = Goods::from_f64_pairs(&[(2.0, 6.0), (3.0, 7.0)]).unwrap();
    let deal = Deal::with_split_surplus(goods).unwrap();
    let ids: Vec<_> = deal.goods().ids().collect();
    let margins = SafetyMargins::symmetric(Money::from_units(1)).unwrap();

    // Supplier-favouring scam: full prepayment sneaked in as two chunks.
    let scam = ExchangeSequence::new(vec![
        Action::Pay(Money::from_units(5)),
        Action::Pay(deal.price() - Money::from_units(5)),
        Action::Deliver(ids[0]),
        Action::Deliver(ids[1]),
    ]);
    assert!(verify(&deal, margins, &scam).is_err());

    // Consumer-favouring scam: everything delivered up front.
    let scam = ExchangeSequence::new(vec![
        Action::Deliver(ids[1]),
        Action::Deliver(ids[0]),
        Action::Pay(deal.price()),
    ]);
    assert!(verify(&deal, margins, &scam).is_err());

    // The legitimate schedule for the same margins passes.
    assert!(schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy).is_ok());
}

/// Slanderers flood the gossip channel; the beta model's witness
/// discounting keeps an innocent peer's estimate near its direct record.
#[test]
fn slander_flood_bounded_by_discounting() {
    let mut model = BetaTrust::new();
    let innocent = PeerId(1);
    // Ten clean direct interactions.
    for round in 0..10 {
        model.record_direct(innocent, Conduct::Honest, round);
    }
    let before = model.predict(innocent).p_honest;
    // Fifty slander reports from strangers.
    for s in 0..50u32 {
        model.record_witness(WitnessReport {
            witness: PeerId(100 + s),
            subject: innocent,
            conduct: Conduct::Dishonest,
            round: 10,
        });
    }
    let after = model.predict(innocent).p_honest;
    assert!(
        after > 0.5,
        "stranger flood must not flip a solid direct record: {before} -> {after}"
    );
}
