//! Community-scale experiments: strategy comparison (E4), trust accuracy
//! (E5), marketplace comparison (E8) and convergence (E9).
//!
//! Every experiment here is a matrix of **independent** simulation arms
//! (each arm owns its seed), so the arms fan out across the worker pool
//! via [`run_arms`] and the table is reassembled in declaration order —
//! output is bit-identical to a sequential run for any thread count.

use super::Scale;
use crate::population::ModelKind;
use crate::sim::{MarketConfig, MarketReport, MarketSim};
use crate::strategy::Strategy;
use crate::table::Table;
use crate::workload::Workload;
use trustex_agents::profile::PopulationMix;
use trustex_netsim::pool::parallel_map;

fn base_cfg(scale: Scale) -> MarketConfig {
    MarketConfig {
        n_agents: scale.pick(40, 150),
        rounds: scale.pick(8, 40),
        sessions_per_round: scale.pick(40, 150),
        workload: Workload::FileSharing,
        ..MarketConfig::default()
    }
}

/// Runs every arm's simulation on the worker pool (thread count from the
/// process default, i.e. `repro --threads` / `TRUSTEX_THREADS`) and
/// returns the reports in arm order.
///
/// Each arm's config pins its own seed, so the result is independent of
/// both the pool size and the arms' completion order. Arms already
/// saturate the pool, so each simulator runs its sessions on one thread
/// — nested session-sharding would only oversubscribe the workers (and
/// thread count never changes a report anyway).
pub(crate) fn run_arms(arms: Vec<MarketConfig>) -> Vec<MarketReport> {
    parallel_map(0, arms, |_, cfg| {
        MarketSim::new(MarketConfig { threads: 1, ..cfg }).run()
    })
}

/// E4 — *Figure R4*: honest-population welfare per strategy as the
/// dishonest fraction grows. The paper's claim: trust-aware scheduling
/// captures (most of) the gains of unsafe trading in honest populations
/// while bounding losses in hostile ones; safe-only forgoes everything.
pub fn e4_strategies(scale: Scale) -> Table {
    let fractions: &[f64] = scale.pick(
        &[0.0, 0.3, 0.6][..],
        &[0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9][..],
    );
    let mut table = Table::new(
        "E4: honest welfare per session / honest losses, by strategy and dishonest fraction",
        &[
            "dishonest",
            "strategy",
            "completion",
            "honest_gain/sess",
            "honest_losses/sess",
            "no_trade",
        ],
    );
    let mut labels = Vec::new();
    let mut arms = Vec::new();
    for &frac in fractions {
        for strategy in Strategy::ALL {
            labels.push((frac, strategy));
            arms.push(MarketConfig {
                mix: PopulationMix::standard(frac, 0.25),
                strategy,
                seed: 42 + (frac * 100.0) as u64,
                ..base_cfg(scale)
            });
        }
    }
    for ((frac, strategy), r) in labels.into_iter().zip(run_arms(arms)) {
        let sessions = r.sessions.max(1) as f64;
        table.push_row(vec![
            frac.into(),
            strategy.label().into(),
            r.completion_rate().into(),
            (r.honest_gain / sessions).into(),
            (r.honest_losses / sessions).into(),
            r.no_trade_rate().into(),
        ]);
    }
    table
}

/// E5 — *Table R2*: trust-model accuracy (MAE, ranking, decision) as the
/// share of lying reporters among dishonest agents grows.
pub fn e5_trust_accuracy(scale: Scale) -> Table {
    let liar_shares: &[f64] = scale.pick(&[0.0, 0.5][..], &[0.0, 0.25, 0.5, 0.75][..]);
    let mut table = Table::new(
        "E5: trust model accuracy (30% dishonest population)",
        &["model", "liar_share", "mae", "rank_acc", "decision_acc"],
    );
    let mut labels = Vec::new();
    let mut arms = Vec::new();
    for model in ModelKind::ALL {
        for &liars in liar_shares {
            labels.push((model, liars));
            arms.push(MarketConfig {
                mix: PopulationMix::standard(0.3, liars),
                model,
                strategy: Strategy::UnsafeDeliverFirst, // maximal interaction data
                seed: 7,
                ..base_cfg(scale)
            });
        }
    }
    for ((model, liars), r) in labels.into_iter().zip(run_arms(arms)) {
        table.push_row(vec![
            model.label().into(),
            liars.into(),
            r.final_mae.into(),
            r.final_rank_accuracy.into(),
            r.final_decision_accuracy.into(),
        ]);
    }
    table
}

/// E8 — *Table R3*: the full marketplace matrix — workloads × strategies
/// at 30% dishonest agents, at the ROADMAP's paper scale (10³ agents,
/// 10² rounds per arm).
pub fn e8_marketplace(scale: Scale) -> Table {
    let mut table = Table::new(
        "E8: end-to-end marketplace (30% dishonest, 25% of them liars)",
        &[
            "workload",
            "strategy",
            "completion",
            "welfare/sess",
            "honest_losses/sess",
            "final_mae",
        ],
    );
    let mut labels = Vec::new();
    let mut arms = Vec::new();
    for workload in Workload::ALL {
        for strategy in Strategy::ALL {
            labels.push((workload, strategy));
            arms.push(MarketConfig {
                n_agents: scale.pick(40, 1000),
                rounds: scale.pick(8, 100),
                sessions_per_round: scale.pick(40, 1000),
                workload,
                strategy,
                seed: 11,
                ..base_cfg(scale)
            });
        }
    }
    for ((workload, strategy), r) in labels.into_iter().zip(run_arms(arms)) {
        let sessions = r.sessions.max(1) as f64;
        table.push_row(vec![
            workload.label().into(),
            strategy.label().into(),
            r.completion_rate().into(),
            (r.total_welfare / sessions).into(),
            (r.honest_losses / sessions).into(),
            r.final_mae.into(),
        ]);
    }
    table
}

/// E9 — *Figure R7*: trust-error trajectories: MAE by round for each
/// model under identical interaction streams.
pub fn e9_convergence(scale: Scale) -> Table {
    let mut table = Table::new(
        "E9: trust MAE by round (30% dishonest, no liars)",
        &["round", "beta", "complaints", "mean", "ewma"],
    );
    let arms: Vec<MarketConfig> = ModelKind::ALL
        .into_iter()
        .map(|model| MarketConfig {
            model,
            mix: PopulationMix::standard(0.3, 0.0),
            strategy: Strategy::UnsafeDeliverFirst,
            track_trust_per_round: true,
            seed: 13,
            ..base_cfg(scale)
        })
        .collect();
    let columns: Vec<Vec<f64>> = run_arms(arms)
        .into_iter()
        .map(|r| {
            r.per_round
                .iter()
                .map(|s| s.trust_mae.expect("tracking enabled"))
                .collect()
        })
        .collect();
    for (round, (((beta, complaints), mean), ewma)) in columns[0]
        .iter()
        .zip(&columns[1])
        .zip(&columns[2])
        .zip(&columns[3])
        .enumerate()
    {
        table.push_row(vec![
            round.into(),
            (*beta).into(),
            (*complaints).into(),
            (*mean).into(),
            (*ewma).into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    #[test]
    fn e4_safe_only_never_gains_or_loses() {
        let t = e4_strategies(Scale::Smoke);
        for row in t.rows() {
            if matches!(&row[1], Cell::Text(s) if s == "safe-only") {
                assert_eq!(num(&row[3]), 0.0, "{row:?}");
                assert_eq!(num(&row[4]), 0.0, "{row:?}");
            }
        }
    }

    #[test]
    fn e4_trust_aware_beats_naive_losses_in_hostile_population() {
        let t = e4_strategies(Scale::Smoke);
        // At the largest dishonest fraction, trust-aware honest losses
        // per session are below deliver-first's.
        let rows: Vec<_> = t.rows().iter().collect();
        let hostile: Vec<_> = rows.iter().filter(|r| num(&r[0]) >= 0.59).collect();
        let ta = hostile
            .iter()
            .find(|r| matches!(&r[1], Cell::Text(s) if s == "trust-aware"))
            .expect("row present");
        let df = hostile
            .iter()
            .find(|r| matches!(&r[1], Cell::Text(s) if s == "deliver-first"))
            .expect("row present");
        assert!(
            num(&ta[4]) < num(&df[4]),
            "trust-aware losses {} must undercut deliver-first {}",
            num(&ta[4]),
            num(&df[4])
        );
    }

    #[test]
    fn e5_beta_beats_mean_under_liars() {
        let t = e5_trust_accuracy(Scale::Smoke);
        let find = |model: &str, liars: f64| {
            t.rows()
                .iter()
                .find(|r| {
                    matches!(&r[0], Cell::Text(s) if s == model)
                        && (num(&r[1]) - liars).abs() < 1e-9
                })
                .map(|r| num(&r[2]))
                .expect("row present")
        };
        let beta = find("beta", 0.5);
        let mean = find("mean", 0.5);
        // The gullible mean absorbs three times the data (full-weight
        // gossip), so at smoke scale it can lead on MAE; the beta model
        // must stay in the same band rather than collapse.
        assert!(
            beta <= mean + 0.2,
            "beta MAE {beta} collapsed vs gullible mean {mean} under liars"
        );
    }

    #[test]
    fn e9_mae_trajectories_decrease() {
        let t = e9_convergence(Scale::Smoke);
        let first = t.rows().first().unwrap();
        let last = t.rows().last().unwrap();
        for col in 1..=4 {
            assert!(
                num(&last[col]) <= num(&first[col]) + 0.02,
                "column {col} should not grow: {} -> {}",
                num(&first[col]),
                num(&last[col])
            );
        }
    }

    #[test]
    fn e8_has_full_matrix() {
        let t = e8_marketplace(Scale::Smoke);
        assert_eq!(t.rows().len(), 12, "3 workloads × 4 strategies");
    }
}
