//! The committed FORMAT_VERSION=1 fixture corpus.
//!
//! `tests/fixtures/v1/` holds tiny snapshot blobs — one per trust
//! model, one P-Grid overlay, one TXEL evidence log — written by
//! today's encoders and committed to the repository. This test decodes
//! every committed blob and re-encodes the same logical state, pinning
//! the wire format: any accidental change to the encoders, the section
//! framing or the checksums breaks this test, not a user's saved
//! snapshot. Bump `FORMAT_VERSION` and regenerate deliberately instead.
//!
//! Regenerate (after an *intentional* format change) with:
//!
//! ```sh
//! TRUSTEX_REGEN_FIXTURES=1 cargo test -p trustex-market --test format_v1_corpus
//! ```

use std::path::PathBuf;
use trustex_netsim::rng::SimRng;
use trustex_persist::snapshot::{from_bytes, to_bytes, Persistable};
use trustex_persist::FORMAT_VERSION;
use trustex_reputation::pgrid::{PGrid, PGridConfig};
use trustex_reputation::record::{key_for_peer, Complaint};
use trustex_trust::baselines::{EwmaTrust, MeanTrust};
use trustex_trust::beta::BetaTrust;
use trustex_trust::complaints::ComplaintTrust;
use trustex_trust::engine::TrustEvent;
use trustex_trust::evidence_log::{EvidenceLog, EvidenceRecord};
use trustex_trust::model::{Conduct, PeerId, TrustModel, WitnessReport};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("v1")
}

/// Feeds a deterministic little history into any trust model.
fn feed<M: TrustModel>(mut model: M) -> M {
    for i in 0..6u64 {
        let subject = PeerId((i % 3) as u32);
        model.record_direct(subject, Conduct::from_honest(i % 4 != 0), i);
        model.record_witness(WitnessReport {
            witness: PeerId(3 + (i % 2) as u32),
            subject,
            conduct: Conduct::from_honest(i % 5 != 0),
            round: i,
        });
    }
    model
}

/// The corpus grid: 16 peers, replication 2, three seeded complaints.
fn corpus_grid() -> PGrid {
    let mut rng = SimRng::new(0xF1C5);
    let cfg = PGridConfig::for_population(16, 2);
    let mut grid = PGrid::build(16, cfg, &mut rng);
    let mut net = trustex_netsim::net::Network::new(trustex_netsim::net::NetConfig::default());
    for i in 0..3usize {
        let about = PeerId((i * 5 % 16) as u32);
        grid.insert(
            i,
            key_for_peer(about, cfg.key_bits),
            Complaint {
                by: PeerId(((i + 1) % 16) as u32),
                about,
                round: i as u64,
            },
            None,
            &mut net,
            &mut rng,
        );
    }
    grid
}

/// The corpus evidence log: four frames, one a deliberate duplicate.
fn corpus_log() -> EvidenceLog {
    let mut log = EvidenceLog::new();
    let records = [
        EvidenceRecord {
            issuer: PeerId(1),
            seq: 0,
            event: TrustEvent::direct(PeerId(2), Conduct::Honest, 0),
        },
        EvidenceRecord {
            issuer: PeerId(1),
            seq: 1,
            event: TrustEvent::Witness(WitnessReport {
                witness: PeerId(3),
                subject: PeerId(2),
                conduct: Conduct::Dishonest,
                round: 1,
            }),
        },
        EvidenceRecord {
            issuer: PeerId(2),
            seq: 0,
            event: TrustEvent::direct(PeerId(1), Conduct::Dishonest, 2),
        },
        // Replayed frame: same (issuer, seq) as the first — the replay
        // side must fold it away.
        EvidenceRecord {
            issuer: PeerId(1),
            seq: 0,
            event: TrustEvent::direct(PeerId(2), Conduct::Honest, 0),
        },
    ];
    for r in &records {
        log.append(r);
    }
    log
}

/// Checks one fixture: the committed bytes must decode, and re-encoding
/// today's state must reproduce them byte-for-byte. With
/// `TRUSTEX_REGEN_FIXTURES=1` the fixture is (re)written instead.
fn check_fixture(name: &str, current: Vec<u8>, decode_check: impl Fn(&[u8])) {
    let path = fixture_dir().join(name);
    if std::env::var_os("TRUSTEX_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(fixture_dir()).expect("create fixture dir");
        std::fs::write(&path, &current).expect("write fixture");
        return;
    }
    let committed = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); regenerate deliberately"));
    decode_check(&committed);
    assert_eq!(
        current, committed,
        "{name}: re-encoding today's state no longer matches the committed \
         FORMAT_VERSION={FORMAT_VERSION} blob — the wire format drifted"
    );
}

/// Round-trip sanity shared by the model fixtures: decoding the
/// committed blob yields a model whose predictions match a freshly fed
/// one on every subject in the corpus history.
fn check_model_fixture<M: Persistable + TrustModel>(name: &str, fresh: impl Fn() -> M) {
    check_fixture(name, to_bytes(&feed(fresh())), |committed| {
        let decoded: M = from_bytes(committed).expect("committed blob must decode");
        let reference = feed(fresh());
        for subject in 0..6u32 {
            assert_eq!(
                decoded.predict(PeerId(subject)),
                reference.predict(PeerId(subject)),
                "{name}: decoded predictions diverged for subject {subject}"
            );
        }
    });
}

#[test]
fn beta_fixture_round_trips() {
    check_model_fixture("beta.bin", BetaTrust::new);
}

#[test]
fn complaints_fixture_round_trips() {
    check_model_fixture("complaints.bin", ComplaintTrust::new);
}

#[test]
fn mean_fixture_round_trips() {
    check_model_fixture("mean.bin", MeanTrust::new);
}

#[test]
fn ewma_fixture_round_trips() {
    check_model_fixture("ewma.bin", || EwmaTrust::new(0.2));
}

#[test]
fn pgrid_fixture_round_trips() {
    check_fixture("pgrid.bin", to_bytes(&corpus_grid()), |committed| {
        let decoded: PGrid = from_bytes(committed).expect("committed grid must decode");
        let reference = corpus_grid();
        assert_eq!(decoded.len(), reference.len());
        decoded.check_invariants();
        for peer in 0..decoded.len() {
            assert_eq!(decoded.path(peer), reference.path(peer), "path of {peer}");
            assert_eq!(
                decoded.stored(peer).collect::<Vec<_>>(),
                reference.stored(peer).collect::<Vec<_>>(),
                "store of {peer}"
            );
        }
    });
}

#[test]
fn evidence_log_fixture_round_trips() {
    check_fixture("evidence.txel", corpus_log().into_bytes(), |committed| {
        let replay = EvidenceLog::replay(committed).expect("committed log must replay");
        assert_eq!(replay.records.len(), 3, "three unique records");
        assert_eq!(replay.duplicates, 1, "one folded duplicate frame");
        let fresh = EvidenceLog::replay(corpus_log().as_bytes()).expect("fresh log replays");
        assert_eq!(replay.records, fresh.records);
    });
}

/// Every fixture in the corpus directory is covered by a test above —
/// a new blob dropped into `fixtures/v1/` without a decoder test (or a
/// stale one left behind after a rename) fails here.
#[test]
fn corpus_has_no_unaccounted_fixtures() {
    if std::env::var_os("TRUSTEX_REGEN_FIXTURES").is_some() {
        // Regen mode writes the fixtures from parallel tests; listing
        // the directory mid-write is meaningless.
        return;
    }
    let known = [
        "beta.bin",
        "complaints.bin",
        "mean.bin",
        "ewma.bin",
        "pgrid.bin",
        "evidence.txel",
    ];
    let mut found: Vec<String> = std::fs::read_dir(fixture_dir())
        .expect("fixture dir exists")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    found.sort();
    let mut expected: Vec<String> = known.iter().map(|s| s.to_string()).collect();
    expected.sort();
    assert_eq!(
        found, expected,
        "fixture corpus drifted from the test suite"
    );
}
