//! Message-level network model: latency distributions, loss, accounting.
//!
//! The P-Grid reputation storage (crate `trustex-reputation`) routes
//! queries through this model so that the experiment suite can report the
//! *message cost* of reputation lookups — the metric the underlying
//! CIKM 2001 system was evaluated on — without opening real sockets.

use crate::fault::{FaultFate, FaultPlane};
use crate::rng::SimRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a simulated node.
///
/// A plain newtype over `u32`; the reputation layer maps its own peer
/// identifiers onto these.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// One-way message latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Latency {
    /// Every message takes exactly this long (microseconds).
    Constant(u64),
    /// Uniform in `[lo, hi)` microseconds.
    Uniform {
        /// Inclusive lower bound in microseconds.
        lo: u64,
        /// Exclusive upper bound in microseconds.
        hi: u64,
    },
    /// Mostly `base`, but with probability `spike_prob` a spike of
    /// `base * spike_factor` — a crude model of congested links.
    Spiky {
        /// Baseline latency in microseconds.
        base: u64,
        /// Probability of a spike, in `[0, 1]`.
        spike_prob: f64,
        /// Multiplier applied to `base` during a spike.
        spike_factor: u64,
    },
}

impl Default for Latency {
    /// A LAN-ish default: uniform 200µs–2ms.
    fn default() -> Self {
        Latency::Uniform { lo: 200, hi: 2_000 }
    }
}

impl Latency {
    /// Samples a one-way delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimTime {
        let us = match *self {
            Latency::Constant(us) => us,
            Latency::Uniform { lo, hi } => {
                if lo + 1 >= hi {
                    lo
                } else {
                    rng.range_u64(lo, hi)
                }
            }
            Latency::Spiky {
                base,
                spike_prob,
                spike_factor,
            } => {
                if rng.chance(spike_prob) {
                    base.saturating_mul(spike_factor)
                } else {
                    base
                }
            }
        };
        SimTime::from_micros(us)
    }
}

/// Static configuration of a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// One-way latency model.
    pub latency: Latency,
    /// Independent probability that any message is silently dropped.
    pub drop_prob: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: Latency::default(),
            drop_prob: 0.0,
        }
    }
}

/// Outcome of attempting to send one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Message arrives after the contained one-way delay.
    Delivered(SimTime),
    /// Message was lost.
    Dropped,
}

/// A message-accounting network model.
///
/// `Network` does not own an event queue; callers sample deliveries and
/// schedule them however they like (the P-Grid layer routes recursively
/// and simply sums delays and hops). What `Network` *does* own is the
/// bookkeeping: messages sent / dropped per kind, so experiments can
/// report exact message complexities.
///
/// # Examples
///
/// ```
/// use trustex_netsim::net::{Network, NetConfig, Latency, Delivery};
/// use trustex_netsim::rng::SimRng;
///
/// let mut rng = SimRng::new(1);
/// let mut net = Network::new(NetConfig { latency: Latency::Constant(500), drop_prob: 0.0 });
/// match net.send("query", &mut rng) {
///     Delivery::Delivered(d) => assert_eq!(d.as_micros(), 500),
///     Delivery::Dropped => unreachable!(),
/// }
/// assert_eq!(net.sent("query"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    cfg: NetConfig,
    plane: Option<FaultPlane>,
    /// Monotone per-network message sequence; together with the link
    /// endpoints it keys every fault-plane decision.
    next_seq: u64,
    sent: BTreeMap<&'static str, u64>,
    dropped: BTreeMap<&'static str, u64>,
}

impl Network {
    /// Creates a network with the given configuration.
    pub fn new(cfg: NetConfig) -> Self {
        Network {
            cfg,
            plane: None,
            next_seq: 0,
            sent: BTreeMap::new(),
            dropped: BTreeMap::new(),
        }
    }

    /// Creates a network whose link-level sends ([`Network::send_link`])
    /// pass through a fault plane.
    pub fn with_fault_plane(cfg: NetConfig, plane: FaultPlane) -> Self {
        let mut net = Network::new(cfg);
        net.plane = Some(plane);
        net
    }

    /// The fault plane, if one is installed.
    pub fn fault_plane(&self) -> Option<&FaultPlane> {
        self.plane.as_ref()
    }

    /// Messages assigned a fault-plane sequence number so far.
    pub fn link_messages(&self) -> u64 {
        self.next_seq
    }

    /// The active configuration.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }

    /// Attempts to send a message of the given kind, returning its fate.
    ///
    /// Every call counts as one sent message of `kind`; drops are counted
    /// separately.
    pub fn send(&mut self, kind: &'static str, rng: &mut SimRng) -> Delivery {
        *self.sent.entry(kind).or_insert(0) += 1;
        if rng.chance(self.cfg.drop_prob) {
            *self.dropped.entry(kind).or_insert(0) += 1;
            Delivery::Dropped
        } else {
            Delivery::Delivered(self.cfg.latency.sample(rng))
        }
    }

    /// Attempts to send a message of `kind` on the link `src → dst` at
    /// virtual time `at`, consulting the fault plane if one is installed.
    ///
    /// Without a plane this is exactly [`Network::send`] — same RNG
    /// draws, same counters — so routing code can migrate to the link
    /// API without perturbing existing replays. With a plane, each call
    /// consumes one monotone sequence number and the plane's pure
    /// `(seed, src, dst, seq)` decision is layered on top of the base
    /// `drop_prob`/latency model:
    ///
    /// * `Lost`/`Blocked` count as a drop of `kind`;
    /// * injected duplicates count as extra sent messages of `kind`
    ///   (they are real copies on the wire);
    /// * injected extra delay is added to the sampled base latency.
    pub fn send_link(
        &mut self,
        kind: &'static str,
        src: NodeId,
        dst: NodeId,
        at: SimTime,
        rng: &mut SimRng,
    ) -> Delivery {
        let plane = match self.plane {
            None => return self.send(kind, rng),
            Some(plane) => plane,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        *self.sent.entry(kind).or_insert(0) += 1;
        if rng.chance(self.cfg.drop_prob) {
            *self.dropped.entry(kind).or_insert(0) += 1;
            return Delivery::Dropped;
        }
        let base = self.cfg.latency.sample(rng);
        match plane.decide(src.0, dst.0, seq, at) {
            FaultFate::Lost | FaultFate::Blocked => {
                *self.dropped.entry(kind).or_insert(0) += 1;
                Delivery::Dropped
            }
            FaultFate::Deliver {
                extra_delay,
                duplicates,
            } => {
                if duplicates > 0 {
                    *self.sent.entry(kind).or_insert(0) += u64::from(duplicates);
                }
                Delivery::Delivered(base + extra_delay)
            }
        }
    }

    /// Messages sent of a given kind (including later-dropped ones).
    pub fn sent(&self, kind: &str) -> u64 {
        self.sent.get(kind).copied().unwrap_or(0)
    }

    /// Messages dropped of a given kind.
    pub fn dropped(&self, kind: &str) -> u64 {
        self.dropped.get(kind).copied().unwrap_or(0)
    }

    /// Total messages sent across all kinds.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }

    /// Total messages dropped across all kinds.
    pub fn total_dropped(&self) -> u64 {
        self.dropped.values().sum()
    }

    /// Iterates over `(kind, sent, dropped)` triples in kind order.
    pub fn iter_kinds(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        self.sent.iter().map(move |(k, s)| {
            let d = self.dropped.get(k).copied().unwrap_or(0);
            (*k, *s, d)
        })
    }

    /// Resets all counters (configuration is kept).
    pub fn reset_counters(&mut self) {
        self.sent.clear();
        self.dropped.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency() {
        let mut rng = SimRng::new(1);
        let lat = Latency::Constant(750);
        for _ in 0..10 {
            assert_eq!(lat.sample(&mut rng).as_micros(), 750);
        }
    }

    #[test]
    fn uniform_latency_in_bounds() {
        let mut rng = SimRng::new(2);
        let lat = Latency::Uniform { lo: 100, hi: 200 };
        for _ in 0..1000 {
            let d = lat.sample(&mut rng).as_micros();
            assert!((100..200).contains(&d), "{d}");
        }
    }

    #[test]
    fn uniform_degenerate_band() {
        let mut rng = SimRng::new(3);
        let lat = Latency::Uniform { lo: 100, hi: 100 };
        assert_eq!(lat.sample(&mut rng).as_micros(), 100);
    }

    #[test]
    fn spiky_latency_spikes() {
        let mut rng = SimRng::new(4);
        let lat = Latency::Spiky {
            base: 100,
            spike_prob: 0.5,
            spike_factor: 10,
        };
        let mut base_seen = false;
        let mut spike_seen = false;
        for _ in 0..200 {
            match lat.sample(&mut rng).as_micros() {
                100 => base_seen = true,
                1_000 => spike_seen = true,
                other => panic!("unexpected latency {other}"),
            }
        }
        assert!(base_seen && spike_seen);
    }

    #[test]
    fn send_counts_and_drops() {
        let mut rng = SimRng::new(5);
        let mut net = Network::new(NetConfig {
            latency: Latency::Constant(10),
            drop_prob: 0.5,
        });
        let mut delivered = 0;
        for _ in 0..1000 {
            if let Delivery::Delivered(_) = net.send("q", &mut rng) {
                delivered += 1;
            }
        }
        assert_eq!(net.sent("q"), 1000);
        assert_eq!(net.dropped("q") + delivered, 1000);
        let frac = net.dropped("q") as f64 / 1000.0;
        assert!((frac - 0.5).abs() < 0.06, "drop fraction {frac}");
    }

    #[test]
    fn kinds_are_separate() {
        let mut rng = SimRng::new(6);
        let mut net = Network::new(NetConfig::default());
        net.send("a", &mut rng);
        net.send("a", &mut rng);
        net.send("b", &mut rng);
        assert_eq!(net.sent("a"), 2);
        assert_eq!(net.sent("b"), 1);
        assert_eq!(net.sent("c"), 0);
        assert_eq!(net.total_sent(), 3);
        let kinds: Vec<_> = net.iter_kinds().collect();
        assert_eq!(kinds, vec![("a", 2, 0), ("b", 1, 0)]);
    }

    #[test]
    fn reset_keeps_config() {
        let mut rng = SimRng::new(7);
        let cfg = NetConfig {
            latency: Latency::Constant(1),
            drop_prob: 0.25,
        };
        let mut net = Network::new(cfg);
        net.send("x", &mut rng);
        net.reset_counters();
        assert_eq!(net.total_sent(), 0);
        assert_eq!(net.config(), cfg);
    }

    #[test]
    fn send_link_without_plane_matches_send_exactly() {
        let cfg = NetConfig {
            latency: Latency::Uniform { lo: 100, hi: 900 },
            drop_prob: 0.2,
        };
        let mut a = Network::new(cfg);
        let mut b = Network::new(cfg);
        let mut rng_a = SimRng::new(42);
        let mut rng_b = SimRng::new(42);
        for i in 0..500u32 {
            let da = a.send("q", &mut rng_a);
            let db = b.send_link("q", NodeId(i), NodeId(i + 1), SimTime::ZERO, &mut rng_b);
            assert_eq!(da, db);
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
        assert_eq!(a.sent("q"), b.sent("q"));
        assert_eq!(a.dropped("q"), b.dropped("q"));
        assert_eq!(b.link_messages(), 0, "no plane, no sequence numbers");
    }

    #[test]
    fn zero_plane_send_link_matches_send_exactly() {
        let cfg = NetConfig {
            latency: Latency::Uniform { lo: 100, hi: 900 },
            drop_prob: 0.1,
        };
        let mut plain = Network::new(cfg);
        let mut chaos = Network::with_fault_plane(cfg, FaultPlane::transparent(7));
        let mut rng_a = SimRng::new(9);
        let mut rng_b = SimRng::new(9);
        for i in 0..500u32 {
            let da = plain.send("q", &mut rng_a);
            let db = chaos.send_link("q", NodeId(i), NodeId(0), SimTime::ZERO, &mut rng_b);
            assert_eq!(da, db);
        }
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
        assert_eq!(plain.sent("q"), chaos.sent("q"));
        assert_eq!(plain.dropped("q"), chaos.dropped("q"));
    }

    /// Satellite check: with a faulty plane installed, the per-kind
    /// sent/dropped counters must equal the arithmetic of the injected
    /// faults exactly — replayed here by re-deciding every message fate
    /// independently of the `Network` under test.
    #[test]
    fn per_kind_accounting_equals_injected_fault_arithmetic() {
        use crate::fault::FaultConfig;
        let plane = FaultPlane::new(
            0xACC7,
            FaultConfig {
                loss: 0.3,
                duplicate: 0.25,
                extra_delay_max_us: 400,
                ..FaultConfig::default()
            },
        );
        let cfg = NetConfig {
            latency: Latency::Constant(1_000),
            drop_prob: 0.0,
        };
        let mut net = Network::with_fault_plane(cfg, plane);
        let mut rng = SimRng::new(31);
        let kinds = ["route", "replica_query"];
        let mut expected_sent = [0u64; 2];
        let mut expected_dropped = [0u64; 2];
        for i in 0..2000u64 {
            let k = (i % 2) as usize;
            let (src, dst) = (NodeId((i % 17) as u32), NodeId((i % 23) as u32));
            // Independent replay of the plane's pure decision for the
            // sequence number the network is about to assign.
            match plane.decide(src.0, dst.0, i, SimTime::ZERO) {
                FaultFate::Lost | FaultFate::Blocked => {
                    expected_sent[k] += 1;
                    expected_dropped[k] += 1;
                }
                FaultFate::Deliver {
                    extra_delay,
                    duplicates,
                } => {
                    expected_sent[k] += 1 + u64::from(duplicates);
                    let got = net.send_link(kinds[k], src, dst, SimTime::ZERO, &mut rng);
                    assert_eq!(
                        got,
                        Delivery::Delivered(SimTime::from_micros(1_000) + extra_delay)
                    );
                    continue;
                }
            }
            assert_eq!(
                net.send_link(kinds[k], src, dst, SimTime::ZERO, &mut rng),
                Delivery::Dropped
            );
        }
        assert_eq!(net.link_messages(), 2000);
        for (k, kind) in kinds.iter().enumerate() {
            assert_eq!(net.sent(kind), expected_sent[k], "sent[{kind}]");
            assert_eq!(net.dropped(kind), expected_dropped[k], "dropped[{kind}]");
        }
        assert_eq!(net.total_sent(), expected_sent.iter().sum::<u64>());
        assert_eq!(net.total_dropped(), expected_dropped.iter().sum::<u64>());
    }

    #[test]
    fn node_id_display_and_from() {
        let n: NodeId = 7u32.into();
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(n, NodeId(7));
    }
}
