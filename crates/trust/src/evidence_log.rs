//! The durable evidence log: an append-only sequence of checksummed
//! [`TrustEvent`] frames.
//!
//! Snapshots capture a model at one instant; the log captures the
//! *stream* — every event a trust service accepted, stamped with the
//! issuing peer and the issuer's sequence number. A crashed service
//! restores the last snapshot and replays the log tail; a service that
//! receives gossip twice (retries, overlapping relays) relies on the
//! `(issuer, seq)` dedup of [`EvidenceLog::replay`] to fold each record
//! exactly once.
//!
//! ## Format
//!
//! ```text
//! log   := magic "TXEL" version:u16 frame*
//! frame := payload_len:u32 payload[payload_len] crc32c:u32
//! payload := issuer:u32 seq:u64 event
//! ```
//!
//! Each frame carries its own CRC-32C, so a crash-truncated tail or a
//! bit-flipped frame surfaces as a typed [`PersistError`] on replay —
//! never a panic, never a silently-wrong model.
//!
//! ```
//! use trustex_trust::evidence_log::{EvidenceLog, EvidenceRecord};
//! use trustex_trust::prelude::*;
//!
//! let mut log = EvidenceLog::new();
//! let record = EvidenceRecord {
//!     issuer: PeerId(7),
//!     seq: 0,
//!     event: TrustEvent::direct(PeerId(3), Conduct::Dishonest, 1),
//! };
//! log.append(&record);
//! log.append(&record); // a gossip duplicate
//! let replay = EvidenceLog::replay(log.as_bytes()).unwrap();
//! assert_eq!(replay.records.len(), 1);
//! assert_eq!(replay.duplicates, 1);
//! ```

use crate::engine::TrustEvent;
use crate::model::PeerId;
use std::collections::HashSet;
use trustex_persist::codec::{ByteReader, ByteWriter};
use trustex_persist::{crc32c, PersistError, FORMAT_VERSION};

/// Magic identifying an evidence log.
pub const LOG_MAGIC: [u8; 4] = *b"TXEL";

/// One logged event: who issued it, the issuer's sequence number (the
/// dedup key together with the issuer) and the event itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvidenceRecord {
    /// The peer that issued (submitted) the event.
    pub issuer: PeerId,
    /// The issuer's monotone sequence number for this event.
    pub seq: u64,
    /// The event payload.
    pub event: TrustEvent,
}

/// The result of replaying a log: the surviving records in append order
/// and how many duplicate frames were folded away.
#[derive(Debug, Clone)]
pub struct LogReplay {
    /// Deduplicated records, first occurrence wins, in log order.
    pub records: Vec<EvidenceRecord>,
    /// Frames dropped because their `(issuer, seq)` was already seen.
    pub duplicates: usize,
}

/// An append-only, checksummed event log (see the module docs for the
/// wire format).
#[derive(Debug, Clone)]
pub struct EvidenceLog {
    buf: Vec<u8>,
    appended: usize,
}

impl Default for EvidenceLog {
    fn default() -> Self {
        Self::new()
    }
}

impl EvidenceLog {
    /// Starts an empty log (header only).
    pub fn new() -> EvidenceLog {
        let mut w = ByteWriter::new();
        w.put_bytes(&LOG_MAGIC);
        w.put_u16(FORMAT_VERSION);
        EvidenceLog {
            buf: w.into_bytes(),
            appended: 0,
        }
    }

    /// Re-opens an existing log for further appends, verifying every
    /// frame first — appending after a truncated tail would bury the
    /// corruption.
    pub fn open(bytes: Vec<u8>) -> Result<EvidenceLog, PersistError> {
        let replay = EvidenceLog::replay(&bytes)?;
        Ok(EvidenceLog {
            buf: bytes,
            appended: replay.records.len() + replay.duplicates,
        })
    }

    /// Appends one record as a checksummed frame.
    pub fn append(&mut self, record: &EvidenceRecord) {
        let mut payload = ByteWriter::new();
        payload.put_u32(record.issuer.0);
        payload.put_u64(record.seq);
        record.event.encode_into(&mut payload);
        let payload = payload.into_bytes();
        let mut w = ByteWriter::new();
        w.put_u32(payload.len() as u32);
        w.put_bytes(&payload);
        w.put_u32(crc32c(&payload));
        self.buf.extend_from_slice(w.as_bytes());
        self.appended += 1;
    }

    /// Frames appended so far (including any the log was opened with).
    pub fn frames(&self) -> usize {
        self.appended
    }

    /// The serialized log.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the log, returning the serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Verifies and replays a serialized log: every frame's CRC is
    /// checked, then records are deduplicated on `(issuer, seq)` with
    /// the first occurrence winning. Any truncation or corruption —
    /// including a partial final frame from a crash mid-append — is a
    /// typed error.
    pub fn replay(bytes: &[u8]) -> Result<LogReplay, PersistError> {
        let mut r = ByteReader::new(bytes);
        let magic = r.take_tag("log magic")?;
        if magic != LOG_MAGIC {
            return Err(PersistError::BadMagic {
                expected: LOG_MAGIC,
                found: magic,
            });
        }
        let version = r.take_u16()?;
        if version != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let mut records = Vec::new();
        let mut seen: HashSet<(u32, u64)> = HashSet::new();
        let mut duplicates = 0usize;
        while !r.is_exhausted() {
            let len = r.take_u32()? as usize;
            if len + 4 > r.remaining() {
                return Err(PersistError::Truncated {
                    context: "evidence-log frame",
                });
            }
            let payload = r.take_bytes(len, "evidence-log payload")?;
            let stored_crc = r.take_u32()?;
            if crc32c(payload) != stored_crc {
                return Err(PersistError::CrcMismatch { section: LOG_MAGIC });
            }
            let mut pr = ByteReader::new(payload);
            let issuer = pr.take_u32()?;
            let seq = pr.take_u64()?;
            let event = TrustEvent::decode_from(&mut pr)?;
            pr.finish()?;
            if seen.insert((issuer, seq)) {
                records.push(EvidenceRecord {
                    issuer: PeerId(issuer),
                    seq,
                    event,
                });
            } else {
                duplicates += 1;
            }
        }
        Ok(LogReplay {
            records,
            duplicates,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Conduct, WitnessReport};

    fn sample_records() -> Vec<EvidenceRecord> {
        (0..10)
            .map(|i| EvidenceRecord {
                issuer: PeerId(i % 3),
                seq: (i / 3) as u64,
                event: if i % 2 == 0 {
                    TrustEvent::direct(PeerId(i + 1), Conduct::from_honest(i % 4 == 0), i as u64)
                } else {
                    TrustEvent::Witness(WitnessReport {
                        witness: PeerId(i),
                        subject: PeerId(i + 2),
                        conduct: Conduct::Dishonest,
                        round: i as u64,
                    })
                },
            })
            .collect()
    }

    #[test]
    fn append_replay_round_trip() {
        let records = sample_records();
        let mut log = EvidenceLog::new();
        for rec in &records {
            log.append(rec);
        }
        assert_eq!(log.frames(), records.len());
        let replay = EvidenceLog::replay(log.as_bytes()).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.duplicates, 0);
    }

    #[test]
    fn duplicates_fold_first_wins() {
        let mut log = EvidenceLog::new();
        let first = EvidenceRecord {
            issuer: PeerId(1),
            seq: 5,
            event: TrustEvent::direct(PeerId(2), Conduct::Honest, 0),
        };
        // Same (issuer, seq), different payload: a retry that raced a
        // mutation. First occurrence wins.
        let retry = EvidenceRecord {
            event: TrustEvent::direct(PeerId(2), Conduct::Dishonest, 0),
            ..first
        };
        let other_issuer = EvidenceRecord {
            issuer: PeerId(2),
            ..first
        };
        log.append(&first);
        log.append(&retry);
        log.append(&other_issuer);
        let replay = EvidenceLog::replay(log.as_bytes()).unwrap();
        assert_eq!(replay.records, vec![first, other_issuer]);
        assert_eq!(replay.duplicates, 1);
    }

    #[test]
    fn truncated_tail_is_detected_at_every_cut() {
        let mut log = EvidenceLog::new();
        for rec in &sample_records() {
            log.append(rec);
        }
        let bytes = log.as_bytes();
        let header = 6; // magic + version
        for cut in header..bytes.len() {
            // A cut can land exactly on a frame boundary — then the log
            // simply has fewer complete frames and replays cleanly; any
            // other cut must be a typed error.
            match EvidenceLog::replay(&bytes[..cut]) {
                Ok(replay) => assert!(
                    replay.records.len() < 10,
                    "cut at {cut} cannot preserve all frames"
                ),
                Err(
                    PersistError::Truncated { .. }
                    | PersistError::CrcMismatch { .. }
                    | PersistError::Malformed { .. },
                ) => {}
                Err(other) => panic!("unexpected error class at cut {cut}: {other:?}"),
            }
        }
        // Cutting into the header is always an error.
        for cut in 0..header {
            assert!(EvidenceLog::replay(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn bit_flips_are_detected() {
        let mut log = EvidenceLog::new();
        for rec in &sample_records() {
            log.append(rec);
        }
        let bytes = log.as_bytes().to_vec();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            assert!(
                EvidenceLog::replay(&corrupt).is_err(),
                "flip at byte {i} must be detected"
            );
        }
    }

    #[test]
    fn open_validates_before_appending() {
        let mut log = EvidenceLog::new();
        let records = sample_records();
        for rec in &records[..5] {
            log.append(rec);
        }
        let mut reopened = EvidenceLog::open(log.into_bytes()).unwrap();
        assert_eq!(reopened.frames(), 5);
        for rec in &records[5..] {
            reopened.append(rec);
        }
        let replay = EvidenceLog::replay(reopened.as_bytes()).unwrap();
        assert_eq!(replay.records, records);
        // A corrupt log refuses to open.
        let mut bad = reopened.into_bytes();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert!(EvidenceLog::open(bad).is_err());
    }

    #[test]
    fn wrong_magic_and_version() {
        let log = EvidenceLog::new();
        let mut bytes = log.as_bytes().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            EvidenceLog::replay(&bytes),
            Err(PersistError::BadMagic { .. })
        ));
        let mut bytes = log.as_bytes().to_vec();
        bytes[4] = bytes[4].wrapping_add(1);
        assert!(matches!(
            EvidenceLog::replay(&bytes),
            Err(PersistError::UnsupportedVersion { .. })
        ));
    }
}
