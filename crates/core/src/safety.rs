//! Safety conditions: the paper's `Pmin`/`Pmax` window and its
//! trust-aware relaxation.
//!
//! §2 of the paper states the existence conditions for a safe exchange as
//! "the current utilities of the two partners lie between two bounds,
//! `Pmin` and `Pmax`, that are functions of `Vs(x)`, `Vc(x)` and `P`".
//! Concretely, after every atomic action the outstanding payment
//! `R = P − m` must satisfy
//!
//! ```text
//!   Vs(G) − Vs(D)  ≤  R  ≤  Vc(G) − Vc(D)
//!   └── Pmin ──┘          └── Pmax ──┘
//! ```
//!
//! * the *upper* bound caps the **consumer's temptation** (`T_c ≤ 0`):
//!   the consumer must never have received so much value that defecting
//!   beats completing;
//! * the *lower* bound caps the **supplier's temptation** (`T_s ≤ 0`).
//!
//! §3's trust-aware extension widens the window by two exposure bounds:
//! [`SafetyMargins`] carries `ε_s` (how much consumer temptation the
//! *supplier* tolerates, based on its trust in the consumer) and `ε_c`
//! (how much supplier temptation the *consumer* tolerates):
//!
//! ```text
//!   Vs(G) − Vs(D) − ε_c  ≤  R  ≤  Vc(G) − Vc(D) + ε_s
//! ```
//!
//! With `ε_s = ε_c = 0` this degenerates to the fully safe window.

use crate::money::Money;
use crate::state::{Role, StateView};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The exposure bounds each party accepts, derived from trust.
///
/// `eps_supplier` (`ε_s`) is the amount of consumer temptation — i.e.
/// consumer indebtedness — the **supplier** accepts; it should grow with
/// the supplier's trust in the consumer. `eps_consumer` (`ε_c`) is the
/// symmetric bound accepted by the consumer.
///
/// # Examples
///
/// ```
/// use trustex_core::money::Money;
/// use trustex_core::safety::SafetyMargins;
///
/// let strict = SafetyMargins::fully_safe();
/// assert!(strict.total().is_zero());
/// let relaxed = SafetyMargins::new(Money::from_units(2), Money::from_units(1)).unwrap();
/// assert_eq!(relaxed.total(), Money::from_units(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SafetyMargins {
    eps_supplier: Money,
    eps_consumer: Money,
}

/// Error constructing [`SafetyMargins`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NegativeMarginError {
    /// The offending bound.
    pub which: Role,
    /// The negative value supplied.
    pub value: Money,
}

impl fmt::Display for NegativeMarginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "exposure bound accepted by the {} must be non-negative, got {}",
            self.which, self.value
        )
    }
}

impl std::error::Error for NegativeMarginError {}

impl SafetyMargins {
    /// The fully safe margins: `ε_s = ε_c = 0` (no tolerated temptation).
    pub const fn fully_safe() -> SafetyMargins {
        SafetyMargins {
            eps_supplier: Money::ZERO,
            eps_consumer: Money::ZERO,
        }
    }

    /// Creates margins from the two accepted exposure bounds.
    ///
    /// # Errors
    ///
    /// Returns [`NegativeMarginError`] if either bound is negative.
    pub fn new(
        eps_supplier: Money,
        eps_consumer: Money,
    ) -> Result<SafetyMargins, NegativeMarginError> {
        if eps_supplier.is_negative() {
            return Err(NegativeMarginError {
                which: Role::Supplier,
                value: eps_supplier,
            });
        }
        if eps_consumer.is_negative() {
            return Err(NegativeMarginError {
                which: Role::Consumer,
                value: eps_consumer,
            });
        }
        Ok(SafetyMargins {
            eps_supplier,
            eps_consumer,
        })
    }

    /// Symmetric margins: both parties accept the same bound.
    ///
    /// # Errors
    ///
    /// Returns [`NegativeMarginError`] if `eps` is negative.
    pub fn symmetric(eps: Money) -> Result<SafetyMargins, NegativeMarginError> {
        SafetyMargins::new(eps, eps)
    }

    /// `ε_s`: consumer temptation tolerated by the supplier.
    pub fn eps_supplier(&self) -> Money {
        self.eps_supplier
    }

    /// `ε_c`: supplier temptation tolerated by the consumer.
    pub fn eps_consumer(&self) -> Money {
        self.eps_consumer
    }

    /// `ε_s + ε_c`: the total window widening — the only quantity the
    /// feasibility condition depends on.
    pub fn total(&self) -> Money {
        self.eps_supplier + self.eps_consumer
    }

    /// The bound tolerated *by* the given role (i.e. capping the *other*
    /// role's temptation).
    pub fn tolerated_by(&self, role: Role) -> Money {
        match role {
            Role::Supplier => self.eps_supplier,
            Role::Consumer => self.eps_consumer,
        }
    }
}

impl Default for SafetyMargins {
    fn default() -> Self {
        SafetyMargins::fully_safe()
    }
}

impl fmt::Display for SafetyMargins {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε_s={} ε_c={}", self.eps_supplier, self.eps_consumer)
    }
}

/// The admissible window for the outstanding payment `R` at one state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SafetyWindow {
    /// `Pmin − ε_c`: smallest admissible outstanding payment.
    pub min_outstanding: Money,
    /// `Pmax + ε_s`: largest admissible outstanding payment.
    pub max_outstanding: Money,
}

impl SafetyWindow {
    /// Whether the window admits any value.
    pub fn is_nonempty(&self) -> bool {
        self.min_outstanding <= self.max_outstanding
    }

    /// Whether `r` lies in the window.
    pub fn contains(&self, r: Money) -> bool {
        self.min_outstanding <= r && r <= self.max_outstanding
    }
}

/// Evaluates the (relaxed) safety window at the state in `view`.
pub fn window_at(view: &StateView<'_>, margins: SafetyMargins) -> SafetyWindow {
    SafetyWindow {
        min_outstanding: view.remaining_cost() - margins.eps_consumer(),
        max_outstanding: view.remaining_value() + margins.eps_supplier(),
    }
}

/// The result of checking one state against the safety conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SafetyCheck {
    /// Both temptations within the tolerated bounds.
    Safe,
    /// The named role's temptation exceeds what the other role tolerates,
    /// by `excess`.
    Violated {
        /// Whose temptation exceeds the bound.
        tempted: Role,
        /// By how much the bound is exceeded (> 0).
        excess: Money,
    },
}

impl SafetyCheck {
    /// Whether the check passed.
    pub fn is_safe(self) -> bool {
        matches!(self, SafetyCheck::Safe)
    }
}

/// Checks the state in `view` against the margins.
///
/// When both temptations are violated (possible only for inconsistent
/// deals, since the two bounds move in opposite directions with `R`), the
/// larger excess is reported.
pub fn check(view: &StateView<'_>, margins: SafetyMargins) -> SafetyCheck {
    let tc = view.consumer_temptation() - margins.eps_supplier();
    let ts = view.supplier_temptation() - margins.eps_consumer();
    let worst = tc.max(ts);
    if !worst.is_positive() {
        SafetyCheck::Safe
    } else if tc >= ts {
        SafetyCheck::Violated {
            tempted: Role::Consumer,
            excess: tc,
        }
    } else {
        SafetyCheck::Violated {
            tempted: Role::Supplier,
            excess: ts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deal::Deal;
    use crate::goods::Goods;
    use crate::state::Progress;

    fn deal() -> Deal {
        // Vs(G) = 6, Vc(G) = 12, P = 9.
        let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap();
        Deal::new(goods, Money::from_units(9)).unwrap()
    }

    #[test]
    fn margins_construction() {
        assert!(SafetyMargins::new(Money::from_units(1), Money::from_units(2)).is_ok());
        let err = SafetyMargins::new(Money::from_units(-1), Money::ZERO).unwrap_err();
        assert_eq!(err.which, Role::Supplier);
        let err = SafetyMargins::new(Money::ZERO, Money::from_units(-1)).unwrap_err();
        assert_eq!(err.which, Role::Consumer);
        assert!(err.to_string().contains("non-negative"));
        assert_eq!(SafetyMargins::default(), SafetyMargins::fully_safe());
    }

    #[test]
    fn margins_accessors() {
        let m = SafetyMargins::new(Money::from_units(2), Money::from_units(1)).unwrap();
        assert_eq!(m.eps_supplier(), Money::from_units(2));
        assert_eq!(m.eps_consumer(), Money::from_units(1));
        assert_eq!(m.total(), Money::from_units(3));
        assert_eq!(m.tolerated_by(Role::Supplier), Money::from_units(2));
        assert_eq!(m.tolerated_by(Role::Consumer), Money::from_units(1));
        assert_eq!(format!("{m}"), "ε_s=2.000000 ε_c=1.000000");
        let s = SafetyMargins::symmetric(Money::from_units(4)).unwrap();
        assert_eq!(s.total(), Money::from_units(8));
    }

    #[test]
    fn initial_state_is_safe_for_rational_deal() {
        let d = deal();
        let p = Progress::new(&d);
        assert!(check(&p.view(), SafetyMargins::fully_safe()).is_safe());
    }

    #[test]
    fn window_at_initial_state() {
        let d = deal();
        let p = Progress::new(&d);
        let w = window_at(&p.view(), SafetyMargins::fully_safe());
        assert_eq!(w.min_outstanding, Money::from_units(6));
        assert_eq!(w.max_outstanding, Money::from_units(12));
        assert!(w.is_nonempty());
        assert!(w.contains(Money::from_units(9)));
        assert!(!w.contains(Money::from_units(5)));
    }

    #[test]
    fn window_shrinks_with_margins_growth() {
        let d = deal();
        let p = Progress::new(&d);
        let relaxed = SafetyMargins::symmetric(Money::from_units(2)).unwrap();
        let w = window_at(&p.view(), relaxed);
        assert_eq!(w.min_outstanding, Money::from_units(4));
        assert_eq!(w.max_outstanding, Money::from_units(14));
    }

    #[test]
    fn consumer_violation_detected() {
        let d = deal();
        let mut p = Progress::new(&d);
        // Deliver everything without payment: consumer holds 12 of value,
        // owes 9 -> T_c = R - remaining value = 9 - 0 = 9 > 0.
        for id in d.goods().ids().collect::<Vec<_>>() {
            p.deliver(id).unwrap();
        }
        match check(&p.view(), SafetyMargins::fully_safe()) {
            SafetyCheck::Violated { tempted, excess } => {
                assert_eq!(tempted, Role::Consumer);
                assert_eq!(excess, Money::from_units(9));
            }
            SafetyCheck::Safe => panic!("expected violation"),
        }
        // A margin of 9 makes it admissible again.
        let wide = SafetyMargins::new(Money::from_units(9), Money::ZERO).unwrap();
        assert!(check(&p.view(), wide).is_safe());
    }

    #[test]
    fn supplier_violation_detected() {
        let d = deal();
        let mut p = Progress::new(&d);
        // Pay everything upfront: supplier holds 9, delivered nothing ->
        // T_s = Vs(G) - R = 6 - 0 = 6 > 0.
        p.pay(Money::from_units(9)).unwrap();
        match check(&p.view(), SafetyMargins::fully_safe()) {
            SafetyCheck::Violated { tempted, excess } => {
                assert_eq!(tempted, Role::Supplier);
                assert_eq!(excess, Money::from_units(6));
            }
            SafetyCheck::Safe => panic!("expected violation"),
        }
        let wide = SafetyMargins::new(Money::ZERO, Money::from_units(6)).unwrap();
        assert!(check(&p.view(), wide).is_safe());
    }

    #[test]
    fn check_matches_window_membership() {
        let d = deal();
        let mut p = Progress::new(&d);
        p.pay(Money::from_units(3)).unwrap();
        let v = p.view();
        for eps in 0..4 {
            let m = SafetyMargins::symmetric(Money::from_units(eps)).unwrap();
            let w = window_at(&v, m);
            assert_eq!(
                w.contains(v.outstanding()),
                check(&v, m).is_safe(),
                "eps={eps}"
            );
        }
    }

    #[test]
    fn margin_exactly_at_temptation_is_safe() {
        let d = deal();
        let mut p = Progress::new(&d);
        let ids: Vec<_> = d.goods().ids().collect();
        p.deliver(ids[0]).unwrap(); // Vc=5 delivered, T_c = 9 - 7 = 2
        let v = p.view();
        assert_eq!(v.consumer_temptation(), Money::from_units(2));
        let exact = SafetyMargins::new(Money::from_units(2), Money::ZERO).unwrap();
        assert!(check(&v, exact).is_safe(), "bound is inclusive");
        let below = SafetyMargins::new(Money::from_f64(1.999999), Money::ZERO).unwrap();
        assert!(!check(&v, below).is_safe());
    }
}
