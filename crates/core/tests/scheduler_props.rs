//! Differential properties pinning the scheduler rewrite.
//!
//! Four oracles, one truth:
//!
//! 1. [`branch_and_bound_order`] agrees with the independent
//!    [`subset_dp_order`] on feasibility wherever both run.
//! 2. The greedy order's required margin is the *exact* minimum — the
//!    paper's optimality claim — certified against branch-and-bound,
//!    whose infeasibility verdicts never consult the greedy heuristic.
//! 3. [`sandholm_order`] succeeds iff the instance is feasible at ε and
//!    its output margin never exceeds ε.
//! 4. The indexed `O(n log n)` sandholm reproduces the original `O(n²)`
//!    scan bit-for-bit on the identical instance stream.
//!
//! Plus error-path coverage: `Infeasible` carries the true minimal
//! margin, `TooManyItems` fires exactly at each exact-solver cap, and
//! `interleave_payments` preserves action-count and running-balance
//! invariants under random feasible orders.

use proptest::prelude::*;
use trustex_core::prelude::*;
use trustex_core::scheduler::{
    branch_and_bound_order, greedy_order, interleave_payments, required_margin_of_order,
    sandholm_order, sandholm_order_scan, subset_dp_order, BRANCH_AND_BOUND_MAX_ITEMS,
    SUBSET_DP_MAX_ITEMS,
};

/// Goods of `1..=max_n` items with costs/values in 0..=10 units.
fn goods_strategy(max_n: usize) -> impl Strategy<Value = Goods> {
    prop::collection::vec((0i64..=10_000_000, 0i64..=10_000_000), 1..=max_n).prop_map(|pairs| {
        Goods::new(
            pairs
                .into_iter()
                .map(|(c, v)| (Money::from_micros(c), Money::from_micros(v)))
                .collect(),
        )
        .expect("non-empty, non-negative")
    })
}

fn margins_strategy() -> impl Strategy<Value = SafetyMargins> {
    (0i64..=8_000_000, 0i64..=8_000_000).prop_map(|(a, b)| {
        SafetyMargins::new(Money::from_micros(a), Money::from_micros(b)).expect("non-negative")
    })
}

/// Total-margin helper.
fn at(total: Money) -> SafetyMargins {
    SafetyMargins::new(total, Money::ZERO).expect("non-negative")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Oracle vs oracle: branch-and-bound and subset DP agree on
    /// feasibility for every instance within the DP's comfortable range,
    /// and a returned order actually fits the margin.
    #[test]
    fn bnb_agrees_with_subset_dp(goods in goods_strategy(16), margins in margins_strategy()) {
        let dp = subset_dp_order(&goods, margins).expect("within DP cap");
        let bnb = branch_and_bound_order(&goods, margins).expect("within bnb cap");
        prop_assert_eq!(dp.is_some(), bnb.is_some(),
            "bnb and DP disagree: margins={:?} goods={:?}", margins, goods);
        if let Some(order) = bnb {
            prop_assert!(required_margin_of_order(&goods, &order) <= margins.total());
        }
    }

    /// The paper's optimality claim, certified by the exact oracle: the
    /// greedy order's required margin is feasible, and one micro-unit
    /// less is not.
    #[test]
    fn greedy_margin_is_exact_minimum(goods in goods_strategy(16)) {
        let req = required_margin_of_order(&goods, &greedy_order(&goods));
        prop_assert_eq!(req, min_required_margin(&goods));
        prop_assert!(branch_and_bound_order(&goods, at(req)).expect("size ok").is_some(),
            "bnb infeasible at the greedy margin — greedy not optimal");
        if req > Money::ZERO {
            prop_assert!(
                branch_and_bound_order(&goods, at(req - Money::from_micros(1)))
                    .expect("size ok")
                    .is_none(),
                "bnb feasible below the greedy margin — min margin not tight");
        }
    }

    /// Sandholm is complete and sound at its margin: it succeeds iff the
    /// instance is feasible at ε, and the order it emits never needs
    /// more than ε.
    #[test]
    fn sandholm_succeeds_iff_feasible(goods in goods_strategy(20), margins in margins_strategy()) {
        match sandholm_order(&goods, margins) {
            Ok(order) => {
                prop_assert!(feasible(&goods, margins));
                prop_assert!(required_margin_of_order(&goods, &order) <= margins.total());
            }
            Err(ScheduleError::Infeasible { required, available }) => {
                prop_assert!(!feasible(&goods, margins));
                prop_assert_eq!(required, min_required_margin(&goods));
                prop_assert_eq!(available, margins.total());
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    /// The indexed sandholm is the scan, bit for bit: same success
    /// orders, same errors, same error payloads, on the identical
    /// instance stream.
    #[test]
    fn indexed_sandholm_matches_scan(goods in goods_strategy(20), margins in margins_strategy()) {
        prop_assert_eq!(
            sandholm_order(&goods, margins),
            sandholm_order_scan(&goods, margins)
        );
    }

    /// Tight margins: both sandholm variants agree along the exact
    /// feasibility boundary, where the error path is actually exercised.
    #[test]
    fn indexed_sandholm_matches_scan_at_boundary(
        goods in goods_strategy(20),
        below in 1i64..=1_000_000,
    ) {
        let req = min_required_margin(&goods);
        for total in [req, (req - Money::from_micros(below)).max(Money::ZERO)] {
            let m = at(total);
            prop_assert_eq!(sandholm_order(&goods, m), sandholm_order_scan(&goods, m));
        }
    }

    /// Every scheduler's `Infeasible` carries the true minimal margin:
    /// the reported `required` is itself schedulable (certified by the
    /// exact oracle) and matches `min_required_margin`.
    #[test]
    fn infeasible_error_carries_true_min_margin(
        goods in goods_strategy(12),
        below in 1i64..=2_000_000,
        t in 0.0f64..=1.0,
    ) {
        let req = min_required_margin(&goods);
        prop_assume!(req > Money::ZERO);
        let m = at((req - Money::from_micros(below)).max(Money::ZERO));
        let Some(deal) = deal_for(goods.clone(), t) else { return Ok(()); };
        for alg in Algorithm::ALL {
            let err = schedule(&deal, m, PaymentPolicy::Lazy, alg)
                .expect_err("margins below the minimum must fail");
            match err {
                ScheduleError::Infeasible { required, available } => {
                    prop_assert_eq!(required, req, "{:?}", alg);
                    prop_assert_eq!(available, m.total(), "{:?}", alg);
                }
                other => prop_assert!(false, "{:?}: unexpected {:?}", alg, other),
            }
        }
        // The reported requirement is tight: the exact oracle schedules at it.
        prop_assert!(branch_and_bound_order(&goods, at(req)).expect("size ok").is_some());
    }

    /// `interleave_payments` structural invariants under *random* feasible
    /// orders (not just scheduler-produced ones): every item delivered
    /// exactly once, the full price paid, payments strictly positive, and
    /// the running balance never overshoots.
    #[test]
    fn interleave_preserves_action_and_balance_invariants(
        goods in goods_strategy(10),
        shuffle_seed in 0u64..u64::MAX,
        t in 0.0f64..=1.0,
    ) {
        // A uniformly shuffled delivery order, made feasible by granting
        // exactly the margin it requires.
        let mut order: Vec<ItemId> = goods.ids().collect();
        let mut s = shuffle_seed;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let m = at(required_margin_of_order(&goods, &order));
        let Some(deal) = deal_for(goods.clone(), t) else { return Ok(()); };
        for policy in PaymentPolicy::ALL {
            let seq = interleave_payments(&deal, m, &order, policy)
                .expect("order is feasible at its own margin");
            let n = goods.len();
            prop_assert_eq!(seq.delivery_count(), n, "{:?}", policy);
            prop_assert!(seq.actions().len() <= 2 * n + 1, "{:?}", policy);
            prop_assert_eq!(seq.total_paid(), deal.price(), "{:?}", policy);
            // Deliveries follow the requested order exactly.
            let delivered: Vec<ItemId> = seq.actions().iter().filter_map(|a| match a {
                Action::Deliver(id) => Some(*id),
                Action::Pay(_) => None,
            }).collect();
            prop_assert_eq!(&delivered, &order, "{:?}", policy);
            // Running balance: payments are strictly positive, never
            // exceed the outstanding amount, and sum exactly to P.
            let mut outstanding = deal.price();
            for action in seq.actions() {
                if let Action::Pay(p) = action {
                    prop_assert!(p.is_positive(), "{:?}: non-positive payment", policy);
                    prop_assert!(*p <= outstanding, "{:?}: overpayment", policy);
                    outstanding -= *p;
                }
            }
            prop_assert!(outstanding.is_zero(), "{:?}: residual {}", policy, outstanding);
        }
    }
}

/// A valid price for the goods: Vs(G) + t · (Vc(G) − Vs(G)).
fn deal_for(goods: Goods, t: f64) -> Option<Deal> {
    let lo = goods.total_supplier_cost();
    let hi = goods.total_consumer_value();
    if hi < lo {
        return None; // negative-total-surplus set: no rational price
    }
    let price = lo + (hi - lo).scale(t);
    Deal::new(goods, price).ok()
}

/// Deterministic uniform-valuation generator for the fixed-size suites.
fn random_goods(n: usize, seed: u64) -> Goods {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as i64 % 10_000_001
    };
    Goods::new(
        (0..n)
            .map(|_| (Money::from_micros(next()), Money::from_micros(next())))
            .collect(),
    )
    .expect("non-empty")
}

/// Deterministic workload-shaped generator: `Vc = Vs × markup` with
/// markup in `[0.7, 2.1]`, matching the paper-style curves where most —
/// but not all — items carry positive surplus.
fn random_markup_goods(n: usize, seed: u64) -> Goods {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / (1u64 << 31) as f64
    };
    Goods::new(
        (0..n)
            .map(|_| {
                let cost = next() * 10.0;
                let markup = 0.7 + 1.4 * next();
                (Money::from_f64(cost), Money::from_f64(cost * markup))
            })
            .collect(),
    )
    .expect("non-empty")
}

/// The acceptance bar for the exact oracle: n = 30 workload-shaped
/// random instances — far beyond the subset DP's cap — solved on both
/// sides of the exact feasibility boundary, certifying greedy optimality
/// at that size.
#[test]
fn branch_and_bound_solves_n30_at_the_boundary() {
    for seed in 0..20u64 {
        let goods = random_markup_goods(30, 0x3030 + seed);
        let req = min_required_margin(&goods);
        let order = branch_and_bound_order(&goods, at(req))
            .expect("size ok")
            .expect("must be feasible at the greedy margin");
        assert_eq!(order.len(), 30, "seed {seed}");
        assert!(
            required_margin_of_order(&goods, &order) <= req,
            "seed {seed}"
        );
        if req > Money::ZERO {
            assert!(
                branch_and_bound_order(&goods, at(req - Money::from_micros(1)))
                    .expect("size ok")
                    .is_none(),
                "seed {seed}: feasible below the greedy margin — greedy not optimal"
            );
        }
    }
}

/// Unbiased uniform valuations (≈ half the items negative-surplus, the
/// worst shape for the search) right at the subset DP's cap, both sides
/// of the boundary.
#[test]
fn branch_and_bound_exact_on_uniform_n24() {
    for seed in 0..6u64 {
        let goods = random_goods(24, 0x2424 + seed);
        let req = min_required_margin(&goods);
        assert!(
            branch_and_bound_order(&goods, at(req))
                .expect("size ok")
                .is_some(),
            "seed {seed}"
        );
        if req > Money::ZERO {
            assert!(
                branch_and_bound_order(&goods, at(req - Money::from_micros(1)))
                    .expect("size ok")
                    .is_none(),
                "seed {seed}: feasible below the greedy margin"
            );
        }
    }
}

/// DP cross-check near its ceiling: n = 18 instances, margins straddling
/// the exact boundary, the two exact oracles must agree everywhere.
#[test]
fn dp_cross_checks_bnb_at_n18() {
    for seed in 0..4u64 {
        let goods = random_goods(18, 0x1818 + seed);
        let req = min_required_margin(&goods);
        let probes = [
            Money::ZERO,
            req / 2,
            (req - Money::from_micros(1)).max(Money::ZERO),
            req,
        ];
        for total in probes {
            let m = at(total);
            let dp = subset_dp_order(&goods, m).expect("within DP cap");
            let bnb = branch_and_bound_order(&goods, m).expect("within bnb cap");
            assert_eq!(
                dp.is_some(),
                bnb.is_some(),
                "seed {seed} total {total}: oracles disagree"
            );
        }
    }
}

/// `TooManyItems` fires exactly at each exact solver's cap — one item
/// under passes, one item over errors with the right payload.
#[test]
fn too_many_items_fires_exactly_at_the_caps() {
    let wide = at(Money::from_units(1_000_000));
    // All-expensive items (every Vs above any achievable collateral at
    // ε = 0) so the at-cap runs answer `Ok(None)` without exploring the
    // exponential state space — the cap check happens before any search.
    let instance = |n: usize| Goods::from_f64_pairs(&vec![(10.0, 1.0); n]).expect("non-empty");
    let tight = SafetyMargins::fully_safe();

    assert_eq!(
        subset_dp_order(&instance(SUBSET_DP_MAX_ITEMS), tight),
        Ok(None)
    );
    assert_eq!(
        subset_dp_order(&instance(SUBSET_DP_MAX_ITEMS + 1), tight).unwrap_err(),
        ScheduleError::TooManyItems {
            n_items: SUBSET_DP_MAX_ITEMS + 1,
            limit: SUBSET_DP_MAX_ITEMS
        }
    );

    assert_eq!(
        branch_and_bound_order(&instance(BRANCH_AND_BOUND_MAX_ITEMS), tight),
        Ok(None)
    );
    assert_eq!(
        branch_and_bound_order(&instance(BRANCH_AND_BOUND_MAX_ITEMS + 1), tight).unwrap_err(),
        ScheduleError::TooManyItems {
            n_items: BRANCH_AND_BOUND_MAX_ITEMS + 1,
            limit: BRANCH_AND_BOUND_MAX_ITEMS
        }
    );

    // The caps surface through `schedule` for deals too.
    let pairs: Vec<(f64, f64)> = (0..SUBSET_DP_MAX_ITEMS + 1)
        .map(|i| (1.0, 2.0 + i as f64))
        .collect();
    let goods = Goods::from_f64_pairs(&pairs).expect("non-empty");
    let deal = Deal::with_split_surplus(goods).expect("positive surplus");
    assert!(matches!(
        schedule(&deal, wide, PaymentPolicy::Lazy, Algorithm::SubsetDp),
        Err(ScheduleError::TooManyItems { .. })
    ));
}
