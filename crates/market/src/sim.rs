//! The end-to-end marketplace simulation: Figure 1 as a running loop.
//!
//! Every round, random pairs strike deals from a [`Workload`], schedule
//! them with a [`Strategy`], execute against the agents' true behaviours,
//! and feed the observed conduct back into trust models and gossip — the
//! full reputation → trust → decision → exchange → feedback cycle of the
//! paper's reference model.
//!
//! # Parallel execution model
//!
//! Rounds run in three phases so session execution can be sharded across
//! worker threads without giving up bit-for-bit reproducibility:
//!
//! 1. **Draw** (sequential): every session's participants, deal and
//!    per-party RNG forks are drawn from the master stream up front, so
//!    master-stream consumption never depends on trust state or timing.
//! 2. **Execute** (parallel): sessions are planned against the trust
//!    state at round start and executed concurrently via
//!    [`trustex_netsim::pool::parallel_map`]; each session only reads
//!    the shared community and owns its pre-forked streams.
//! 3. **Merge** (sequential): outcomes are folded in session order —
//!    accounting, direct-experience feedback, witness gossip and slander
//!    all replay deterministically from each session's feedback fork.
//!
//! The thread count therefore changes wall-clock time, never the
//! [`MarketReport`]: `threads ∈ {1, 2, 8}` produce identical output for
//! the same seed (enforced by the cross-thread determinism tests).

use crate::metrics::{accuracy_metrics, cooperation_truth, trust_mae_with_truth_threads};
use crate::population::{Community, CommunitySnapshot, DefenseConfig, ModelKind};
use crate::strategy::{plan, Strategy};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use trustex_agents::adversary::Faction;
use trustex_agents::profile::PopulationMix;
use trustex_agents::reporting::Campaign;
use trustex_core::deal::Deal;
use trustex_core::execute::{execute, ExchangeOutcome, ExchangeStatus};
use trustex_core::policy::PaymentPolicy;
use trustex_core::state::Role;
use trustex_netsim::backoff::RetryPolicy;
use trustex_netsim::event::EventQueue;
use trustex_netsim::fault::{FaultConfig, FaultFate, FaultPlane};
use trustex_netsim::pool::{parallel_map, resolve_threads};
use trustex_netsim::rng::SimRng;
use trustex_netsim::time::SimTime;
use trustex_trust::model::{Conduct, PeerId, WitnessReport};

/// Virtual wall-clock span of one market round — the time base the
/// fault plane's partition episodes and the retransmission backoff are
/// scheduled against.
pub const ROUND_SPAN: SimTime = SimTime::from_millis(10);

/// Witness-delivery fraction below which evaluators degrade to
/// direct-evidence-only prediction (when the chaos config opts in).
const WITNESS_QUORUM: f64 = 0.5;

/// Bounded retransmission budget for lost witness reports: doubling
/// from 2 ms to a 64 ms ceiling across up to 10 attempts spans several
/// rounds, enough to straddle the partition heals e14 schedules.
const RETX_POLICY: RetryPolicy = RetryPolicy {
    max_attempts: 10,
    base_us: 2_000,
    cap_us: 64_000,
};

/// Retransmission queue bound; entries past it are dropped (counted).
/// Sized for paper scale: a 150-agent run under a 20-round bisect holds
/// every cross-partition emission on backoff at once, which overflows a
/// 4 096-entry queue and silently halves the defended delivery rate.
const RETX_QUEUE_CAP: usize = 65_536;

/// Chaos knobs for a market run: witness gossip is delivered through a
/// seeded fault plane, with optional bounded retransmission of lost
/// reports and optional quorum-gated graceful degradation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// The fault plane's knobs (loss, duplication, delay, partitions);
    /// the plane itself is seeded from the market seed.
    pub fault: FaultConfig,
    /// Retransmit lost/blocked reports on a bounded backoff schedule.
    pub retry: bool,
    /// Fall back to direct-evidence-only prediction while the witness
    /// quorum is unreachable, instead of treating silence as absence.
    pub degrade: bool,
}

/// Configuration of one market simulation.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Community size.
    pub n_agents: usize,
    /// Number of rounds.
    pub rounds: u64,
    /// Exchange sessions attempted per round.
    pub sessions_per_round: usize,
    /// Population composition.
    pub mix: PopulationMix,
    /// Trust model run by every agent.
    pub model: ModelKind,
    /// Scheduling strategy.
    pub strategy: Strategy,
    /// Deal generator.
    pub workload: Workload,
    /// Payment interleaving policy.
    pub payment_policy: PaymentPolicy,
    /// Witnesses each party gossips its observation to after a session.
    pub gossip_witnesses: usize,
    /// Master seed; equal seeds reproduce runs exactly.
    pub seed: u64,
    /// Community-level defenses against coordinated reporting attacks
    /// (both off by default).
    pub defense: DefenseConfig,
    /// Record O(n²) trust metrics every round (else only at the end).
    pub track_trust_per_round: bool,
    /// Message-level chaos: deliver witness gossip through a fault
    /// plane. `None` (the default) bypasses the plane entirely and is
    /// bit-identical to the pre-chaos delivery path.
    pub chaos: Option<ChaosConfig>,
    /// Worker threads for the sharded session executor (0 = auto via
    /// [`trustex_netsim::pool::default_threads`]). Any value yields the
    /// same report; only wall-clock time changes.
    pub threads: usize,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            n_agents: 100,
            rounds: 30,
            sessions_per_round: 100,
            mix: PopulationMix::standard(0.3, 0.25),
            model: ModelKind::Beta,
            strategy: Strategy::TrustAware,
            workload: Workload::Ebay,
            payment_policy: PaymentPolicy::Lazy,
            gossip_witnesses: 3,
            seed: 42,
            defense: DefenseConfig::default(),
            track_trust_per_round: false,
            chaos: None,
            threads: 0,
        }
    }
}

/// Per-round aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index.
    pub round: u64,
    /// Sessions attempted.
    pub sessions: u64,
    /// Sessions that ran to completion.
    pub completed: u64,
    /// Sessions aborted by a defection.
    pub aborted: u64,
    /// Sessions never scheduled (declined or infeasible).
    pub no_trade: u64,
    /// Realized welfare (sum of both parties' gains), major units.
    pub welfare: f64,
    /// Losses (negative gains) suffered by fundamentally honest agents.
    pub honest_losses: f64,
    /// Trust MAE at the end of the round, when tracked.
    pub trust_mae: Option<f64>,
}

/// Whole-run aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketReport {
    /// Per-round statistics.
    pub per_round: Vec<RoundStats>,
    /// Total sessions attempted.
    pub sessions: u64,
    /// Total completed.
    pub completed: u64,
    /// Total aborted by defection.
    pub aborted: u64,
    /// Total unscheduled (declined / infeasible).
    pub no_trade: u64,
    /// Total realized welfare, major units.
    pub total_welfare: f64,
    /// Total gains of fundamentally honest agents.
    pub honest_gain: f64,
    /// Total gains of dishonest agents.
    pub dishonest_gain: f64,
    /// Total losses suffered by honest agents.
    pub honest_losses: f64,
    /// Final trust MAE over all pairs.
    pub final_mae: f64,
    /// Final ranking accuracy (AUC analogue).
    pub final_rank_accuracy: f64,
    /// Final decision accuracy (threshold 0.5).
    pub final_decision_accuracy: f64,
    /// Witness-report emissions attempted (one per logical report and
    /// target, retransmissions excluded).
    pub witness_attempted: u64,
    /// Witness-report emissions that reached the target's model (first
    /// copy only; rate-capped and faulted deliveries excluded).
    pub witness_delivered: u64,
}

impl MarketReport {
    /// Completed / attempted (0 when nothing attempted).
    pub fn completion_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.completed as f64 / self.sessions as f64
        }
    }

    /// Fraction of sessions that were never scheduled.
    pub fn no_trade_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.no_trade as f64 / self.sessions as f64
        }
    }

    /// Mean welfare per attempted session.
    pub fn welfare_per_session(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.total_welfare / self.sessions as f64
        }
    }

    /// Delivered / attempted witness emissions (1.0 when none attempted).
    pub fn witness_delivery_rate(&self) -> f64 {
        if self.witness_attempted == 0 {
            1.0
        } else {
            self.witness_delivered as f64 / self.witness_attempted as f64
        }
    }
}

/// Everything one session needs before execution, pre-drawn from the
/// master stream so execution order cannot perturb determinism.
struct SessionDraw {
    supplier: PeerId,
    consumer: PeerId,
    deal: Deal,
    rng_supplier: SimRng,
    rng_consumer: SimRng,
}

/// The sequential remainder of a session: who traded, plus the fork that
/// replays feedback-side randomness (slander targets, gossip witnesses).
struct SessionPost {
    supplier: PeerId,
    consumer: PeerId,
    rng_feedback: SimRng,
}

/// What the parallel executor hands back to the merge phase.
enum SessionOutcome {
    /// The strategy declined or found no feasible sequence.
    NoTrade,
    /// The exchange ran (to completion or first defection).
    Traded(ExchangeOutcome),
}

/// Faction rosters scanned once from the sampled profiles: the shared
/// coordination state the campaign dispatch resolves targets against.
/// All pools are in ascending id order (construction scans ids in
/// order), which `pick_other`'s exclusion shift relies on.
#[derive(Debug, Default)]
struct Coordination {
    /// Agents marked as targets of slander campaigns.
    victims: Vec<PeerId>,
    /// Collusion-ring membership, indexed by ring id.
    rings: Vec<Vec<PeerId>>,
    /// Sybil-cell membership, indexed by cell id.
    cells: Vec<Vec<PeerId>>,
    /// `(agent, period)` identity churners; whitewash fires at the end
    /// of every `period`-th round.
    whitewashers: Vec<(PeerId, u64)>,
}

impl Coordination {
    fn scan(community: &Community) -> Coordination {
        let mut coordination = Coordination::default();
        for agent in community.agent_ids() {
            match community.profile(agent).faction {
                Faction::None | Faction::SlanderCell => {}
                Faction::Victim => coordination.victims.push(agent),
                Faction::Ring(ring) => {
                    let ring = ring as usize;
                    if coordination.rings.len() <= ring {
                        coordination.rings.resize_with(ring + 1, Vec::new);
                    }
                    coordination.rings[ring].push(agent);
                }
                Faction::Sybil { cell, .. } => {
                    let cell = cell as usize;
                    if coordination.cells.len() <= cell {
                        coordination.cells.resize_with(cell + 1, Vec::new);
                    }
                    coordination.cells[cell].push(agent);
                }
                Faction::Whitewash { period } => {
                    coordination.whitewashers.push((agent, period.max(1)));
                }
            }
        }
        coordination
    }
}

/// Uniformly picks a member of the sorted `pool` other than `exclude`.
/// Draws from the RNG only when a choice exists; `None` when the pool is
/// empty or holds only `exclude`.
fn pick_other(pool: &[PeerId], exclude: PeerId, rng: &mut SimRng) -> Option<PeerId> {
    match pool.binary_search(&exclude) {
        Ok(at) => {
            if pool.len() <= 1 {
                None
            } else {
                let raw = rng.index(pool.len() - 1);
                Some(pool[if raw >= at { raw + 1 } else { raw }])
            }
        }
        Err(_) => {
            if pool.is_empty() {
                None
            } else {
                Some(pool[rng.index(pool.len())])
            }
        }
    }
}

/// One lost witness report awaiting retransmission.
#[derive(Debug, Clone, Copy)]
struct RetxEntry {
    /// The original emission's sequence number — the dedup key, so a
    /// retransmission can never double-deliver.
    emission: u64,
    target: PeerId,
    report: WitnessReport,
    /// Failed wire attempts so far (original send included).
    attempts: u32,
}

/// The simulation driver.
#[derive(Debug)]
pub struct MarketSim {
    cfg: MarketConfig,
    community: Community,
    /// Faction rosters for the coordinated-attack campaign dispatch.
    coordination: Coordination,
    rng: SimRng,
    honest_gain: f64,
    dishonest_gain: f64,
    /// Ground-truth cooperation probabilities, fixed at construction and
    /// reused by every per-round MAE evaluation.
    truth: Vec<f64>,
    /// The witness-gossip fault plane, when chaos is configured.
    plane: Option<FaultPlane>,
    /// Monotone per-emission sequence; keys every fault decision and,
    /// paired with the issuer, the `(issuer, seq)` delivery dedup.
    gossip_seq: u64,
    /// Emissions whose report already reached its target — duplicates
    /// and late retransmissions of these are suppressed.
    seen: HashSet<(u32, u64)>,
    /// Bounded retransmission queue for lost/blocked reports, drained
    /// on the virtual clock at each round boundary.
    retx: EventQueue<RetxEntry>,
    /// Retransmissions dropped because the queue was full.
    retx_overflow: u64,
    witness_attempted: u64,
    witness_delivered: u64,
    /// Current-round emission/delivery counts driving the quorum gate.
    round_attempted: u64,
    round_delivered: u64,
}

impl MarketSim {
    /// Builds the simulation (samples the population).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n_agents < 2`: every session needs two distinct
    /// parties, and the distinct-consumer rejection loop in the session
    /// draw would otherwise never terminate.
    pub fn new(cfg: MarketConfig) -> MarketSim {
        assert!(
            cfg.n_agents >= 2,
            "MarketConfig::n_agents must be ≥ 2 (a session needs two distinct parties), got {}",
            cfg.n_agents
        );
        let mut rng = SimRng::new(cfg.seed);
        let mut community =
            Community::with_defense(cfg.n_agents, &cfg.mix, cfg.model, cfg.defense, &mut rng);
        // The plane seed derives from the run seed through a fixed salt
        // (a pure hash, no draw), so chaos runs replay bit-for-bit and
        // chaos-free runs consume an unchanged RNG stream.
        let plane = cfg.chaos.map(|chaos| {
            FaultPlane::new(
                trustex_netsim::backoff::splitmix64(cfg.seed ^ 0xC4A0_5C4A_05C4_A05C),
                chaos.fault,
            )
        });
        if cfg.chaos.is_some_and(|c| c.degrade) {
            community.enable_direct_ledger();
        }
        let coordination = Coordination::scan(&community);
        let truth = cooperation_truth(&community);
        MarketSim {
            cfg,
            community,
            coordination,
            rng,
            honest_gain: 0.0,
            dishonest_gain: 0.0,
            truth,
            plane,
            gossip_seq: 0,
            seen: HashSet::new(),
            retx: EventQueue::new(),
            retx_overflow: 0,
            witness_attempted: 0,
            witness_delivered: 0,
            round_attempted: 0,
            round_delivered: 0,
        }
    }

    /// Read access to the community (e.g. for custom metrics).
    pub fn community(&self) -> &Community {
        &self.community
    }

    /// Runs all rounds and produces the report.
    pub fn run(mut self) -> MarketReport {
        let threads = resolve_threads(self.cfg.threads);
        let mut per_round = Vec::with_capacity(self.cfg.rounds as usize);
        let mut report = MarketReport {
            per_round: Vec::new(),
            sessions: 0,
            completed: 0,
            aborted: 0,
            no_trade: 0,
            total_welfare: 0.0,
            honest_gain: 0.0,
            dishonest_gain: 0.0,
            honest_losses: 0.0,
            final_mae: 0.0,
            final_rank_accuracy: 0.0,
            final_decision_accuracy: 0.0,
            witness_attempted: 0,
            witness_delivered: 0,
        };
        for round in 0..self.cfg.rounds {
            let stats = self.run_round(round, threads);
            report.sessions += stats.sessions;
            report.completed += stats.completed;
            report.aborted += stats.aborted;
            report.no_trade += stats.no_trade;
            report.total_welfare += stats.welfare;
            report.honest_losses += stats.honest_losses;
            per_round.push(stats);
        }
        // Gains per class are accumulated inside run_round via fields on
        // self; fold them here.
        report.honest_gain = self.honest_gain;
        report.dishonest_gain = self.dishonest_gain;
        // One batched row pass yields all three final metrics; each
        // (evaluator, subject) pair is predicted exactly once.
        let accuracy = accuracy_metrics(&self.community, &self.truth, threads);
        report.final_mae = accuracy.mae;
        report.final_rank_accuracy = accuracy.rank_accuracy;
        report.final_decision_accuracy = accuracy.decision_accuracy;
        report.witness_attempted = self.witness_attempted;
        report.witness_delivered = self.witness_delivered;
        report.per_round = per_round;
        report
    }

    /// Phase 1: draws every session of a round from the master stream.
    fn draw_sessions(&mut self) -> (Vec<SessionDraw>, Vec<SessionPost>) {
        let n = self.community.len();
        let count = self.cfg.sessions_per_round;
        let mut draws = Vec::with_capacity(count);
        let mut posts = Vec::with_capacity(count);
        for _ in 0..count {
            let supplier = PeerId(self.rng.index(n) as u32);
            let consumer = loop {
                let c = PeerId(self.rng.index(n) as u32);
                if c != supplier {
                    break c;
                }
            };
            let deal = self.cfg.workload.generate_deal(&mut self.rng);
            let rng_supplier = self.rng.fork(0xD1CE);
            let rng_consumer = self.rng.fork(0xFACE);
            let rng_feedback = self.rng.fork(0xF00D);
            draws.push(SessionDraw {
                supplier,
                consumer,
                deal,
                rng_supplier,
                rng_consumer,
            });
            posts.push(SessionPost {
                supplier,
                consumer,
                rng_feedback,
            });
        }
        (draws, posts)
    }

    /// Phase 2 worker: plans and executes one session against the
    /// round-start trust epoch. Trust reads go through the immutable
    /// [`CommunitySnapshot`] (behaviour profiles are construction-fixed
    /// and read from the community directly), so any number of sessions
    /// can run concurrently without touching mutable model state.
    fn run_session(
        cfg: &MarketConfig,
        community: &Community,
        snapshot: &CommunitySnapshot,
        round: u64,
        draw: SessionDraw,
    ) -> SessionOutcome {
        let s_trust = snapshot.predict(draw.supplier, draw.consumer);
        let c_trust = snapshot.predict(draw.consumer, draw.supplier);
        let sequence = match plan(
            cfg.strategy,
            &draw.deal,
            s_trust,
            c_trust,
            cfg.payment_policy,
        ) {
            Ok(seq) => seq,
            Err(_) => return SessionOutcome::NoTrade,
        };
        let mut rng_s = draw.rng_supplier;
        let mut rng_c = draw.rng_consumer;
        let s_behavior = community.profile(draw.supplier).exchange;
        let c_behavior = community.profile(draw.consumer).exchange;
        let outcome = {
            let mut s_oracle = s_behavior.oracle(round, &mut rng_s);
            let mut c_oracle = c_behavior.oracle(round, &mut rng_c);
            execute(&draw.deal, &sequence, &mut s_oracle, &mut c_oracle)
        };
        SessionOutcome::Traded(outcome)
    }

    /// Virtual time of a round's start on the fault-plane clock.
    fn round_time(round: u64) -> SimTime {
        SimTime::from_micros(round * ROUND_SPAN.as_micros())
    }

    fn run_round(&mut self, round: u64, threads: usize) -> RoundStats {
        // Retransmissions scheduled by earlier rounds whose backoff has
        // elapsed go out before this round's sessions read trust state.
        self.pump_retx(round);
        let n = self.community.len();
        let mut stats = RoundStats {
            round,
            sessions: 0,
            completed: 0,
            aborted: 0,
            no_trade: 0,
            welfare: 0.0,
            honest_losses: 0.0,
            trust_mae: None,
        };

        // Phase 1: pre-draw; phase 2: execute in parallel shards. Shards
        // are chunks of consecutive sessions (~4 per worker) so queue
        // traffic amortises over many ~µs sessions; chunk boundaries
        // cannot affect results because execution is pure per session.
        // Sessions predict against the round-start epoch: a snapshot
        // taken here and dropped before the merge phase, so the merge's
        // `Arc::make_mut` writes never pay a copy-on-write clone.
        let (draws, posts) = self.draw_sessions();
        let outcomes: Vec<SessionOutcome> = {
            let cfg = &self.cfg;
            let community = &self.community;
            let snapshot = self.community.snapshot();
            let snapshot = &snapshot;
            let chunk_len = draws.len().div_ceil(threads.max(1) * 4).max(1);
            let mut chunks: Vec<Vec<SessionDraw>> = Vec::new();
            let mut rest = draws.into_iter();
            loop {
                let chunk: Vec<SessionDraw> = rest.by_ref().take(chunk_len).collect();
                if chunk.is_empty() {
                    break;
                }
                chunks.push(chunk);
            }
            parallel_map(threads, chunks, |_, chunk| {
                chunk
                    .into_iter()
                    .map(|draw| Self::run_session(cfg, community, snapshot, round, draw))
                    .collect::<Vec<SessionOutcome>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };

        // Phase 3: deterministic merge in session order.
        for (post, outcome) in posts.into_iter().zip(outcomes) {
            stats.sessions += 1;
            let SessionPost {
                supplier,
                consumer,
                mut rng_feedback,
            } = post;
            let outcome = match outcome {
                SessionOutcome::NoTrade => {
                    stats.no_trade += 1;
                    continue;
                }
                SessionOutcome::Traded(outcome) => outcome,
            };

            // Accounting.
            stats.welfare += outcome.welfare().as_f64();
            let s_gain = outcome.supplier_gain.as_f64();
            let c_gain = outcome.consumer_gain.as_f64();
            for (agent, gain) in [(supplier, s_gain), (consumer, c_gain)] {
                if self.community.is_honest(agent) {
                    self.honest_gain += gain;
                    if gain < 0.0 {
                        stats.honest_losses += -gain;
                    }
                } else {
                    self.dishonest_gain += gain;
                }
            }
            match outcome.status {
                ExchangeStatus::Completed => stats.completed += 1,
                ExchangeStatus::Aborted { .. } => stats.aborted += 1,
            }

            // Feedback: both parties observed whether the other defected.
            let s_defected = matches!(
                outcome.status,
                ExchangeStatus::Aborted {
                    by: Role::Supplier,
                    ..
                }
            );
            let c_defected = matches!(
                outcome.status,
                ExchangeStatus::Aborted {
                    by: Role::Consumer,
                    ..
                }
            );
            self.feedback(
                supplier,
                consumer,
                Conduct::from_honest(!c_defected),
                round,
                &mut rng_feedback,
            );
            self.feedback(
                consumer,
                supplier,
                Conduct::from_honest(!s_defected),
                round,
                &mut rng_feedback,
            );

            // Unprovoked campaign reports: random slander, targeted
            // smears and collusion-ring vouches.
            for observer in [supplier, consumer] {
                let profile = self.community.profile(observer);
                match profile.reporting.campaigns_now(&mut rng_feedback) {
                    Some(Campaign::RandomSlander) => {
                        // Exclusion-shift over n − 1: the observer can
                        // never draw itself, so every triggered slander
                        // is delivered. (A previous implementation drew
                        // from the full range and dropped observer
                        // collisions, silently losing 1/n of the
                        // configured slander volume.)
                        let raw = rng_feedback.index(n - 1);
                        let victim = PeerId(if raw >= observer.index() {
                            raw + 1
                        } else {
                            raw
                        } as u32);
                        self.gossip(
                            observer,
                            victim,
                            Conduct::Dishonest,
                            round,
                            &mut rng_feedback,
                        );
                    }
                    Some(Campaign::TargetedSlander) => {
                        if let Some(victim) =
                            pick_other(&self.coordination.victims, observer, &mut rng_feedback)
                        {
                            self.gossip(
                                observer,
                                victim,
                                Conduct::Dishonest,
                                round,
                                &mut rng_feedback,
                            );
                        }
                    }
                    Some(Campaign::Vouch) => {
                        if let Faction::Ring(ring) = profile.faction {
                            if let Some(member) = pick_other(
                                &self.coordination.rings[ring as usize],
                                observer,
                                &mut rng_feedback,
                            ) {
                                self.gossip(
                                    observer,
                                    member,
                                    Conduct::Honest,
                                    round,
                                    &mut rng_feedback,
                                );
                            }
                        }
                    }
                    None => {}
                }
            }
        }
        // Identity churn: each whitewasher sheds its identity at the end
        // of every `period`-th round — everyone else forgets it.
        for &(agent, period) in &self.coordination.whitewashers {
            if (round + 1).is_multiple_of(period) {
                self.community.whitewash(agent);
            }
        }
        // Graceful degradation: when this round's witness gossip fell
        // below the delivery quorum, the *next* round's predictions use
        // direct evidence only — silence must not read as absence.
        if self.cfg.chaos.is_some_and(|c| c.degrade) {
            let degraded = self.round_attempted > 0
                && (self.round_delivered as f64) < WITNESS_QUORUM * self.round_attempted as f64;
            self.community.set_degraded(degraded);
            self.round_attempted = 0;
            self.round_delivered = 0;
        }
        if self.cfg.track_trust_per_round {
            stats.trust_mae = Some(trust_mae_with_truth_threads(
                &self.community,
                &self.truth,
                threads,
            ));
        }
        stats
    }

    /// Records `observer`'s direct experience and gossips the (possibly
    /// distorted) report to random witnesses.
    fn feedback(
        &mut self,
        observer: PeerId,
        subject: PeerId,
        truth: Conduct,
        round: u64,
        rng: &mut SimRng,
    ) {
        self.community
            .record_direct(observer, subject, truth, round);
        let profile = self.community.profile(observer);
        let shaped = profile.reporting.report_about(
            truth,
            profile.faction,
            self.community.profile(subject).faction,
        );
        if let Some(shaped) = shaped {
            self.gossip(observer, subject, shaped, round, rng);
        }
    }

    /// Delivers a witness report about `subject` to exactly
    /// `min(gossip_witnesses, n − 2)` *distinct* random agents, never the
    /// witness or the subject themselves. Returns the delivery targets.
    ///
    /// (A previous implementation drew targets with replacement and
    /// skipped collisions, silently under-delivering — increasingly often
    /// in small communities.)
    fn gossip(
        &mut self,
        witness: PeerId,
        subject: PeerId,
        conduct: Conduct,
        round: u64,
        rng: &mut SimRng,
    ) -> Vec<PeerId> {
        // The exclusion shift below assumes two distinct excluded ids;
        // with witness == subject it would skip an innocent agent.
        debug_assert_ne!(witness, subject, "gossip requires witness != subject");
        let n = self.community.len();
        let k = self.cfg.gossip_witnesses.min(n.saturating_sub(2));
        if k == 0 {
            return Vec::new();
        }
        // Sample from the n−2 eligible agents, then shift the raw draws
        // past the two excluded ids (in ascending order) to map them back
        // onto the full id range.
        let mut excluded = [witness.index(), subject.index()];
        excluded.sort_unstable();
        let targets: Vec<PeerId> = rng
            .sample_indices(n - 2, k)
            .into_iter()
            .map(|raw| {
                let mut t = raw;
                if t >= excluded[0] {
                    t += 1;
                }
                if t >= excluded[1] {
                    t += 1;
                }
                PeerId(t as u32)
            })
            .collect();
        for &target in &targets {
            self.transmit_report(
                target,
                WitnessReport {
                    witness,
                    subject,
                    conduct,
                    round,
                },
            );
        }
        // Sybil amplification: up to `fanout` clones from the witness's
        // cell echo the report under their own identities to the same
        // targets. No RNG is drawn, so populations without Sybils replay
        // bit-identical streams. (Each echo is its own emission on the
        // wire — the fault plane treats it like any other message.)
        if let Faction::Sybil { cell, fanout } = self.community.profile(witness).faction {
            let mut echoes = 0usize;
            let mut cursor = 0usize;
            while let Some(&clone) = self.coordination.cells[cell as usize].get(cursor) {
                cursor += 1;
                if echoes >= fanout as usize {
                    break;
                }
                if clone == witness || clone == subject {
                    continue;
                }
                echoes += 1;
                for &target in &targets {
                    if target == clone {
                        continue;
                    }
                    self.transmit_report(
                        target,
                        WitnessReport {
                            witness: clone,
                            subject,
                            conduct,
                            round,
                        },
                    );
                }
            }
        }
        targets
    }

    /// Sends one witness-report emission over the (possibly faulty)
    /// wire. Without a chaos plane this is a plain delivery — the exact
    /// pre-chaos path, no extra RNG draws, no sequence numbers burned.
    fn transmit_report(&mut self, target: PeerId, report: WitnessReport) {
        self.witness_attempted += 1;
        self.round_attempted += 1;
        let Some(plane) = self.plane else {
            if self.community.deliver_witness_report(target, report) {
                self.witness_delivered += 1;
                self.round_delivered += 1;
            }
            return;
        };
        let emission = self.gossip_seq;
        self.gossip_seq += 1;
        let at = Self::round_time(report.round);
        match plane.decide(report.witness.0, target.0, emission, at) {
            FaultFate::Deliver { duplicates, .. } => {
                // Every wire copy arrives; the (issuer, seq) dedup
                // admits only the first into the target's model.
                for _ in 0..=duplicates {
                    self.deliver_once(emission, target, report);
                }
            }
            FaultFate::Lost | FaultFate::Blocked => {
                if self.cfg.chaos.is_some_and(|c| c.retry) {
                    self.schedule_retx(
                        RetxEntry {
                            emission,
                            target,
                            report,
                            attempts: 1,
                        },
                        at,
                    );
                }
            }
        }
    }

    /// Delivers one wire copy, deduplicated on `(issuer, emission)` so
    /// plane duplicates and late retransmissions never double-count a
    /// report's feedback effects.
    fn deliver_once(&mut self, emission: u64, target: PeerId, report: WitnessReport) {
        if !self.seen.insert((report.witness.0, emission)) {
            return;
        }
        if self.community.deliver_witness_report(target, report) {
            self.witness_delivered += 1;
            self.round_delivered += 1;
        }
    }

    /// Queues a retransmission after the emission's backoff delay
    /// (deterministic jitter keyed on the emission sequence), bounded
    /// by the queue capacity.
    fn schedule_retx(&mut self, entry: RetxEntry, now: SimTime) {
        if self.retx.len() >= RETX_QUEUE_CAP {
            self.retx_overflow += 1;
            return;
        }
        let wait = RETX_POLICY.timeout(entry.attempts, entry.emission);
        self.retx.push(now + wait, entry);
    }

    /// Drains every retransmission due by the start of `round`: each
    /// gets a fresh wire attempt through the plane, re-queueing on
    /// failure until the policy's attempt budget runs out.
    fn pump_retx(&mut self, round: u64) {
        let Some(plane) = self.plane else { return };
        let now = Self::round_time(round);
        while self.retx.peek_time().is_some_and(|t| t <= now) {
            let (due, mut entry) = self.retx.pop().expect("peeked entry");
            let wire_seq = self.gossip_seq;
            self.gossip_seq += 1;
            match plane.decide(entry.report.witness.0, entry.target.0, wire_seq, due) {
                FaultFate::Deliver { .. } => {
                    self.deliver_once(entry.emission, entry.target, entry.report);
                }
                FaultFate::Lost | FaultFate::Blocked => {
                    entry.attempts += 1;
                    if RETX_POLICY.allows(entry.attempts) {
                        self.schedule_retx(entry, due);
                    } else {
                        self.retx_overflow += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg(strategy: Strategy) -> MarketConfig {
        MarketConfig {
            n_agents: 40,
            rounds: 8,
            sessions_per_round: 40,
            strategy,
            workload: Workload::FileSharing,
            ..MarketConfig::default()
        }
    }

    /// The distinct-consumer rejection loop in `draw_sessions` can only
    /// terminate with at least two agents; the constructor must reject
    /// degenerate communities up front instead of hanging.
    #[test]
    #[should_panic(expected = "n_agents must be ≥ 2")]
    fn single_agent_community_rejected() {
        MarketSim::new(MarketConfig {
            n_agents: 1,
            ..MarketConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "n_agents must be ≥ 2")]
    fn empty_community_rejected() {
        MarketSim::new(MarketConfig {
            n_agents: 0,
            ..MarketConfig::default()
        });
    }

    #[test]
    fn deterministic_runs() {
        let a = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        let b = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        assert_eq!(a, b, "same seed must reproduce the full report");
    }

    #[test]
    fn thread_count_never_changes_the_report() {
        let reference = MarketSim::new(MarketConfig {
            threads: 1,
            ..smoke_cfg(Strategy::TrustAware)
        })
        .run();
        for threads in [2, 3, 8] {
            let cfg = MarketConfig {
                threads,
                ..smoke_cfg(Strategy::TrustAware)
            };
            let report = MarketSim::new(cfg).run();
            assert_eq!(report, reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn safe_only_never_trades_positive_cost_workloads() {
        let report = MarketSim::new(smoke_cfg(Strategy::SafeOnly)).run();
        assert_eq!(report.completed, 0);
        assert_eq!(report.no_trade, report.sessions);
        assert_eq!(report.total_welfare, 0.0);
    }

    #[test]
    fn trust_aware_trades_and_learns() {
        let report = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        assert!(report.completed > 0, "trust-aware must enable trades");
        assert!(
            report.final_rank_accuracy > 0.6,
            "models should separate honest from dishonest: {}",
            report.final_rank_accuracy
        );
        // Honest agents end up net positive in aggregate.
        assert!(report.honest_gain > 0.0);
    }

    #[test]
    fn deliver_first_bleeds_welfare_to_defectors() {
        let naive = MarketSim::new(smoke_cfg(Strategy::UnsafeDeliverFirst)).run();
        let aware = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        // The naive strategy completes trades with everyone, so dishonest
        // agents capture gains; honest losses exceed the trust-aware ones.
        assert!(naive.honest_losses > aware.honest_losses);
        assert!(naive.aborted > 0);
    }

    #[test]
    fn report_rates_consistent() {
        let r = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        assert_eq!(r.sessions, r.completed + r.aborted + r.no_trade);
        assert!((0.0..=1.0).contains(&r.completion_rate()));
        assert!((0.0..=1.0).contains(&r.no_trade_rate()));
        assert_eq!(r.per_round.len(), 8);
        let sum: u64 = r.per_round.iter().map(|s| s.sessions).sum();
        assert_eq!(sum, r.sessions);
    }

    #[test]
    fn per_round_trust_tracking() {
        let cfg = MarketConfig {
            track_trust_per_round: true,
            ..smoke_cfg(Strategy::TrustAware)
        };
        let r = MarketSim::new(cfg).run();
        assert!(r.per_round.iter().all(|s| s.trust_mae.is_some()));
        let first = r.per_round.first().unwrap().trust_mae.unwrap();
        let last = r.per_round.last().unwrap().trust_mae.unwrap();
        assert!(
            last <= first,
            "trust error should not grow: {first} -> {last}"
        );
    }

    /// Regression test for the witness under-delivery bug: every gossip
    /// call must reach exactly `min(gossip_witnesses, n − 2)` *distinct*
    /// agents, none of them the witness or the subject. (The old
    /// implementation drew with replacement and dropped collisions, so
    /// small communities received fewer reports than configured.)
    #[test]
    fn gossip_delivers_exactly_min_distinct_witnesses() {
        for (n, k) in [(3, 1), (4, 3), (5, 10), (10, 8), (40, 3), (2, 5)] {
            let cfg = MarketConfig {
                n_agents: n,
                gossip_witnesses: k,
                ..MarketConfig::default()
            };
            let mut sim = MarketSim::new(cfg);
            let witness = PeerId(0);
            let subject = PeerId(1);
            let mut rng = SimRng::new(0x90551);
            let expected = k.min(n.saturating_sub(2));
            // Repeat: every single call must deliver the full quota.
            for round in 0..20 {
                let targets = sim.gossip(witness, subject, Conduct::Dishonest, round, &mut rng);
                assert_eq!(
                    targets.len(),
                    expected,
                    "n={n} k={k}: delivered {} of {expected}",
                    targets.len()
                );
                let mut uniq: Vec<u32> = targets.iter().map(|t| t.0).collect();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), expected, "n={n} k={k}: duplicate witnesses");
                assert!(
                    !targets.contains(&witness) && !targets.contains(&subject),
                    "n={n} k={k}: report delivered to a party"
                );
                assert!(targets.iter().all(|t| t.index() < n));
            }
            // The community actually received every report.
            assert_eq!(sim.community.pending_report_count(), expected * 20);
        }
    }

    /// Deliveries land in the community state (not just in the returned
    /// target list), and each distinct target queues one report per call.
    #[test]
    fn gossip_deliveries_reach_the_models() {
        let cfg = MarketConfig {
            n_agents: 6,
            gossip_witnesses: 4,
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(cfg);
        let mut rng = SimRng::new(1);
        assert_eq!(sim.community.pending_report_count(), 0);
        let targets = sim.gossip(PeerId(2), PeerId(5), Conduct::Honest, 3, &mut rng);
        assert_eq!(targets.len(), 4);
        assert_eq!(sim.community.pending_report_count(), 4);
    }

    use trustex_agents::adversary::Adversary;
    use trustex_agents::behavior::ExchangeBehavior;
    use trustex_agents::profile::AgentProfile;
    use trustex_agents::reporting::ReportingBehavior;
    use trustex_trust::model::TrustEstimate;

    /// Total observations (direct + witness, any conduct) recorded by
    /// `evaluator`'s mean model, and the dishonest subset — the
    /// delivery-counting probes the campaign tests rely on (the mean
    /// model ingests everything at full weight).
    fn mean_observations(sim: &MarketSim) -> (u64, u64) {
        let n = sim.community.len();
        let mut total = 0;
        let mut dishonest = 0;
        for evaluator in sim.community.agent_ids() {
            if let crate::population::AnyModel::Mean(m) = sim.community.model(evaluator) {
                for subject in 0..n as u32 {
                    let (h, t) = m.counts(PeerId(subject));
                    total += t;
                    dishonest += t - h;
                }
            } else {
                panic!("expected mean model");
            }
        }
        (total, dishonest)
    }

    /// Regression test for the slander under-delivery bug: with
    /// `slander_prob = 1` every traded session must land exactly two
    /// slander campaigns of full gossip fan-out — the old implementation
    /// drew the victim from the full id range and silently dropped the
    /// `victim == observer` collisions (1/n of all slanders; 25% in this
    /// 4-agent community).
    #[test]
    fn triggered_slander_is_always_delivered() {
        let slanderer = AgentProfile {
            exchange: ExchangeBehavior::Honest,
            reporting: ReportingBehavior::Slanderer { slander_prob: 1.0 },
            faction: Faction::None,
        };
        let cfg = MarketConfig {
            n_agents: 4,
            rounds: 4,
            sessions_per_round: 25,
            mix: PopulationMix::new(vec![(1.0, slanderer)]),
            model: ModelKind::Mean,
            workload: Workload::FileSharing,
            gossip_witnesses: 3,
            ..MarketConfig::default()
        };
        let k = 2; // min(3, n − 2)
        let mut sim = MarketSim::new(cfg);
        let threads = resolve_threads(1);
        let mut traded = 0;
        for round in 0..4 {
            let stats = sim.run_round(round, threads);
            traded += stats.completed + stats.aborted;
        }
        assert!(traded > 0, "the slander flood must not stop all trade");
        let (total, dishonest) = mean_observations(&sim);
        // All agents behave honestly in exchanges, so the only dishonest
        // observations are the slander deliveries: 2 campaigns × k
        // targets per traded session, none lost.
        assert_eq!(dishonest, traded * 2 * k, "slanders lost");
        // Direct (2) + truthful feedback gossip (2k) + slander (2k).
        assert_eq!(total, traded * (2 + 4 * k));
    }

    /// Colluder vouch campaigns fire every session and deliver full
    /// fan-out `Honest` reports for fellow ring members.
    #[test]
    fn colluder_vouches_are_delivered_at_full_fanout() {
        let colluder = AgentProfile {
            exchange: ExchangeBehavior::Honest,
            reporting: ReportingBehavior::Colluder { vouch_prob: 1.0 },
            faction: Faction::Ring(0),
        };
        let cfg = MarketConfig {
            n_agents: 6,
            rounds: 3,
            sessions_per_round: 20,
            mix: PopulationMix::new(vec![(1.0, colluder)]),
            model: ModelKind::Mean,
            workload: Workload::FileSharing,
            gossip_witnesses: 2,
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(cfg);
        let threads = resolve_threads(1);
        let mut traded = 0;
        for round in 0..3 {
            let stats = sim.run_round(round, threads);
            traded += stats.completed + stats.aborted;
        }
        let (total, dishonest) = mean_observations(&sim);
        assert_eq!(dishonest, 0, "an all-honest ring files no complaints");
        // Direct (2) + truthful cover gossip (2k) + vouch (2k).
        let k = 2;
        assert_eq!(total, traded * (2 + 4 * k));
    }

    /// Sybil clones echo each report under their own identities: the
    /// pending count grows by one report per (echo clone, target) pair,
    /// excluding targets that are the clone itself.
    #[test]
    fn sybil_cell_amplifies_gossip() {
        let sybil = AgentProfile {
            exchange: ExchangeBehavior::Honest,
            reporting: ReportingBehavior::Truthful,
            faction: Faction::Sybil { cell: 0, fanout: 2 },
        };
        let cfg = MarketConfig {
            n_agents: 6,
            gossip_witnesses: 3,
            mix: PopulationMix::new(vec![(1.0, sybil)]),
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(cfg);
        let mut rng = SimRng::new(5);
        let witness = PeerId(2);
        let subject = PeerId(5);
        let targets = sim.gossip(witness, subject, Conduct::Dishonest, 0, &mut rng);
        assert_eq!(targets.len(), 3);
        // Echo clones are the first two cell members ≠ witness/subject:
        // PeerId(0) and PeerId(1). Each re-delivers to every target
        // except itself.
        let clones = [PeerId(0), PeerId(1)];
        let expected_echoes: usize = clones
            .iter()
            .map(|c| targets.iter().filter(|t| *t != c).count())
            .sum();
        assert_eq!(
            sim.community.pending_report_count(),
            targets.len() + expected_echoes
        );
    }

    /// A whitewasher with period 1 sheds its identity at the end of every
    /// round: after the run, every honest agent's estimate of it is back
    /// at cold start despite rounds of defection.
    #[test]
    fn whitewashers_end_the_run_with_cold_reputations() {
        let whitewasher = AgentProfile {
            exchange: ExchangeBehavior::Rational { stake_micros: 0 },
            reporting: ReportingBehavior::Truthful,
            faction: Faction::Whitewash { period: 1 },
        };
        let cfg = MarketConfig {
            n_agents: 20,
            rounds: 6,
            sessions_per_round: 40,
            mix: PopulationMix::new(vec![(0.5, AgentProfile::honest()), (0.5, whitewasher)]),
            model: ModelKind::Beta,
            workload: Workload::FileSharing,
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(cfg);
        let threads = resolve_threads(1);
        for round in 0..6 {
            sim.run_round(round, threads);
        }
        let churners: Vec<PeerId> = sim
            .community
            .agent_ids()
            .filter(|a| sim.community.profile(*a).faction != Faction::None)
            .collect();
        assert!(!churners.is_empty());
        for evaluator in sim.community.agent_ids() {
            if sim.community.profile(evaluator).faction != Faction::None {
                continue;
            }
            for &churner in &churners {
                assert_eq!(
                    sim.community.predict(evaluator, churner),
                    TrustEstimate::new(0.5, 0.0),
                    "whitewashed identity must read cold"
                );
            }
        }
    }

    /// `report_rate_cap: Some(0)` silences the witness channel entirely:
    /// only direct experiences reach the models.
    #[test]
    fn rate_cap_zero_blocks_all_witness_reports() {
        let cfg = MarketConfig {
            n_agents: 10,
            rounds: 3,
            sessions_per_round: 20,
            mix: PopulationMix::new(vec![(1.0, AgentProfile::honest())]),
            model: ModelKind::Mean,
            workload: Workload::FileSharing,
            defense: DefenseConfig {
                report_rate_cap: Some(0),
                ..DefenseConfig::default()
            },
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(cfg);
        let threads = resolve_threads(1);
        let mut traded = 0;
        for round in 0..3 {
            let stats = sim.run_round(round, threads);
            traded += stats.completed + stats.aborted;
        }
        assert!(traded > 0);
        assert_eq!(sim.community.pending_report_count(), 0);
        let (total, _) = mean_observations(&sim);
        assert_eq!(total, traded * 2, "only direct experience may land");
    }

    /// The zoo mix at coordination zero is bit-identical to the manually
    /// assembled independent baseline: the coordination hooks (campaign
    /// dispatch, sybil echo, whitewash sweep, faction-aware shaping)
    /// consume no RNG and touch no state when every faction is `None`.
    #[test]
    fn zoo_at_zero_coordination_replays_the_independent_baseline() {
        let zoo = MarketSim::new(MarketConfig {
            mix: trustex_agents::adversary::zoo_mix(0.3, 0.0),
            ..smoke_cfg(Strategy::TrustAware)
        })
        .run();
        let baseline = MarketSim::new(MarketConfig {
            mix: independent_equivalent(0.3),
            ..smoke_cfg(Strategy::TrustAware)
        })
        .run();
        assert_eq!(zoo, baseline);
    }

    /// A zero-fault chaos plane must be a perfect no-op: the report —
    /// counters, welfare, accuracy, every per-round row — is bit-equal
    /// to the plane-absent run, with retry and degradation both armed.
    #[test]
    fn zero_fault_plane_is_bit_identical_to_no_plane() {
        let clean = MarketSim::new(smoke_cfg(Strategy::TrustAware)).run();
        for (retry, degrade) in [(false, false), (true, true)] {
            let chaotic = MarketSim::new(MarketConfig {
                chaos: Some(ChaosConfig {
                    fault: FaultConfig::default(),
                    retry,
                    degrade,
                }),
                ..smoke_cfg(Strategy::TrustAware)
            })
            .run();
            assert_eq!(
                chaotic, clean,
                "zero-fault plane (retry={retry}, degrade={degrade}) diverged"
            );
        }
    }

    /// A report blocked by a live partition is retransmitted on the
    /// backoff schedule and lands exactly once after the heal — never
    /// zero times (the retry straddles the heal) and never twice (the
    /// emission dedup suppresses late copies).
    #[test]
    fn retransmission_straddles_a_partition_heal_and_delivers_once() {
        let heal_at = SimTime::from_millis(5);
        let cfg = MarketConfig {
            n_agents: 8,
            chaos: Some(ChaosConfig {
                fault: FaultConfig {
                    partition: trustex_netsim::fault::PartitionSpec::Bisect { heal_at },
                    ..FaultConfig::default()
                },
                retry: true,
                degrade: false,
            }),
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(cfg);
        let plane = sim.plane.expect("chaos configured");
        // Find a cross-partition pair: blocked now, open after the heal.
        let (witness, target) = (0..8u32)
            .flat_map(|a| (0..8u32).map(move |b| (a, b)))
            .find(|&(a, b)| a != b && plane.blocked(a, b, SimTime::ZERO))
            .expect("a bisection always splits 8 peers");
        let report = WitnessReport {
            witness: PeerId(witness),
            subject: PeerId((witness + 1) % 8),
            conduct: Conduct::Dishonest,
            round: 0,
        };
        sim.transmit_report(PeerId(target), report);
        assert_eq!(sim.witness_attempted, 1);
        assert_eq!(sim.witness_delivered, 0, "blocked by the live partition");
        assert_eq!(sim.retx.len(), 1, "the lost emission must be queued");
        // Round 1 starts at 10 ms — past the heal; the pump drains the
        // backoff chain (retries before 5 ms stay blocked) to delivery.
        sim.pump_retx(1);
        assert_eq!(sim.witness_delivered, 1, "the retry must land post-heal");
        assert_eq!(sim.community.pending_report_count(), 1);
        assert_eq!(sim.retx.len(), 0);
        // Idempotent: nothing left to pump, nothing double-delivered.
        sim.pump_retx(2);
        assert_eq!(sim.witness_delivered, 1);
        assert_eq!(sim.community.pending_report_count(), 1);
    }

    /// Wire duplication delivers extra copies of the same emission; the
    /// `(issuer, emission)` dedup admits exactly one into the model.
    #[test]
    fn duplicated_wire_copies_are_suppressed_by_dedup() {
        let cfg = MarketConfig {
            n_agents: 6,
            chaos: Some(ChaosConfig {
                fault: FaultConfig {
                    duplicate: 1.0,
                    ..FaultConfig::default()
                },
                retry: false,
                degrade: false,
            }),
            ..MarketConfig::default()
        };
        let mut sim = MarketSim::new(cfg);
        for round in 0..5 {
            let report = WitnessReport {
                witness: PeerId(0),
                subject: PeerId(1),
                conduct: Conduct::Honest,
                round,
            };
            sim.transmit_report(PeerId(2), report);
        }
        assert_eq!(sim.witness_attempted, 5);
        assert_eq!(sim.witness_delivered, 5, "first copies all arrive");
        assert_eq!(
            sim.community.pending_report_count(),
            5,
            "duplicate wire copies must not double-deliver"
        );
    }

    /// The hand-built independent mix `zoo_mix(f, 0)` must degrade to:
    /// the same entries `Adversary::profile(0.0)` produces, in zoo order.
    fn independent_equivalent(f: f64) -> PopulationMix {
        let honest = 1.0 - f;
        let mut entries = vec![
            (honest * 0.9, AgentProfile::honest()),
            (honest * 0.1, AgentProfile::honest()),
        ];
        for archetype in Adversary::ALL {
            entries.push((f / 5.0, archetype.profile(0.0)));
        }
        PopulationMix::new(entries)
    }
}
