//! E14 bench: one faulty market arm per defense posture.
//!
//! Times a single chaos simulation (5% loss, bisect partition healing
//! mid-run, duplication) with the defenses off and on — the unit the
//! e14 sweep fans across the pool. The defended arm exercises the whole
//! fault stack: fate hashing, the retransmission queue, dedup and the
//! degradation gate; a regression in any of them shows up here before
//! it multiplies across the 44-arm table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_agents::profile::PopulationMix;
use trustex_market::prelude::*;
use trustex_netsim::fault::{FaultConfig, PartitionSpec};
use trustex_netsim::time::SimTime;

fn chaos_cfg(defended: bool) -> MarketConfig {
    let rounds = 8;
    MarketConfig {
        n_agents: 60,
        rounds,
        sessions_per_round: 60,
        workload: Workload::FileSharing,
        mix: PopulationMix::standard(0.3, 0.25),
        chaos: Some(ChaosConfig {
            fault: FaultConfig {
                loss: 0.05,
                duplicate: 0.01,
                extra_delay_max_us: 0,
                partition: PartitionSpec::Bisect {
                    heal_at: SimTime::from_micros(rounds / 2 * ROUND_SPAN.as_micros()),
                },
            },
            retry: defended,
            degrade: defended,
        }),
        threads: 1,
        seed: 0xE14,
        ..MarketConfig::default()
    }
}

fn bench_chaos_arm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14/chaos_arm");
    group.sample_size(20);
    for (label, defended) in [("undefended", false), ("defended", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &defended, |b, &d| {
            b.iter(|| {
                let report = MarketSim::new(chaos_cfg(d)).run();
                black_box((report.witness_delivery_rate(), report.total_welfare))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chaos_arm);
criterion_main!(benches);
