//! Exchange behaviours: how community members act *during* an exchange.
//!
//! Each behaviour adapts to the [`DefectionOracle`] interface of the
//! execution engine; the market simulation instantiates one oracle per
//! exchange from the agent's [`ExchangeBehavior`].

use serde::{Deserialize, Serialize};
use trustex_core::execute::{max_future_temptation, DefectionOracle};
use trustex_core::money::Money;
use trustex_core::sequence::Action;
use trustex_core::state::{Role, StateView};
use trustex_netsim::rng::SimRng;

/// How an agent behaves inside exchanges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExchangeBehavior {
    /// Always completes.
    Honest,
    /// Defects whenever its temptation exceeds its outside stake —
    /// the rational model the safe-exchange theory assumes. A stake of
    /// zero defects at the first strictly positive temptation.
    Rational {
        /// Outside (reputation) stake in micro-units.
        stake_micros: i64,
    },
    /// Defects at each positive-temptation opportunity with the given
    /// probability — a noisy cheater.
    Stochastic {
        /// Per-opportunity defection probability in `[0, 1]`.
        defect_prob: f64,
    },
    /// Cooperates for `honest_rounds` simulation rounds to build
    /// reputation, then behaves like `Rational { stake: 0 }` —
    /// the classic exit scam.
    ExitScam {
        /// Rounds of honest behaviour before turning.
        honest_rounds: u64,
    },
    /// Alternates phases on a fixed cycle: honest for `period −
    /// defect_rounds` rounds to rebuild reputation, then striking like
    /// `Rational { stake: 0 }` for `defect_rounds` rounds — the
    /// oscillating attacker that milks decayed or short-memory trust.
    Oscillating {
        /// Cycle length in rounds (≥ 1).
        period: u64,
        /// Defecting rounds at the end of each cycle (≤ `period`).
        defect_rounds: u64,
    },
}

impl ExchangeBehavior {
    /// Ground truth: the long-run probability this behaviour completes an
    /// exchange that exposes it to positive temptation (used as the
    /// reference value in trust-accuracy experiments).
    ///
    /// `Rational` agents depend on the offered temptation, so their
    /// reference value is taken at the zero-stake worst case; `ExitScam`
    /// is evaluated in its post-turn phase.
    pub fn true_cooperation_prob(self) -> f64 {
        match self {
            ExchangeBehavior::Honest => 1.0,
            ExchangeBehavior::Rational { stake_micros } => {
                if stake_micros > 0 {
                    1.0 // completes verified sequences within its stake
                } else {
                    0.0
                }
            }
            ExchangeBehavior::Stochastic { defect_prob } => 1.0 - defect_prob,
            ExchangeBehavior::ExitScam { .. } => 0.0,
            ExchangeBehavior::Oscillating {
                period,
                defect_rounds,
            } => {
                // Long-run honest share of the cycle.
                let period = period.max(1);
                (period - defect_rounds.min(period)) as f64 / period as f64
            }
        }
    }

    /// Whether the behaviour is fundamentally honest (never exploits).
    pub fn is_fundamentally_honest(self) -> bool {
        matches!(self, ExchangeBehavior::Honest)
            || matches!(self, ExchangeBehavior::Rational { stake_micros } if stake_micros > 0)
    }

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            ExchangeBehavior::Honest => "honest",
            ExchangeBehavior::Rational { .. } => "rational",
            ExchangeBehavior::Stochastic { .. } => "stochastic",
            ExchangeBehavior::ExitScam { .. } => "exit-scam",
            ExchangeBehavior::Oscillating { .. } => "oscillating",
        }
    }

    /// Builds the per-exchange oracle. `round` is the current simulation
    /// round (relevant for [`ExchangeBehavior::ExitScam`]); `rng` drives
    /// stochastic behaviours deterministically.
    pub fn oracle<'a>(self, round: u64, rng: &'a mut SimRng) -> BehaviorOracle<'a> {
        BehaviorOracle {
            behavior: self,
            round,
            rng,
        }
    }
}

/// The [`DefectionOracle`] adapter for an [`ExchangeBehavior`].
#[derive(Debug)]
pub struct BehaviorOracle<'a> {
    behavior: ExchangeBehavior,
    round: u64,
    rng: &'a mut SimRng,
}

impl DefectionOracle for BehaviorOracle<'_> {
    fn defects(
        &mut self,
        role: Role,
        temptation: Money,
        view: &StateView<'_>,
        upcoming: &[Action],
    ) -> bool {
        match self.behavior {
            ExchangeBehavior::Honest => false,
            ExchangeBehavior::Rational { stake_micros } => {
                // Schedule-aware: strike only at the temptation peak.
                temptation > Money::from_micros(stake_micros)
                    && temptation >= max_future_temptation(role, view, upcoming)
            }
            ExchangeBehavior::Stochastic { defect_prob } => {
                // Myopic: flips a coin at every profitable opportunity.
                temptation.is_positive() && self.rng.chance(defect_prob)
            }
            ExchangeBehavior::ExitScam { honest_rounds } => {
                self.round >= honest_rounds
                    && temptation.is_positive()
                    && temptation >= max_future_temptation(role, view, upcoming)
            }
            ExchangeBehavior::Oscillating {
                period,
                defect_rounds,
            } => {
                let period = period.max(1);
                let in_defect_phase = self.round % period >= period - defect_rounds.min(period);
                in_defect_phase
                    && temptation.is_positive()
                    && temptation >= max_future_temptation(role, view, upcoming)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_core::deal::Deal;
    use trustex_core::execute::execute;
    use trustex_core::execute::Honest as HonestOracle;
    use trustex_core::goods::Goods;
    use trustex_core::policy::PaymentPolicy;
    use trustex_core::safety::SafetyMargins;
    use trustex_core::scheduler::{schedule, Algorithm};
    use trustex_core::sequence::ExchangeSequence;

    fn deal() -> Deal {
        let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]).unwrap();
        Deal::new(goods, Money::from_units(9)).unwrap()
    }

    fn plan(deal: &Deal, eps_units: i64) -> ExchangeSequence {
        let m = SafetyMargins::symmetric(Money::from_units(eps_units)).unwrap();
        schedule(deal, m, PaymentPolicy::Lazy, Algorithm::Greedy)
            .unwrap()
            .into_sequence()
    }

    #[test]
    fn honest_completes() {
        let d = deal();
        let seq = plan(&d, 2);
        let mut rng = SimRng::new(1);
        let mut consumer = ExchangeBehavior::Honest.oracle(0, &mut rng);
        let out = execute(&d, &seq, &mut HonestOracle, &mut consumer);
        assert!(out.status.is_completed());
    }

    #[test]
    fn zero_stake_rational_defects() {
        let d = deal();
        let seq = plan(&d, 2);
        let mut rng = SimRng::new(1);
        let mut consumer = ExchangeBehavior::Rational { stake_micros: 0 }.oracle(0, &mut rng);
        let out = execute(&d, &seq, &mut HonestOracle, &mut consumer);
        assert!(!out.status.is_completed());
    }

    #[test]
    fn sufficient_stake_rational_completes() {
        let d = deal();
        let seq = plan(&d, 2);
        let mut rng = SimRng::new(1);
        let mut consumer = ExchangeBehavior::Rational {
            stake_micros: Money::from_units(2).as_micros(),
        }
        .oracle(0, &mut rng);
        let out = execute(&d, &seq, &mut HonestOracle, &mut consumer);
        assert!(out.status.is_completed());
    }

    #[test]
    fn stochastic_defects_at_rate() {
        let d = deal();
        let seq = plan(&d, 2);
        let mut rng = SimRng::new(7);
        let mut completions = 0;
        let trials = 500;
        for _ in 0..trials {
            let mut consumer =
                ExchangeBehavior::Stochastic { defect_prob: 0.5 }.oracle(0, &mut rng);
            let out = execute(&d, &seq, &mut HonestOracle, &mut consumer);
            if out.status.is_completed() {
                completions += 1;
            }
        }
        let rate = completions as f64 / trials as f64;
        // The lazy schedule offers a handful of positive-temptation
        // opportunities; completion rate must sit strictly between the
        // extremes and well below 1.
        assert!(rate > 0.05 && rate < 0.7, "completion rate {rate}");
    }

    #[test]
    fn exit_scam_turns() {
        let d = deal();
        let seq = plan(&d, 2);
        let behavior = ExchangeBehavior::ExitScam { honest_rounds: 10 };
        let mut rng = SimRng::new(1);
        let mut early = behavior.oracle(5, &mut rng);
        assert!(execute(&d, &seq, &mut HonestOracle, &mut early)
            .status
            .is_completed());
        let mut rng = SimRng::new(1);
        let mut late = behavior.oracle(10, &mut rng);
        assert!(!execute(&d, &seq, &mut HonestOracle, &mut late)
            .status
            .is_completed());
    }

    #[test]
    fn oscillator_strikes_only_in_its_defect_phase() {
        let d = deal();
        let seq = plan(&d, 2);
        let behavior = ExchangeBehavior::Oscillating {
            period: 8,
            defect_rounds: 3,
        };
        // Rounds 0..5 of each cycle are honest, 5..8 defect.
        for round in 0..16u64 {
            let mut rng = SimRng::new(1);
            let mut oracle = behavior.oracle(round, &mut rng);
            let completed = execute(&d, &seq, &mut HonestOracle, &mut oracle)
                .status
                .is_completed();
            assert_eq!(
                completed,
                round % 8 < 5,
                "round {round}: completed={completed}"
            );
        }
        assert!((behavior.true_cooperation_prob() - 5.0 / 8.0).abs() < 1e-12);
        assert!(!behavior.is_fundamentally_honest());
        assert_eq!(behavior.label(), "oscillating");
    }

    #[test]
    fn ground_truth_labels() {
        assert_eq!(ExchangeBehavior::Honest.true_cooperation_prob(), 1.0);
        assert_eq!(
            ExchangeBehavior::Stochastic { defect_prob: 0.3 }.true_cooperation_prob(),
            0.7
        );
        assert_eq!(
            ExchangeBehavior::ExitScam { honest_rounds: 5 }.true_cooperation_prob(),
            0.0
        );
        assert!(ExchangeBehavior::Honest.is_fundamentally_honest());
        assert!(ExchangeBehavior::Rational {
            stake_micros: 1_000_000
        }
        .is_fundamentally_honest());
        assert!(!ExchangeBehavior::Rational { stake_micros: 0 }.is_fundamentally_honest());
        assert_eq!(ExchangeBehavior::Honest.label(), "honest");
        assert_eq!(
            ExchangeBehavior::ExitScam { honest_rounds: 1 }.label(),
            "exit-scam"
        );
    }
}
