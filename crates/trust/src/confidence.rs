//! Confidence measures for trust estimates.
//!
//! Mui et al. (the paper's reference \[3\]) quantify the reliability of a
//! reputation estimate through the Chernoff bound: how many samples are
//! needed so that the empirical mean is within `ε` of the true Bernoulli
//! parameter with probability `1 − δ`. This module provides that sample
//! size and the inverse mapping from evidence mass to a `[0, 1)`
//! confidence score used by the models.

/// Number of i.i.d. samples sufficient for `P(|θ̂ − θ| > eps) ≤ delta`
/// by the (additive) Chernoff–Hoeffding bound:
/// `m ≥ ln(2/δ) / (2 ε²)`.
///
/// # Panics
///
/// Panics unless `0 < eps < 1` and `0 < delta < 1`.
///
/// # Examples
///
/// ```
/// use trustex_trust::confidence::chernoff_sample_size;
/// // ±0.1 at 95%: 185 samples.
/// assert_eq!(chernoff_sample_size(0.1, 0.05), 185);
/// ```
pub fn chernoff_sample_size(eps: f64, delta: f64) -> u64 {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as u64
}

/// Half-width of the Chernoff–Hoeffding confidence interval after `m`
/// samples at confidence `1 − delta`: `ε = sqrt(ln(2/δ) / (2 m))`.
///
/// Returns `1.0` (vacuous) for `m == 0`.
///
/// # Panics
///
/// Panics unless `0 < delta < 1`.
pub fn chernoff_half_width(m: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    if m <= 0.0 {
        return 1.0;
    }
    ((2.0 / delta).ln() / (2.0 * m)).sqrt().min(1.0)
}

/// Pseudo-count of evidence at which confidence reaches ½.
pub const CONFIDENCE_HALF_MASS: f64 = 2.0;

/// Maps a (possibly fractional) evidence mass to a confidence score in
/// `[0, 1)` via the saturating ratio `m / (m + 2)`.
///
/// The strict Chernoff complement (`1 − ε(m)`) stays at zero until
/// several observations and needs ~185 for 0.9 — far too conservative
/// for communities whose members meet tens of times. The saturating
/// ratio preserves the same qualitative behaviour (0 with no evidence,
/// monotone, → 1) with a practical ramp: 1 observation → ⅓,
/// 5 → ~0.71, 20 → ~0.91. Callers needing the rigorous bound use
/// [`chernoff_half_width`] directly.
pub fn evidence_confidence(mass: f64) -> f64 {
    let m = mass.max(0.0);
    m / (m + CONFIDENCE_HALF_MASS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_size_monotone_in_precision() {
        assert!(chernoff_sample_size(0.05, 0.05) > chernoff_sample_size(0.1, 0.05));
        assert!(chernoff_sample_size(0.1, 0.01) > chernoff_sample_size(0.1, 0.05));
    }

    #[test]
    fn sample_size_known_value() {
        // ln(40)/(2·0.01) = 184.44… -> 185.
        assert_eq!(chernoff_sample_size(0.1, 0.05), 185);
    }

    #[test]
    #[should_panic(expected = "eps")]
    fn sample_size_rejects_bad_eps() {
        chernoff_sample_size(0.0, 0.05);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn sample_size_rejects_bad_delta() {
        chernoff_sample_size(0.1, 1.0);
    }

    #[test]
    fn half_width_shrinks_with_samples() {
        let w10 = chernoff_half_width(10.0, 0.05);
        let w100 = chernoff_half_width(100.0, 0.05);
        assert!(w100 < w10);
        assert_eq!(chernoff_half_width(0.0, 0.05), 1.0);
    }

    #[test]
    fn half_width_inverse_of_sample_size() {
        // At the sample size for (eps, delta), the half width is ≤ eps.
        let m = chernoff_sample_size(0.1, 0.05);
        assert!(chernoff_half_width(m as f64, 0.05) <= 0.1 + 1e-9);
    }

    #[test]
    fn confidence_bounds_and_monotonicity() {
        assert_eq!(evidence_confidence(0.0), 0.0);
        assert_eq!(evidence_confidence(-3.0), 0.0);
        let mut last = 0.0;
        for m in [1.0, 2.0, 5.0, 10.0, 50.0, 200.0, 1e6] {
            let c = evidence_confidence(m);
            assert!((0.0..1.0).contains(&c), "c={c}");
            assert!(c >= last);
            last = c;
        }
        assert!(last > 0.99);
    }
}
