//! E9 bench: cost of the O(n²) trust-metric sweep used by the
//! convergence experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_agents::profile::PopulationMix;
use trustex_market::metrics::{rank_accuracy, trust_mae};
use trustex_market::population::{Community, ModelKind};
use trustex_netsim::rng::SimRng;
use trustex_trust::model::{Conduct, PeerId};

fn educated_community(n: usize) -> Community {
    let mut rng = SimRng::new(13);
    let mut c = Community::new(
        n,
        &PopulationMix::standard(0.3, 0.0),
        ModelKind::Beta,
        &mut rng,
    );
    let ids: Vec<PeerId> = c.agent_ids().collect();
    for &e in &ids {
        for &s in &ids {
            if e != s {
                c.record_direct(e, s, Conduct::from_honest(c.is_honest(s)), 0);
            }
        }
    }
    c
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9/metrics");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let community = educated_community(n);
        group.bench_with_input(
            BenchmarkId::new("trust_mae", n),
            &community,
            |b, community| b.iter(|| black_box(trust_mae(community))),
        );
    }
    let community = educated_community(50);
    group.bench_function("rank_accuracy/50", |b| {
        b.iter(|| black_box(rank_accuracy(&community)))
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
