//! A stable discrete-event queue.
//!
//! [`EventQueue`] orders events by [`SimTime`]; events scheduled for the
//! same instant are delivered in insertion order (FIFO), which keeps
//! simulations deterministic without relying on heap tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry; ordered so the `BinaryHeap` becomes a min-heap on
/// `(time, seq)`.
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event queue with a monotone virtual clock.
///
/// Popping an event advances [`EventQueue::now`] to the event's timestamp.
/// Scheduling an event in the past is rejected (see [`EventQueue::push`]).
///
/// # Examples
///
/// ```
/// use trustex_netsim::event::EventQueue;
/// use trustex_netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(10), 'b');
/// q.push(SimTime::from_millis(10), 'c'); // same instant: FIFO
/// q.push(SimTime::from_millis(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            pushed: 0,
            popped: 0,
        }
    }

    /// Current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events pushed over the queue's lifetime.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total events popped over the queue's lifetime.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — discrete-event
    /// simulations must never schedule into the past.
    pub fn push(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Schedules `payload` at `delay` after the current clock.
    pub fn push_after(&mut self, delay: SimTime, payload: E) {
        let at = self
            .now
            .checked_add(delay)
            .expect("simulation clock overflow");
        self.push(at, payload);
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.payload))
    }

    /// Drops all pending events, keeping the clock where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), 3);
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(20), 2);
        let got: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let got: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), ());
        q.pop();
        q.push(SimTime::from_micros(5), ());
    }

    #[test]
    fn push_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(100), "first");
        q.pop();
        q.push_after(SimTime::from_micros(50), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(150));
    }

    #[test]
    fn counters_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::from_micros(1), ());
        q.push(SimTime::from_micros(2), ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    /// Fault-plane reorder determinism: messages delayed by the plane's
    /// hash-uniform jitter drain in exactly the same order no matter
    /// what order they were pushed in (distinct timestamps), and the
    /// drained sequence is reproducible run-to-run because the jitter
    /// itself is a pure function of the message sequence number.
    #[test]
    fn jitter_reorder_is_deterministic_across_insertion_orders() {
        use crate::fault::{FaultConfig, FaultFate, FaultPlane};
        let plane = FaultPlane::new(
            0x0E0E,
            FaultConfig {
                // A wide jitter band over a distinct-per-message base
                // guarantees genuine reordering with unique timestamps.
                extra_delay_max_us: 10_000,
                ..FaultConfig::default()
            },
        );
        let arrivals: Vec<(SimTime, u64)> = (0..64u64)
            .map(|seq| {
                let extra = match plane.decide(0, 1, seq, SimTime::ZERO) {
                    FaultFate::Deliver { extra_delay, .. } => extra_delay,
                    other => panic!("unexpected fate {other:?}"),
                };
                (SimTime::from_micros(seq * 1_000) + extra, seq)
            })
            .collect();
        // Jitter (≤10ms) dwarfs the send spacing (1ms), so arrivals
        // genuinely reorder; distinct timestamps keep FIFO tie-breaking
        // out of the picture so every insertion order must agree.
        let mut times: Vec<SimTime> = arrivals.iter().map(|&(t, _)| t).collect();
        times.sort();
        times.dedup();
        assert_eq!(times.len(), arrivals.len(), "timestamp collision");
        assert!(
            arrivals.windows(2).any(|w| w[0].0 > w[1].0),
            "no reordering happened"
        );
        let drain = |order: &[usize]| -> Vec<u64> {
            let mut q = EventQueue::new();
            for &i in order {
                q.push(arrivals[i].0, arrivals[i].1);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
        };
        let forward: Vec<usize> = (0..arrivals.len()).collect();
        let backward: Vec<usize> = (0..arrivals.len()).rev().collect();
        let strided: Vec<usize> = (0..arrivals.len())
            .map(|i| (i * 7) % arrivals.len())
            .collect();
        let reference = drain(&forward);
        assert_eq!(drain(&backward), reference);
        assert_eq!(drain(&strided), reference);
        // And the reference really is a time-sort of the arrivals.
        let mut sorted = arrivals.clone();
        sorted.sort();
        assert_eq!(
            reference,
            sorted.iter().map(|&(_, s)| s).collect::<Vec<_>>()
        );
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(30), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop(), None);
    }
}
