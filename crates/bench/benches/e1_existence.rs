//! E1 bench: cost of deciding safe-sequence existence and computing the
//! minimal required margin across valuation shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_core::curves::{generate, CurveParams, CurveShape};
use trustex_core::scheduler::min_required_margin;
use trustex_market::experiments::{e1_existence, Scale};
use trustex_netsim::rng::SimRng;

fn bench_min_margin(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1/min_required_margin");
    let mut rng = SimRng::new(1);
    for shape in CurveShape::ALL {
        let mut draw = || rng.f64();
        let goods = generate(
            shape,
            CurveParams {
                n_items: 32,
                ..CurveParams::default()
            },
            &mut draw,
        )
        .expect("non-empty");
        group.bench_with_input(
            BenchmarkId::from_parameter(shape.label()),
            &goods,
            |b, goods| b.iter(|| black_box(min_required_margin(goods))),
        );
    }
    group.finish();
}

fn bench_full_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1/table");
    group.sample_size(10);
    group.bench_function("smoke", |b| {
        b.iter(|| black_box(e1_existence(Scale::Smoke)))
    });
    group.finish();
}

criterion_group!(benches, bench_min_margin, bench_full_table);
criterion_main!(benches);
