//! # trustex-core — trust-aware safe exchange
//!
//! A from-scratch Rust implementation of the core contribution of
//! *Trust-Aware Cooperation* (Despotovic, Aberer, Hauswirth; ICDCS 2002):
//! scheduling exchanges of goods for money so that, after every atomic
//! step, neither party has a rational incentive to walk away — and, when
//! no such *fully safe* schedule exists, relaxing the safety window by
//! trust-derived exposure bounds so that sufficiently trustworthy
//! partners can still trade.
//!
//! ## The model in one paragraph
//!
//! A supplier sells a set of discrete items to a consumer for an agreed
//! total price `P` ([`deal::Deal`]). Both parties know the supplier's
//! per-item cost `Vs(x)` and the consumer's per-item value `Vc(x)`
//! ([`goods::Goods`]). Deliveries are item-at-a-time; payments may be
//! chunked arbitrarily ([`sequence::Action`]). After every step the
//! outstanding payment must stay within a window derived from the
//! remaining cost and remaining value ([`safety`]); the window may be
//! widened by the exposure bounds `ε_s`, `ε_c` each party accepts based
//! on its trust in the other ([`safety::SafetyMargins`]). The
//! [`scheduler`] finds an admissible schedule whenever one exists and
//! reports the minimal total margin otherwise; the [`sequence`] verifier
//! independently replays and checks any schedule; the [`execute`] engine
//! runs a schedule against behavioural models of the two parties.
//!
//! ## Quick start
//!
//! ```
//! use trustex_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three items: (supplier cost, consumer value) each.
//! let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)])?;
//! let deal = Deal::with_split_surplus(goods)?;
//!
//! // Fully safe exchange is impossible (positive delivery costs)…
//! assert!(min_required_margin(deal.goods()).is_positive());
//!
//! // …but partners who tolerate 1.0 of exposure each can trade safely:
//! let margins = SafetyMargins::symmetric(Money::from_units(1))?;
//! let plan = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)?;
//!
//! // Execution between honest parties completes and realizes the gains.
//! let outcome = execute(&deal, plan.sequence(), &mut Honest, &mut Honest);
//! assert!(outcome.status.is_completed());
//! assert_eq!(outcome.welfare(), deal.goods().total_surplus());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curves;
pub mod deal;
pub mod execute;
pub mod game;
pub mod goods;
pub mod money;
pub mod policy;
pub mod safety;
pub mod scheduler;
pub mod sequence;
pub mod state;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::curves::{generate as generate_goods, CurveParams, CurveShape};
    pub use crate::deal::{Deal, DealError};
    pub use crate::execute::{
        execute, max_future_temptation, DefectionOracle, ExchangeOutcome, ExchangeStatus, Honest,
        RationalDefector,
    };
    pub use crate::game::{analyze as analyze_game, min_supporting_stake, Equilibrium, Stakes};
    pub use crate::goods::{Goods, GoodsError, Item, ItemId};
    pub use crate::money::Money;
    pub use crate::policy::PaymentPolicy;
    pub use crate::safety::{SafetyCheck, SafetyMargins, SafetyWindow};
    pub use crate::scheduler::{
        feasible, min_required_margin, schedule, Algorithm, ScheduleError, Scheduler,
    };
    pub use crate::sequence::{verify, Action, ExchangeSequence, VerifiedSequence, VerifyError};
    pub use crate::state::{ExchangeState, Progress, Role, StateView};
}
