//! Offline stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no access to crates.io, and
//! nothing in the workspace actually serializes today — the `Serialize` /
//! `Deserialize` derives only mark types as wire-ready for future
//! backends. These macros therefore accept the same syntax (including
//! `#[serde(...)]` field/container attributes) and expand to nothing.
//! Swapping the real serde back in is a two-line change in the vendored
//! `serde` crate's manifest.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
