//! Storage-substrate experiments: P-Grid routing/churn (E6) and the
//! ablation matrix (E10).

use super::community::run_arms;
use super::Scale;
use crate::population::ModelKind;
use crate::sim::MarketConfig;
use crate::strategy::Strategy;
use crate::table::Table;
use crate::workload::Workload;
use trustex_agents::profile::PopulationMix;
use trustex_core::policy::PaymentPolicy;
use trustex_netsim::churn::{ChurnModel, ChurnTimeline};
use trustex_netsim::net::{NetConfig, Network};
use trustex_netsim::pool::parallel_map;
use trustex_netsim::rng::SimRng;
use trustex_netsim::time::SimTime;
use trustex_reputation::lifecycle::{Lifecycle, LifecycleConfig};
use trustex_reputation::pgrid::{PGrid, PGridConfig};
use trustex_reputation::record::key_for_peer;
use trustex_trust::model::PeerId;

/// Outcome of one measurement arm over a shared base grid.
struct GridArm {
    mean_hops: f64,
    msgs_per_query: f64,
    success: f64,
    /// Success rate after [`PGrid::repair`], over the *identical* query
    /// sequence — `None` unless the arm asked for the repair pass.
    success_repaired: Option<f64>,
    /// Fraction of peers admitted during a join/leave arm whose path
    /// reached the configured depth — `None` outside churn arms.
    join_maturity: Option<f64>,
}

impl GridArm {
    /// The all-failed arm (nobody alive to originate queries).
    fn dead(measure_repair: bool) -> GridArm {
        GridArm {
            mean_hops: 0.0,
            msgs_per_query: 0.0,
            success: 0.0,
            success_repaired: measure_repair.then_some(0.0),
            join_maturity: None,
        }
    }
}

/// Builds one base grid and seeds it with complaints — the expensive,
/// availability-independent part of an E6 rung, shared by every arm at
/// that population (the old layout rebuilt the same grid once per arm,
/// tripling the dominant cost of the experiment).
pub(crate) fn build_base(n: usize, replication: usize, seed: u64) -> PGrid {
    let mut rng = SimRng::new(seed);
    let cfg = PGridConfig::for_population(n, replication);
    let mut grid = PGrid::build(n, cfg, &mut rng);
    let mut net = Network::new(NetConfig::default());
    // Seed some complaints so queries return data.
    for i in 0..(n / 2) {
        let about = PeerId((i % n) as u32);
        let key = key_for_peer(about, cfg.key_bits);
        let item = trustex_reputation::record::Complaint {
            by: PeerId(((i + 1) % n) as u32),
            about,
            round: 0,
        };
        grid.insert(i % n, key, item, None, &mut net, &mut rng);
    }
    grid
}

/// Replays `queries` lookups (subjects and origins drawn from `qrng`)
/// and tallies (successes, total hops); message counts accrue in `net`.
fn run_queries(
    grid: &PGrid,
    alive: Option<&[bool]>,
    live_origins: &[usize],
    queries: usize,
    qrng: &mut SimRng,
    net: &mut Network,
) -> (usize, u64) {
    let n = grid.len();
    let cfg = grid.config();
    let mut success = 0usize;
    let mut hops_sum = 0u64;
    for _ in 0..queries {
        let subject = PeerId(qrng.index(n) as u32);
        let key = key_for_peer(subject, cfg.key_bits);
        let origin = live_origins[qrng.index(live_origins.len())];
        let result = grid.query(origin, key, alive, net, qrng);
        if result.is_resolved() {
            success += 1;
            hops_sum += result.hops as u64;
        }
    }
    (success, hops_sum)
}

/// One availability arm over a shared base grid: snapshot a churn mask,
/// replay the query workload (read-only on the base — no rebuild, no
/// clone), and optionally repair a cloned grid against the mask and
/// replay the *same* sequence — so the repaired column differs from the
/// plain one only by the repair, not by the scenario.
fn availability_arm(
    base: &PGrid,
    down_fraction: f64,
    measure_repair: bool,
    queries: usize,
    seed: u64,
) -> GridArm {
    let mut rng = SimRng::new(seed);
    let n = base.len();

    // Availability mask via a churn timeline snapshot. The means are
    // floored so `down_fraction` 0.0 and 1.0 stay valid models.
    let alive: Option<Vec<bool>> = if down_fraction > 0.0 {
        let model = ChurnModel::new((1.0 - down_fraction).max(1e-6), down_fraction.max(1e-6));
        let tl = ChurnTimeline::generate(n, SimTime::from_secs(10), model, &mut rng);
        Some((0..n).map(|i| tl.is_up(i, SimTime::from_secs(5))).collect())
    } else {
        None
    };

    // Query origins are drawn from the live peers, enumerated once —
    // the old rejection-sampling loop spun forever when (nearly) every
    // peer was down. With nobody up, the whole query set fails.
    let live_origins: Vec<usize> = match alive.as_deref() {
        Some(mask) => (0..n).filter(|&i| mask[i]).collect(),
        None => (0..n).collect(),
    };
    if live_origins.is_empty() {
        return GridArm::dead(measure_repair);
    }

    // The query workload runs off a fork so the post-repair pass can
    // replay the identical sequence.
    let qrng = rng.fork(0xE6);
    let mut net = Network::new(NetConfig::default());
    let (success, hops_sum) = run_queries(
        base,
        alive.as_deref(),
        &live_origins,
        queries,
        &mut qrng.clone(),
        &mut net,
    );
    let msgs_per_query = net.total_sent() as f64 / queries as f64;
    let mean_hops = hops_sum as f64 / success.max(1) as f64;

    let success_repaired = measure_repair.then(|| {
        let mut grid = base.clone();
        if let Some(mask) = alive.as_deref() {
            grid.repair(mask, 4 * n, &mut rng);
        }
        let (repaired, _) = run_queries(
            &grid,
            alive.as_deref(),
            &live_origins,
            queries,
            &mut qrng.clone(),
            &mut net,
        );
        repaired as f64 / queries as f64
    });

    GridArm {
        mean_hops,
        msgs_per_query,
        success: success as f64 / queries as f64,
        success_repaired,
        join_maturity: None,
    }
}

/// The join/leave arm: true membership churn, not an availability mask.
/// ~5 % of the population requests admission (paced by the lifecycle
/// layer's bounded admission rate and backoff) while another ~5 % goes
/// silent and is evicted as stale; the query workload then runs over
/// the post-churn overlay. Success counts only live-origin lookups, and
/// `join_maturity` reports how completely the newcomers descended to
/// the configured depth.
fn join_leave_arm(base: &PGrid, queries: usize, seed: u64) -> GridArm {
    let mut rng = SimRng::new(seed);
    let mut grid = base.clone();
    let n = grid.len();
    let wave = (n / 20).max(2); // ~5% joins, ~5% leaves
    let per_tick = wave.div_ceil(8).max(1);
    let mut lc = Lifecycle::new(
        LifecycleConfig {
            max_admissions_per_tick: per_tick,
            stale_after: 2,
            max_evictions_per_tick: per_tick,
            ..LifecycleConfig::default()
        },
        n,
    );
    for _ in 0..wave {
        lc.request_join();
    }
    // The leave side: a random ~5% of the bootstrap population goes
    // silent (never touched), crossing the staleness horizon at tick 3.
    let mut silent = vec![false; n];
    for i in rng.sample_indices(n, wave) {
        silent[i] = true;
    }
    for _ in 0..12 {
        for p in 0..grid.len() {
            if grid.is_live(p) && silent.get(p) != Some(&true) {
                lc.touch(p);
            }
        }
        lc.step(&mut grid, &mut rng);
    }

    let admitted = grid.len() - n;
    let mature = (n..grid.len())
        .filter(|&i| grid.is_live(i) && grid.path(i).len() == grid.config().max_depth)
        .count();
    let live_origins: Vec<usize> = (0..grid.len()).filter(|&i| grid.is_live(i)).collect();
    if live_origins.is_empty() {
        return GridArm::dead(false);
    }
    let mut net = Network::new(NetConfig::default());
    let mut qrng = rng.fork(0xE6);
    let (success, hops_sum) = run_queries(&grid, None, &live_origins, queries, &mut qrng, &mut net);
    GridArm {
        mean_hops: hops_sum as f64 / success.max(1) as f64,
        msgs_per_query: net.total_sent() as f64 / queries as f64,
        success: success as f64 / queries as f64,
        success_repaired: None,
        join_maturity: Some(mature as f64 / admitted.max(1) as f64),
    }
}

/// Compatibility shape of the old all-in-one measurement (used by the
/// E10 replication ablation): build a private base and run a single
/// availability arm over it.
fn measure_grid(
    n: usize,
    replication: usize,
    down_fraction: f64,
    measure_repair: bool,
    queries: usize,
    seed: u64,
) -> GridArm {
    let base = build_base(n, replication, seed);
    availability_arm(&base, down_fraction, measure_repair, queries, seed ^ 0x51E6)
}

/// E6 — *Figure R5*: reputation lookups cost `O(log N)` messages and
/// survive churn thanks to replication — the property the paper's
/// reference \[2\] rests on. Paper scale runs the ladder to 2¹⁸ peers.
///
/// Two pool fans with pinned merge order: first one base grid per
/// population rung (build + complaint seeding, the dominant cost, done
/// once instead of once per arm), then every `(rung, arm)` measurement —
/// three availability arms plus a join/leave churn arm — as pure
/// functions of the shared base and a pinned seed. `parallel_map`
/// returns results in submission order, so the table is bit-identical
/// for any thread count.
pub fn e6_pgrid(scale: Scale) -> Table {
    let sizes: &[usize] = scale.pick(
        &[32, 128][..],
        &[16, 64, 256, 1024, 4096, 16384, 65536, 262144][..],
    );
    let queries = scale.pick(100, 400);
    let mut table = Table::new(
        "E6: P-Grid lookup cost, availability and membership churn (replication 4)",
        &[
            "n_peers",
            "mean_hops",
            "msgs/query",
            "success@0%down",
            "success@10%down",
            "success@30%down",
            "success@30%down+repair",
            "success@join/leave",
            "join_maturity",
        ],
    );
    let bases = parallel_map(0, sizes.iter().enumerate().collect(), |_, (i, &n)| {
        build_base(n, 4, 0xE6B0 + i as u64)
    });

    // Three availability arms per size (the 30%-down arm also measures
    // the repaired-table success over its own query sequence), plus the
    // join/leave churn arm.
    const DOWN: [f64; 3] = [0.0, 0.10, 0.30];
    const ARMS_PER_RUNG: usize = DOWN.len() + 1;
    let arms: Vec<(usize, Option<f64>, u64)> = (0..sizes.len())
        .flat_map(|i| {
            DOWN.iter()
                .enumerate()
                .map(move |(j, &down)| (i, Some(down), 0xE600 + 16 * i as u64 + j as u64))
                .chain([(i, None, 0xE600 + 16 * i as u64 + DOWN.len() as u64)])
        })
        .collect();
    let results = parallel_map(0, arms, |_, (rung, down, seed)| match down {
        Some(down) => availability_arm(&bases[rung], down, down == 0.30, queries, seed),
        None => join_leave_arm(&bases[rung], queries, seed),
    });
    for (i, &n) in sizes.iter().enumerate() {
        let clean = &results[ARMS_PER_RUNG * i];
        let churn10 = &results[ARMS_PER_RUNG * i + 1];
        let churn30 = &results[ARMS_PER_RUNG * i + 2];
        let joinleave = &results[ARMS_PER_RUNG * i + 3];
        table.push_row(vec![
            n.into(),
            clean.mean_hops.into(),
            clean.msgs_per_query.into(),
            clean.success.into(),
            churn10.success.into(),
            churn30.success.into(),
            churn30.success_repaired.expect("repair pass ran").into(),
            joinleave.success.into(),
            joinleave.join_maturity.expect("churn arm ran").into(),
        ]);
    }
    table
}

/// E10 — *Table R4*: ablations of the design choices `DESIGN.md` calls
/// out: payment policy, gossip fan-out, storage replication and risk
/// attitude.
///
/// The market arms of all three simulation groups fan out across the
/// worker pool in one batch (each arm pins its own seed); rows are
/// emitted in declaration order afterwards, so the table is identical
/// for every thread count.
pub fn e10_ablations(scale: Scale) -> Table {
    let mut table = Table::new(
        "E10: ablations (metric depends on row group)",
        &["group", "variant", "metric", "value"],
    );
    let sim_cfg = |scale: Scale| MarketConfig {
        n_agents: scale.pick(40, 120),
        rounds: scale.pick(6, 25),
        sessions_per_round: scale.pick(40, 120),
        ..MarketConfig::default()
    };

    // (a) Payment policy: realized honest losses per session in a 30%
    // dishonest market (exposure splits differently).
    let mut labels: Vec<(&str, String, &str)> = Vec::new();
    let mut arms: Vec<MarketConfig> = Vec::new();
    for policy in PaymentPolicy::ALL {
        labels.push((
            "payment-policy",
            policy.label().to_owned(),
            "honest_losses/sess",
        ));
        arms.push(MarketConfig {
            payment_policy: policy,
            strategy: Strategy::TrustAware,
            workload: Workload::FileSharing,
            seed: 0xA0,
            ..sim_cfg(scale)
        });
    }

    // (b) Gossip fan-out: final MAE with 0 / 3 / 10 witnesses.
    for gossip in [0usize, 3, 10] {
        labels.push(("gossip", format!("k={gossip}"), "final_mae"));
        arms.push(MarketConfig {
            gossip_witnesses: gossip,
            model: ModelKind::Mean,
            mix: PopulationMix::standard(0.3, 0.0),
            strategy: Strategy::UnsafeDeliverFirst,
            seed: 0xA1,
            ..sim_cfg(scale)
        });
    }

    // (d) Trust model under heavy lying (50% of dishonest agents lie).
    for model in [ModelKind::Beta, ModelKind::Mean] {
        labels.push(("witness-discounting", model.label().to_owned(), "final_mae"));
        arms.push(MarketConfig {
            model,
            mix: PopulationMix::standard(0.3, 0.5),
            strategy: Strategy::UnsafeDeliverFirst,
            seed: 0xA3,
            ..sim_cfg(scale)
        });
    }

    let reports = run_arms(arms);
    let mut rows = labels.iter().zip(&reports);
    let mut take_rows = |count: usize, table: &mut Table| {
        for _ in 0..count {
            let ((group, variant, metric), r) = rows.next().expect("arm per label");
            let value = match *metric {
                "honest_losses/sess" => r.honest_losses / r.sessions.max(1) as f64,
                _ => r.final_mae,
            };
            table.push_row(vec![
                (*group).into(),
                variant.clone().into(),
                (*metric).into(),
                value.into(),
            ]);
        }
    };
    take_rows(PaymentPolicy::ALL.len(), &mut table);
    take_rows(3, &mut table);

    // (c) Replication factor: query success under 30% down peers — also
    // independent arms, fanned out over the pool.
    let repls = [1usize, 2, 4, 8];
    let successes = parallel_map(0, repls.to_vec(), |_, repl| {
        let n = scale.pick(64, 512);
        measure_grid(n, repl, 0.30, false, scale.pick(100, 300), 0xA2).success
    });
    for (repl, success) in repls.into_iter().zip(successes) {
        table.push_row(vec![
            "replication".into(),
            format!("r={repl}").into(),
            "success@30%down".into(),
            success.into(),
        ]);
    }

    take_rows(2, &mut table);

    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    #[test]
    fn e6_hops_scale_logarithmically() {
        let t = e6_pgrid(Scale::Smoke);
        let rows = t.rows();
        // Mean hops should be ≈ trie depth: ~log2(n/4), certainly < 10.
        for row in rows {
            assert!(num(&row[1]) < 10.0, "{row:?}");
            assert!(num(&row[3]) > 0.9, "no-churn success: {row:?}");
        }
        // Hops grow sub-linearly: quadrupling n adds ≲ 2.5 hops.
        if rows.len() >= 2 {
            let delta = num(&rows[rows.len() - 1][1]) - num(&rows[0][1]);
            assert!(delta <= 2.5, "hops growth {delta}");
        }
    }

    #[test]
    fn e6_churn_degrades_gracefully() {
        let t = e6_pgrid(Scale::Smoke);
        for row in t.rows() {
            assert!(num(&row[4]) >= num(&row[5]) - 0.05, "{row:?}");
            assert!(num(&row[5]) > 0.5, "30% churn should retain >50%: {row:?}");
        }
    }

    #[test]
    fn e6_repair_recovers_churn_losses() {
        let t = e6_pgrid(Scale::Smoke);
        for row in t.rows() {
            // The repair arm replays the 30%-down arm's exact scenario
            // (same grid, mask, queries): repairing the reference tables
            // must not lose availability — dead replica groups are the
            // only remaining failure mode — and should approach the
            // no-churn ceiling.
            assert!(num(&row[6]) >= num(&row[5]) - 0.02, "{row:?}");
            assert!(
                num(&row[6]) > 0.85,
                "repair should restore routing: {row:?}"
            );
        }
    }

    #[test]
    fn e6_membership_churn_keeps_lookups_alive() {
        let t = e6_pgrid(Scale::Smoke);
        for row in t.rows() {
            // ~5% real joins + ~5% real leaves: the overlay absorbs the
            // wave — lookups stay close to the no-churn column, and the
            // admitted peers integrate to full depth.
            assert!(
                num(&row[7]) >= num(&row[3]) - 0.15,
                "join/leave success collapsed: {row:?}"
            );
            assert!(
                num(&row[8]) > 0.9,
                "admitted peers failed to descend: {row:?}"
            );
        }
    }

    #[test]
    fn measure_grid_survives_total_blackout() {
        // Regression: the origin sampler used to rejection-sample forever
        // when every peer was down. A full blackout must terminate and
        // report a failed query set.
        let arm = measure_grid(64, 4, 1.0, true, 50, 0xB1AC0);
        assert_eq!(arm.success, 0.0, "no live peers: every query fails");
        assert_eq!(arm.mean_hops, 0.0);
        assert_eq!(arm.msgs_per_query, 0.0);
        assert_eq!(arm.success_repaired, Some(0.0), "repair cannot help nobody");
        // A near-blackout (a handful of survivors) must also terminate,
        // with or without the repair pass.
        let arm = measure_grid(64, 4, 0.999, true, 50, 0xB1AC);
        assert!(arm.success <= 0.1, "near-blackout cannot succeed");
        assert!(arm.success_repaired.expect("repair pass ran") <= 0.1);
    }

    #[test]
    fn e10_replication_improves_availability() {
        let t = e10_ablations(Scale::Smoke);
        let repl: Vec<f64> = t
            .rows()
            .iter()
            .filter(|r| matches!(&r[0], Cell::Text(s) if s == "replication"))
            .map(|r| num(&r[3]))
            .collect();
        assert_eq!(repl.len(), 4);
        assert!(repl[3] > repl[0], "r=8 must beat r=1 under churn: {repl:?}");
    }

    #[test]
    fn e10_has_all_groups() {
        let t = e10_ablations(Scale::Smoke);
        for group in [
            "payment-policy",
            "gossip",
            "replication",
            "witness-discounting",
        ] {
            assert!(
                t.rows()
                    .iter()
                    .any(|r| matches!(&r[0], Cell::Text(s) if s == group)),
                "missing group {group}"
            );
        }
    }
}
