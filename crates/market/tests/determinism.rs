//! Cross-thread-count determinism suite.
//!
//! The sharded session executor and the arm-parallel experiment runner
//! both promise that parallelism changes wall-clock time, **never**
//! results: the same seed must produce a bit-identical [`MarketReport`]
//! and bit-identical experiment [`Table`]s for any thread count. These
//! tests pin that contract for threads ∈ {1, 2, 8}.

use proptest::{prop_assert_eq, proptest, ProptestConfig};
use std::sync::Mutex;
use trustex_agents::adversary::zoo_mix;
use trustex_agents::profile::PopulationMix;
use trustex_market::experiments::{find, Scale, ALL};
use trustex_market::metrics::{accuracy_metrics, cooperation_truth};
use trustex_market::prelude::*;
use trustex_netsim::pool::set_default_threads;

/// The worker-pool default is process-global: tests that vary it must
/// serialise on this lock or they race each other's thread counts.
static THREAD_DEFAULT: Mutex<()> = Mutex::new(());

fn cfg(threads: usize, seed: u64) -> MarketConfig {
    MarketConfig {
        n_agents: 50,
        rounds: 6,
        sessions_per_round: 50,
        workload: Workload::FileSharing,
        threads,
        seed,
        ..MarketConfig::default()
    }
}

/// `MarketReport` is bit-identical for threads ∈ {1, 2, 8} across
/// strategies and models (f64 fields compared exactly).
#[test]
fn market_report_identical_across_thread_counts() {
    for strategy in Strategy::ALL {
        for model in [ModelKind::Beta, ModelKind::Mean] {
            let make = |threads: usize| {
                MarketSim::new(MarketConfig {
                    strategy,
                    model,
                    ..cfg(threads, 0xDE7)
                })
                .run()
            };
            let reference = make(1);
            for threads in [2, 8] {
                assert_eq!(
                    make(threads),
                    reference,
                    "{strategy:?}/{model:?} diverged at threads={threads}"
                );
            }
        }
    }
}

/// Every registered experiment table is bit-identical for the process
/// default of 1, 2 and 8 worker threads.
#[test]
fn every_experiment_table_identical_across_thread_counts() {
    let _guard = THREAD_DEFAULT.lock().unwrap_or_else(|e| e.into_inner());
    // e2 measures wall-clock scheduler runtime, e12 wall-clock query
    // latency and e13 wall-clock snapshot/restore timing, which no seed
    // can pin (e12's *content* columns are pinned by
    // `replay_check_identical_across_thread_counts` below, e13's check
    // verdicts by its own unit tests) — every other experiment table
    // must be reproduced bit-for-bit.
    let deterministic: Vec<_> = ALL
        .iter()
        .filter(|e| e.id != "e2" && e.id != "e12" && e.id != "e13")
        .collect();
    let reference: Vec<Table> = {
        set_default_threads(1);
        deterministic
            .iter()
            .map(|e| (e.run)(Scale::Smoke))
            .collect()
    };
    for threads in [2usize, 8] {
        set_default_threads(threads);
        for (experiment, expected) in deterministic.iter().zip(&reference) {
            let table = (experiment.run)(Scale::Smoke);
            assert_eq!(
                &table, expected,
                "experiment {} diverged at threads={threads}",
                experiment.id
            );
        }
    }
    set_default_threads(0);
}

/// E6 fans its `measure_grid` arms (size × availability, including the
/// churn-repair pass) across the worker pool; each arm owns a pinned
/// seed, so the assembled table must be bit-identical for any thread
/// count. Pinned separately from the all-experiment sweep because the
/// arm fan-out is new and E6 is the one experiment whose arms mutate a
/// shared-nothing `PGrid` rather than a `MarketSim`.
#[test]
fn e6_pgrid_table_identical_across_thread_counts() {
    let _guard = THREAD_DEFAULT.lock().unwrap_or_else(|e| e.into_inner());
    let e6 = find("e6").expect("e6 registered");
    set_default_threads(1);
    let reference = (e6.run)(Scale::Smoke);
    for threads in [2usize, 8] {
        set_default_threads(threads);
        assert_eq!(
            (e6.run)(Scale::Smoke),
            reference,
            "e6 diverged at threads={threads}"
        );
    }
    set_default_threads(0);
}

/// E11 fans (model × defense × fraction × coordination) arms across the
/// worker pool, and each arm exercises the full coordinated-attack
/// machinery — ring vouches, targeted slander, Sybil echo fan-out and
/// the post-merge whitewash sweep — plus both defense knobs. The
/// assembled frontier table must be bit-identical for any thread count.
#[test]
fn e11_adversary_table_identical_across_thread_counts() {
    let _guard = THREAD_DEFAULT.lock().unwrap_or_else(|e| e.into_inner());
    let e11 = find("e11").expect("e11 registered");
    set_default_threads(1);
    let reference = (e11.run)(Scale::Smoke);
    for threads in [2usize, 8] {
        set_default_threads(threads);
        assert_eq!(
            (e11.run)(Scale::Smoke),
            reference,
            "e11 diverged at threads={threads}"
        );
    }
    set_default_threads(0);
}

/// A single zoo simulation — maximum coordination, defenses on — yields
/// a bit-identical report for threads ∈ {1, 2, 8}: the coordinated
/// campaigns run in the sequential merge phase and the Sybil echo is
/// RNG-free, so sharding the execute phase must not shift a single draw.
#[test]
fn zoo_market_report_identical_across_thread_counts() {
    let defense = DefenseConfig {
        scorer_weighted: true,
        report_rate_cap: Some(8),
    };
    for model in ModelKind::ALL {
        let make = |threads: usize| {
            MarketSim::new(MarketConfig {
                model,
                mix: zoo_mix(0.3, 1.0),
                defense,
                ..cfg(threads, 0x200)
            })
            .run()
        };
        let reference = make(1);
        for threads in [2, 8] {
            assert_eq!(
                make(threads),
                reference,
                "{model:?} zoo run diverged at threads={threads}"
            );
        }
    }
}

/// The batched accuracy metrics fan evaluator rows across the worker
/// pool; the fold is pinned to evaluator order, so every metric —
/// including the float MAE — must be bit-identical for threads ∈
/// {1, 2, 8}, on both a freshly built community and one shaped by a full
/// simulation run, for every model kind.
#[test]
fn batched_metrics_identical_across_thread_counts() {
    for model in ModelKind::ALL {
        let sim = MarketSim::new(MarketConfig {
            model,
            ..cfg(1, 0xACC)
        });
        let community = sim.community();
        let truth = cooperation_truth(community);
        let reference = accuracy_metrics(community, &truth, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                accuracy_metrics(community, &truth, threads),
                reference,
                "{model:?} metrics diverged at threads={threads}"
            );
        }
        // A simulated run leaves heterogeneous evidence tables (gossip,
        // slander, cold rows) — the harder case for row batching.
        let report = MarketSim::new(MarketConfig {
            model,
            track_trust_per_round: true,
            ..cfg(1, 0xACC)
        })
        .run();
        for threads in [2usize, 8] {
            let again = MarketSim::new(MarketConfig {
                model,
                track_trust_per_round: true,
                ..cfg(threads, 0xACC)
            })
            .run();
            assert_eq!(
                again, report,
                "{model:?} report diverged at threads={threads}"
            );
        }
    }
}

/// The service replay's deterministic outcome — event counts, epochs
/// and the served-prediction checksum — is bit-identical for threads ∈
/// {1, 2, 8} for every model kind: queries fan across the pool but only
/// read published epochs, and the feedback fold is pinned by sequence
/// numbers. (The latency/throughput fields are wall-clock and excluded,
/// like E2's runtime cells.)
#[test]
fn replay_check_identical_across_thread_counts() {
    for model in ModelKind::ALL {
        let cfg = |threads: usize| ReplayConfig {
            n_peers: 50,
            events: 5_000,
            window: 400,
            model,
            threads,
            ..ReplayConfig::default()
        };
        let reference = replay(&cfg(1));
        for threads in [2, 8] {
            let r = replay(&cfg(threads));
            assert_eq!(
                r.check, reference.check,
                "{model:?} replay diverged at threads={threads}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharded (8-thread) and sequential (1-thread) round execution
    /// agree on the full report for arbitrary small configurations.
    #[test]
    fn sharded_rounds_agree_with_sequential(
        n_agents in 3usize..40,
        rounds in 1u64..5,
        sessions in 1usize..50,
        seed in 0u64..1_000_000,
        strategy_idx in 0usize..4,
        workload_idx in 0usize..3,
        gossip in 0usize..6,
        dishonest in 0.0f64..0.9,
    ) {
        let base = MarketConfig {
            n_agents,
            rounds,
            sessions_per_round: sessions,
            strategy: Strategy::ALL[strategy_idx],
            workload: Workload::ALL[workload_idx],
            gossip_witnesses: gossip,
            mix: PopulationMix::standard(dishonest, 0.25),
            seed,
            ..MarketConfig::default()
        };
        let sequential = MarketSim::new(MarketConfig { threads: 1, ..base.clone() }).run();
        let sharded = MarketSim::new(MarketConfig { threads: 8, ..base }).run();
        prop_assert_eq!(sharded, sequential);
    }
}
