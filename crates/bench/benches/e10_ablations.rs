//! E10 bench: payment-policy ablation at the single-schedule level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trustex_core::policy::PaymentPolicy;
use trustex_core::safety::SafetyMargins;
use trustex_core::scheduler::{schedule, Algorithm};
use trustex_market::workload::Workload;
use trustex_netsim::rng::SimRng;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10/payment_policy");
    let mut rng = SimRng::new(14);
    let deal = Workload::FileSharing.generate_deal(&mut rng);
    let margins = SafetyMargins::symmetric(deal.goods().total_surplus()).expect("non-negative");
    for policy in PaymentPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    black_box(
                        schedule(&deal, margins, policy, Algorithm::Greedy).expect("feasible"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
