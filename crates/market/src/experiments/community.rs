//! Community-scale experiments: strategy comparison (E4), trust accuracy
//! (E5), marketplace comparison (E8) and convergence (E9).

use super::Scale;
use crate::population::ModelKind;
use crate::sim::{MarketConfig, MarketSim};
use crate::strategy::Strategy;
use crate::table::Table;
use crate::workload::Workload;
use trustex_agents::profile::PopulationMix;

fn base_cfg(scale: Scale) -> MarketConfig {
    MarketConfig {
        n_agents: scale.pick(40, 150),
        rounds: scale.pick(8, 40),
        sessions_per_round: scale.pick(40, 150),
        workload: Workload::FileSharing,
        ..MarketConfig::default()
    }
}

/// E4 — *Figure R4*: honest-population welfare per strategy as the
/// dishonest fraction grows. The paper's claim: trust-aware scheduling
/// captures (most of) the gains of unsafe trading in honest populations
/// while bounding losses in hostile ones; safe-only forgoes everything.
pub fn e4_strategies(scale: Scale) -> Table {
    let fractions: &[f64] = scale.pick(
        &[0.0, 0.3, 0.6][..],
        &[0.0, 0.15, 0.3, 0.45, 0.6, 0.75, 0.9][..],
    );
    let mut table = Table::new(
        "E4: honest welfare per session / honest losses, by strategy and dishonest fraction",
        &[
            "dishonest",
            "strategy",
            "completion",
            "honest_gain/sess",
            "honest_losses/sess",
            "no_trade",
        ],
    );
    for &frac in fractions {
        for strategy in Strategy::ALL {
            let cfg = MarketConfig {
                mix: PopulationMix::standard(frac, 0.25),
                strategy,
                seed: 42 + (frac * 100.0) as u64,
                ..base_cfg(scale)
            };
            let r = MarketSim::new(cfg).run();
            let sessions = r.sessions.max(1) as f64;
            table.push_row(vec![
                frac.into(),
                strategy.label().into(),
                r.completion_rate().into(),
                (r.honest_gain / sessions).into(),
                (r.honest_losses / sessions).into(),
                r.no_trade_rate().into(),
            ]);
        }
    }
    table
}

/// E5 — *Table R2*: trust-model accuracy (MAE, ranking, decision) as the
/// share of lying reporters among dishonest agents grows.
pub fn e5_trust_accuracy(scale: Scale) -> Table {
    let liar_shares: &[f64] = scale.pick(&[0.0, 0.5][..], &[0.0, 0.25, 0.5, 0.75][..]);
    let mut table = Table::new(
        "E5: trust model accuracy (30% dishonest population)",
        &["model", "liar_share", "mae", "rank_acc", "decision_acc"],
    );
    for model in ModelKind::ALL {
        for &liars in liar_shares {
            let cfg = MarketConfig {
                mix: PopulationMix::standard(0.3, liars),
                model,
                strategy: Strategy::UnsafeDeliverFirst, // maximal interaction data
                seed: 7,
                ..base_cfg(scale)
            };
            let sim = MarketSim::new(cfg);
            // Run and inspect the final community.
            let community_metrics = { run_keeping_community(sim) };
            table.push_row(vec![
                model.label().into(),
                liars.into(),
                community_metrics.0.into(),
                community_metrics.1.into(),
                community_metrics.2.into(),
            ]);
        }
    }
    table
}

/// Runs a sim and returns `(mae, rank_accuracy, decision_accuracy)` of
/// the final community.
fn run_keeping_community(sim: MarketSim) -> (f64, f64, f64) {
    // MarketSim::run consumes self; replicate the tail metrics by asking
    // the report (mae/rank are included) and recomputing decision
    // accuracy needs the community — run manually instead.
    // Simplest correct approach: run, then rebuild an identical sim and
    // replay? Instead we expose what we need from the report.
    let report = sim.run();
    (
        report.final_mae,
        report.final_rank_accuracy,
        report.final_decision_accuracy,
    )
}

/// E8 — *Table R3*: the full marketplace matrix — workloads × strategies
/// at 30% dishonest agents.
pub fn e8_marketplace(scale: Scale) -> Table {
    let mut table = Table::new(
        "E8: end-to-end marketplace (30% dishonest, 25% of them liars)",
        &[
            "workload",
            "strategy",
            "completion",
            "welfare/sess",
            "honest_losses/sess",
            "final_mae",
        ],
    );
    for workload in Workload::ALL {
        for strategy in Strategy::ALL {
            let cfg = MarketConfig {
                workload,
                strategy,
                seed: 11,
                ..base_cfg(scale)
            };
            let r = MarketSim::new(cfg).run();
            let sessions = r.sessions.max(1) as f64;
            table.push_row(vec![
                workload.label().into(),
                strategy.label().into(),
                r.completion_rate().into(),
                (r.total_welfare / sessions).into(),
                (r.honest_losses / sessions).into(),
                r.final_mae.into(),
            ]);
        }
    }
    table
}

/// E9 — *Figure R7*: trust-error trajectories: MAE by round for each
/// model under identical interaction streams.
pub fn e9_convergence(scale: Scale) -> Table {
    let mut table = Table::new(
        "E9: trust MAE by round (30% dishonest, no liars)",
        &["round", "beta", "complaints", "mean", "ewma"],
    );
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for model in ModelKind::ALL {
        let cfg = MarketConfig {
            model,
            mix: PopulationMix::standard(0.3, 0.0),
            strategy: Strategy::UnsafeDeliverFirst,
            track_trust_per_round: true,
            seed: 13,
            ..base_cfg(scale)
        };
        let r = MarketSim::new(cfg).run();
        columns.push(
            r.per_round
                .iter()
                .map(|s| s.trust_mae.expect("tracking enabled"))
                .collect(),
        );
    }
    for (round, (((beta, complaints), mean), ewma)) in columns[0]
        .iter()
        .zip(&columns[1])
        .zip(&columns[2])
        .zip(&columns[3])
        .enumerate()
    {
        table.push_row(vec![
            round.into(),
            (*beta).into(),
            (*complaints).into(),
            (*mean).into(),
            (*ewma).into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Cell;

    fn num(cell: &Cell) -> f64 {
        match cell {
            Cell::Num(v) => *v,
            Cell::Int(v) => *v as f64,
            Cell::Text(t) => panic!("expected number, got {t}"),
        }
    }

    #[test]
    fn e4_safe_only_never_gains_or_loses() {
        let t = e4_strategies(Scale::Smoke);
        for row in t.rows() {
            if matches!(&row[1], Cell::Text(s) if s == "safe-only") {
                assert_eq!(num(&row[3]), 0.0, "{row:?}");
                assert_eq!(num(&row[4]), 0.0, "{row:?}");
            }
        }
    }

    #[test]
    fn e4_trust_aware_beats_naive_losses_in_hostile_population() {
        let t = e4_strategies(Scale::Smoke);
        // At the largest dishonest fraction, trust-aware honest losses
        // per session are below deliver-first's.
        let rows: Vec<_> = t.rows().iter().collect();
        let hostile: Vec<_> = rows.iter().filter(|r| num(&r[0]) >= 0.59).collect();
        let ta = hostile
            .iter()
            .find(|r| matches!(&r[1], Cell::Text(s) if s == "trust-aware"))
            .expect("row present");
        let df = hostile
            .iter()
            .find(|r| matches!(&r[1], Cell::Text(s) if s == "deliver-first"))
            .expect("row present");
        assert!(
            num(&ta[4]) < num(&df[4]),
            "trust-aware losses {} must undercut deliver-first {}",
            num(&ta[4]),
            num(&df[4])
        );
    }

    #[test]
    fn e5_beta_beats_mean_under_liars() {
        let t = e5_trust_accuracy(Scale::Smoke);
        let find = |model: &str, liars: f64| {
            t.rows()
                .iter()
                .find(|r| {
                    matches!(&r[0], Cell::Text(s) if s == model)
                        && (num(&r[1]) - liars).abs() < 1e-9
                })
                .map(|r| num(&r[2]))
                .expect("row present")
        };
        let beta = find("beta", 0.5);
        let mean = find("mean", 0.5);
        // The gullible mean absorbs three times the data (full-weight
        // gossip), so at smoke scale it can lead on MAE; the beta model
        // must stay in the same band rather than collapse.
        assert!(
            beta <= mean + 0.2,
            "beta MAE {beta} collapsed vs gullible mean {mean} under liars"
        );
    }

    #[test]
    fn e9_mae_trajectories_decrease() {
        let t = e9_convergence(Scale::Smoke);
        let first = t.rows().first().unwrap();
        let last = t.rows().last().unwrap();
        for col in 1..=4 {
            assert!(
                num(&last[col]) <= num(&first[col]) + 0.02,
                "column {col} should not grow: {} -> {}",
                num(&first[col]),
                num(&last[col])
            );
        }
    }

    #[test]
    fn e8_has_full_matrix() {
        let t = e8_marketplace(Scale::Smoke);
        assert_eq!(t.rows().len(), 12, "3 workloads × 4 strategies");
    }
}
