//! Property tests for the safe-exchange core.
//!
//! The central invariants:
//!
//! 1. The greedy scheduler and the subset-DP ground truth agree on
//!    feasibility for every instance and margin.
//! 2. Every sequence any scheduler produces passes the independent
//!    verifier, and its realized exposure stays within the margins.
//! 3. `min_required_margin` is exact: scheduling succeeds at the reported
//!    margin and fails one micro-unit below it.
//! 4. Feasibility is monotone in the margin.
//! 5. Honest execution of a scheduled sequence realizes exactly the
//!    deal's gains.

use proptest::prelude::*;
use trustex_core::prelude::*;
use trustex_core::scheduler::{
    greedy_order, required_margin_of_order, sandholm_order, subset_dp_order,
};

/// Strategy: a goods set of 1..=8 items with costs/values in 0..=10 units
/// (micro-precision comes from the i64 micros range).
fn goods_strategy() -> impl Strategy<Value = Goods> {
    prop::collection::vec((0i64..=10_000_000, 0i64..=10_000_000), 1..=8).prop_map(|pairs| {
        Goods::new(
            pairs
                .into_iter()
                .map(|(c, v)| (Money::from_micros(c), Money::from_micros(v)))
                .collect(),
        )
        .expect("non-empty, non-negative")
    })
}

fn margins_strategy() -> impl Strategy<Value = SafetyMargins> {
    (0i64..=8_000_000, 0i64..=8_000_000).prop_map(|(a, b)| {
        SafetyMargins::new(Money::from_micros(a), Money::from_micros(b)).expect("non-negative")
    })
}

/// A valid price for the goods: Vs(G) + t · (Vc(G) − Vs(G)).
fn deal_for(goods: Goods, t: f64) -> Option<Deal> {
    let lo = goods.total_supplier_cost();
    let hi = goods.total_consumer_value();
    if hi < lo {
        return None; // negative-total-surplus set: no rational price
    }
    let price = lo + (hi - lo).scale(t);
    Deal::new(goods, price).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn greedy_agrees_with_subset_dp(goods in goods_strategy(), margins in margins_strategy()) {
        let greedy_feasible = feasible(&goods, margins);
        let dp = subset_dp_order(&goods, margins).expect("within size limit");
        prop_assert_eq!(greedy_feasible, dp.is_some(),
            "greedy and DP disagree: margin={:?} goods={:?}", margins, goods);
    }

    #[test]
    fn sandholm_agrees_with_subset_dp(goods in goods_strategy(), margins in margins_strategy()) {
        let sandholm = sandholm_order(&goods, margins);
        let dp = subset_dp_order(&goods, margins).expect("within size limit");
        prop_assert_eq!(sandholm.is_ok(), dp.is_some());
        if let Ok(order) = sandholm {
            // The produced order itself satisfies the margin.
            prop_assert!(required_margin_of_order(&goods, &order) <= margins.total());
        }
    }

    #[test]
    fn dp_order_respects_margin(goods in goods_strategy(), margins in margins_strategy()) {
        if let Some(order) = subset_dp_order(&goods, margins).expect("size ok") {
            prop_assert!(required_margin_of_order(&goods, &order) <= margins.total());
        }
    }

    #[test]
    fn greedy_order_is_minimax(goods in goods_strategy()) {
        // No order can require less than the greedy order.
        let greedy_req = min_required_margin(&goods);
        let m = SafetyMargins::new(greedy_req, Money::ZERO).expect("non-negative");
        prop_assert!(subset_dp_order(&goods, m).expect("size ok").is_some(),
            "DP infeasible at the greedy margin — greedy not optimal");
        if greedy_req > Money::ZERO {
            let below = SafetyMargins::new(greedy_req - Money::from_micros(1), Money::ZERO)
                .expect("non-negative");
            prop_assert!(subset_dp_order(&goods, below).expect("size ok").is_none(),
                "DP feasible below the greedy margin — min margin not tight");
        }
    }

    #[test]
    fn scheduled_sequences_verify_and_respect_exposure(
        goods in goods_strategy(),
        margins in margins_strategy(),
        t in 0.0f64..=1.0,
    ) {
        prop_assume!(feasible(&goods, margins));
        let Some(deal) = deal_for(goods, t) else { return Ok(()); };
        for alg in Algorithm::ALL {
            for policy in PaymentPolicy::ALL {
                let v = schedule(&deal, margins, policy, alg);
                let v = v.expect("feasible instance must schedule");
                // Exposure bounded by the margins.
                prop_assert!(v.max_consumer_temptation() <= margins.eps_supplier());
                prop_assert!(v.max_supplier_temptation() <= margins.eps_consumer());
                // Structure: every item delivered once, full price paid.
                prop_assert_eq!(v.sequence().delivery_count(), deal.goods().len());
                prop_assert_eq!(v.sequence().total_paid(), deal.price());
            }
        }
    }

    #[test]
    fn feasibility_monotone(goods in goods_strategy(), a in 0i64..=8_000_000, b in 0i64..=8_000_000) {
        let small = a.min(b);
        let large = a.max(b);
        let m_small = SafetyMargins::symmetric(Money::from_micros(small)).unwrap();
        let m_large = SafetyMargins::symmetric(Money::from_micros(large)).unwrap();
        if feasible(&goods, m_small) {
            prop_assert!(feasible(&goods, m_large), "feasibility must be monotone in margin");
        }
    }

    #[test]
    fn honest_execution_realizes_deal_gains(
        goods in goods_strategy(),
        t in 0.0f64..=1.0,
    ) {
        // Give a margin that always suffices: total cost is an upper
        // bound on the requirement (req(j) ≤ Vs(x_j) ≤ Vs(G) whenever the
        // suffix surplus is ≥ 0; pad with total value for safety).
        let eps = goods.total_supplier_cost() + goods.total_consumer_value();
        let margins = SafetyMargins::new(eps, eps).unwrap();
        prop_assume!(feasible(&goods, margins));
        let Some(deal) = deal_for(goods, t) else { return Ok(()); };
        let seq = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)
            .expect("must schedule")
            .into_sequence();
        let out = execute(&deal, &seq, &mut Honest, &mut Honest);
        prop_assert!(out.status.is_completed());
        prop_assert_eq!(out.supplier_gain, deal.supplier_profit());
        prop_assert_eq!(out.consumer_gain, deal.consumer_surplus());
        prop_assert_eq!(out.welfare(), deal.goods().total_surplus());
    }

    #[test]
    fn rational_defector_with_margin_stake_never_defects(
        goods in goods_strategy(),
        eps_s in 0i64..=5_000_000,
        eps_c in 0i64..=5_000_000,
    ) {
        let margins = SafetyMargins::new(
            Money::from_micros(eps_s),
            Money::from_micros(eps_c),
        ).unwrap();
        prop_assume!(feasible(&goods, margins));
        let Some(deal) = deal_for(goods, 0.5) else { return Ok(()); };
        let seq = schedule(&deal, margins, PaymentPolicy::Balanced, Algorithm::Greedy)
            .expect("must schedule")
            .into_sequence();
        // A rational party whose outside stake equals the tolerated bound
        // never strictly profits from defecting on a verified sequence.
        let mut sup = RationalDefector { stake: Money::from_micros(eps_c) };
        let mut con = RationalDefector { stake: Money::from_micros(eps_s) };
        let out = execute(&deal, &seq, &mut sup, &mut con);
        prop_assert!(out.status.is_completed(),
            "defection with stake ≥ ε on a verified sequence: {:?}", out);
    }

    #[test]
    fn verifier_rejects_mutated_sequences(
        goods in goods_strategy(),
        extra in 1i64..=1_000_000,
    ) {
        // Dropping the final payment (or adding an overpayment) must fail.
        let eps = goods.total_supplier_cost() + goods.total_consumer_value();
        let margins = SafetyMargins::new(eps, eps).unwrap();
        prop_assume!(feasible(&goods, margins));
        let Some(deal) = deal_for(goods, 0.5) else { return Ok(()); };
        let seq = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)
            .expect("must schedule")
            .into_sequence();

        // Mutation 1: append an extra payment -> overpayment.
        let mut over = seq.clone();
        over.push(Action::Pay(Money::from_micros(extra)));
        prop_assert!(verify(&deal, margins, &over).is_err());

        // Mutation 2: drop the last action -> incomplete.
        let actions = seq.actions();
        if actions.len() > 1 {
            let truncated = ExchangeSequence::new(actions[..actions.len() - 1].to_vec());
            prop_assert!(verify(&deal, margins, &truncated).is_err());
        }
    }

    #[test]
    fn requirement_profile_suffix_identity(goods in goods_strategy()) {
        // req(n-1) for the greedy order's last item equals its Vs.
        let order = greedy_order(&goods);
        let profile = trustex_core::scheduler::requirement_profile(&goods, &order);
        let last = *order.last().unwrap();
        prop_assert_eq!(
            *profile.last().unwrap(),
            goods.item(last).supplier_cost()
        );
    }
}

mod game_props {
    use super::*;
    use trustex_core::game::{analyze, min_supporting_stake, Stakes};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The bridge between the scheduling theory and the game theory:
        /// a sequence scheduled and verified under margins (ε_s, ε_c) is
        /// a subgame-perfect equilibrium whenever each party's outside
        /// stake covers the exposure granted *against* it.
        #[test]
        fn verified_sequences_are_equilibria_under_covering_stakes(
            goods in goods_strategy(),
            eps_s in 0i64..=5_000_000,
            eps_c in 0i64..=5_000_000,
        ) {
            let margins = SafetyMargins::new(
                Money::from_micros(eps_s),
                Money::from_micros(eps_c),
            ).unwrap();
            prop_assume!(feasible(&goods, margins));
            let Some(deal) = deal_for(goods, 0.5) else { return Ok(()); };
            let seq = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)
                .expect("feasible")
                .into_sequence();
            // Consumer temptation ≤ ε_s ⇒ consumer stake ε_s suffices;
            // symmetrically for the supplier.
            let stakes = Stakes {
                supplier: Money::from_micros(eps_c),
                consumer: Money::from_micros(eps_s),
            };
            let eq = analyze(&deal, &seq, stakes);
            prop_assert!(eq.completes, "{eq:?}");
            prop_assert_eq!(eq.supplier_value, deal.supplier_profit());
            prop_assert_eq!(eq.consumer_value, deal.consumer_surplus());
        }

        /// The minimal supporting symmetric stake never exceeds the
        /// margin the sequence was scheduled under.
        #[test]
        fn min_stake_bounded_by_margin(
            goods in goods_strategy(),
            eps in 0i64..=5_000_000,
        ) {
            let margins = SafetyMargins::symmetric(Money::from_micros(eps)).unwrap();
            prop_assume!(feasible(&goods, margins));
            let Some(deal) = deal_for(goods, 0.5) else { return Ok(()); };
            let seq = schedule(&deal, margins, PaymentPolicy::Balanced, Algorithm::Greedy)
                .expect("feasible")
                .into_sequence();
            let stake = min_supporting_stake(&deal, &seq).expect("verified sequences supportable");
            prop_assert!(stake <= Money::from_micros(eps),
                "stake {} must not exceed margin {}", stake, eps);
        }

        /// Game analysis agrees with the execution engine: rational
        /// defectors with the covering stakes complete exactly when the
        /// equilibrium says so.
        #[test]
        fn game_agrees_with_execution(
            goods in goods_strategy(),
            stake in 0i64..=3_000_000,
        ) {
            let eps = goods.total_supplier_cost() + goods.total_consumer_value();
            let margins = SafetyMargins::new(eps, eps).unwrap();
            prop_assume!(feasible(&goods, margins));
            let Some(deal) = deal_for(goods, 0.5) else { return Ok(()); };
            let seq = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)
                .expect("feasible")
                .into_sequence();
            let stakes = Stakes::symmetric(Money::from_micros(stake));
            let eq = analyze(&deal, &seq, stakes);
            if eq.completes {
                // If backward induction says complete, the (greedy,
                // peak-seeking) executed defectors cannot find a
                // profitable deviation either.
                let mut s = RationalDefector { stake: Money::from_micros(stake) };
                let mut c = RationalDefector { stake: Money::from_micros(stake) };
                let out = execute(&deal, &seq, &mut s, &mut c);
                prop_assert!(out.status.is_completed(),
                    "equilibrium completes but execution aborts: {:?}", out);
            }
        }
    }
}
