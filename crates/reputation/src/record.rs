//! Feedback records and the binary key space of the P-Grid.
//!
//! The CIKM 2001 system stores only *complaints*. A complaint `c(p, q)`
//! is indexed twice — under the key of the filer `p` and under the key of
//! the subject `q` — so that both "complaints about q" and "complaints
//! filed by q" can be retrieved with one key lookup each.

use serde::{Deserialize, Serialize};
use std::fmt;
use trustex_trust::model::PeerId;

/// A complaint: `by` reports that `about` misbehaved at `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Complaint {
    /// The filing peer.
    pub by: PeerId,
    /// The accused peer.
    pub about: PeerId,
    /// Simulation round of the underlying interaction.
    pub round: u64,
}

impl fmt::Display for Complaint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "complaint({} → {} @ {})",
            self.by, self.about, self.round
        )
    }
}

/// A point in the P-Grid's binary key space.
///
/// Keys are fixed-width bit strings (width set by the grid
/// configuration, at most 32 bits); peers are responsible for all keys
/// their binary *path* is a prefix of.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Key(u32);

impl Key {
    /// Creates a key from raw bits (the low `width` bits are used).
    pub const fn from_bits(bits: u32) -> Key {
        Key(bits)
    }

    /// The raw bits.
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// The `i`-th bit counted from the most significant position of a
    /// `width`-bit key (bit 0 = first routing decision).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width` or `width > 32`.
    pub fn bit(self, i: u8, width: u8) -> bool {
        assert!(width <= 32 && i < width, "bit index out of range");
        (self.0 >> (width - 1 - i)) & 1 == 1
    }
}

/// Hashes a peer id into the `width`-bit key space (SplitMix64 finalizer,
/// deterministic across runs and platforms).
pub fn key_for_peer(peer: PeerId, width: u8) -> Key {
    assert!(width > 0 && width <= 32, "key width must be in 1..=32");
    let mut z = (peer.0 as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    Key((z as u32) & (u32::MAX >> (32 - width)))
}

/// A peer's binary path: the trie position it is responsible for.
///
/// The empty path is responsible for the whole key space.
///
/// Paths are totally ordered lexicographically (bit by bit, a prefix
/// before its extensions), i.e. trie depth-first order — the order the
/// P-Grid leaf directory keeps its entries in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct BitPath {
    bits: u32, // left-aligned within `len` lowest-significance convention below
    len: u8,
}

impl Ord for BitPath {
    fn cmp(&self, other: &BitPath) -> std::cmp::Ordering {
        self.packed().cmp(&other.packed())
    }
}

impl PartialOrd for BitPath {
    fn partial_cmp(&self, other: &BitPath) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl BitPath {
    /// The empty path (responsible for everything).
    pub const EMPTY: BitPath = BitPath { bits: 0, len: 0 };

    /// Creates a path from the low `len` bits of `bits`
    /// (most significant of those = first trie level).
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn from_bits(bits: u32, len: u8) -> BitPath {
        assert!(len <= 32);
        let mask = if len == 0 { 0 } else { u32::MAX >> (32 - len) };
        BitPath {
            bits: bits & mask,
            len,
        }
    }

    /// The path formed by the first `len` bits of a `width`-bit key —
    /// the trie node covering the key at depth `len`. This is the lookup
    /// key the P-Grid leaf directory is probed with, one per depth.
    ///
    /// # Panics
    ///
    /// Panics if `len > width` or `width > 32`.
    pub fn key_prefix(key: Key, len: u8, width: u8) -> BitPath {
        assert!(len <= width && width <= 32, "prefix longer than key");
        if len == 0 {
            return BitPath::EMPTY;
        }
        BitPath {
            bits: key.bits() >> (width - len),
            len,
        }
    }

    /// Path length (trie depth).
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Whether the path is empty.
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The `i`-th bit of the path (0 = first trie level).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn bit(self, i: u8) -> bool {
        assert!(i < self.len, "path bit out of range");
        (self.bits >> (self.len - 1 - i)) & 1 == 1
    }

    /// Returns the path extended by one bit.
    ///
    /// # Panics
    ///
    /// Panics at depth 32.
    pub fn child(self, bit: bool) -> BitPath {
        assert!(self.len < 32, "path depth limit");
        BitPath {
            bits: (self.bits << 1) | bit as u32,
            len: self.len + 1,
        }
    }

    /// The first `len` bits of the path — its ancestor at that depth.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn prefix(self, len: u8) -> BitPath {
        assert!(len <= self.len, "prefix longer than path");
        BitPath {
            bits: if len == 0 {
                0
            } else {
                self.bits >> (self.len - len)
            },
            len,
        }
    }

    /// Whether this path is a prefix of the `width`-bit `key`
    /// (equivalently: whether this peer is responsible for the key).
    ///
    /// # Panics
    ///
    /// Panics if the path is longer than the key width.
    pub fn is_prefix_of_key(self, key: Key, width: u8) -> bool {
        assert!(self.len <= width, "path longer than key");
        if self.len == 0 {
            return true;
        }
        let key_prefix = key.bits() >> (width - self.len);
        key_prefix == self.bits
    }

    /// Length of the common prefix with a `width`-bit key.
    pub fn common_prefix_with_key(self, key: Key, width: u8) -> u8 {
        if self.len == 0 || width == 0 {
            return 0;
        }
        // Align both bit strings at the top of a u64 and count matching
        // leading bits in one XOR — constant-time, the routing hot path.
        let a = (self.bits as u64) << (64 - self.len as u32);
        let b = (key.bits() as u64) << (64 - width as u32);
        let matched = (a ^ b).leading_zeros().min(32) as u8;
        matched.min(self.len).min(width)
    }

    /// The whole path bit-packed into one `u64` that sorts in trie
    /// depth-first (lexicographic) order: the bits left-aligned in the
    /// high 32 bits, the length in the low byte. Two packed values
    /// compare equal iff the paths are equal, and `a.packed() <
    /// b.packed()` iff `a` precedes `b` in DFS order (a prefix sorts
    /// before its extensions, sibling 0-subtrees before 1-subtrees).
    pub const fn packed(self) -> u64 {
        // `bits << (32 - len)` left-aligns the path inside 32 bits; the
        // shift is ≤ 32 and performed in u64, so it is always valid.
        (((self.bits as u64) << (32 - self.len as u32)) << 8) | self.len as u64
    }

    /// Inverse of [`BitPath::packed`]: rebuilds a path from its packed
    /// `u64`, or `None` if the value is not a canonical packing (length
    /// over 32, stray bits in the middle byte gap, or bits set below the
    /// left-aligned region).
    pub fn from_packed(packed: u64) -> Option<BitPath> {
        let len = (packed & 0xFF) as u8;
        if len > 32 {
            return None;
        }
        let rest = packed >> 8;
        if rest > u32::MAX as u64 {
            return None;
        }
        let aligned = rest as u32;
        if len < 32 && aligned.trailing_zeros() < (32 - len as u32) && aligned != 0 {
            return None;
        }
        let bits = if len == 0 {
            if aligned != 0 {
                return None;
            }
            0
        } else {
            aligned >> (32 - len as u32)
        };
        Some(BitPath { bits, len })
    }

    /// The path's index in a heap-layout (level-order) arena over the
    /// complete binary trie: `(1 << len) | bits`. The root (empty path)
    /// is slot 1; a trie of depth `d` fits in `1 << (d + 1)` slots; a
    /// node's children are `slot << 1` and `slot << 1 | 1`. This is the
    /// O(1) lookup key of the P-Grid's flat leaf-directory arena.
    pub const fn slot(self) -> usize {
        (1usize << self.len) | self.bits as usize
    }

    /// Length of the common prefix with another path.
    pub fn common_prefix(self, other: BitPath) -> u8 {
        if self.len == 0 || other.len == 0 {
            return 0;
        }
        let a = (self.bits as u64) << (64 - self.len as u32);
        let b = (other.bits as u64) << (64 - other.len as u32);
        let matched = (a ^ b).leading_zeros().min(32) as u8;
        matched.min(self.len).min(other.len)
    }
}

impl fmt::Display for BitPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len == 0 {
            return f.write_str("ε");
        }
        for i in 0..self.len {
            f.write_str(if self.bit(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_bit_indexing() {
        // 4-bit key 0b1010: bits from the left are 1,0,1,0.
        let k = Key::from_bits(0b1010);
        assert!(k.bit(0, 4));
        assert!(!k.bit(1, 4));
        assert!(k.bit(2, 4));
        assert!(!k.bit(3, 4));
        assert_eq!(k.bits(), 0b1010);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn key_bit_out_of_range() {
        Key::from_bits(0).bit(4, 4);
    }

    #[test]
    fn key_for_peer_deterministic_and_spread() {
        let a = key_for_peer(PeerId(1), 16);
        let b = key_for_peer(PeerId(1), 16);
        assert_eq!(a, b);
        // Different peers land on different keys almost surely.
        let distinct: std::collections::HashSet<u32> = (0..100)
            .map(|i| key_for_peer(PeerId(i), 16).bits())
            .collect();
        assert!(distinct.len() > 95, "poor key spread: {}", distinct.len());
        // Width masking.
        assert!(key_for_peer(PeerId(7), 4).bits() < 16);
    }

    #[test]
    fn path_child_and_bits() {
        let p = BitPath::EMPTY.child(true).child(false).child(true);
        assert_eq!(p.len(), 3);
        assert!(p.bit(0));
        assert!(!p.bit(1));
        assert!(p.bit(2));
        assert_eq!(format!("{p}"), "101");
        assert_eq!(format!("{}", BitPath::EMPTY), "ε");
    }

    #[test]
    fn path_prefix_of_key() {
        let p = BitPath::from_bits(0b10, 2);
        let k_match = Key::from_bits(0b1011);
        let k_miss = Key::from_bits(0b1111);
        assert!(p.is_prefix_of_key(k_match, 4));
        assert!(!p.is_prefix_of_key(k_miss, 4));
        assert!(BitPath::EMPTY.is_prefix_of_key(k_miss, 4));
    }

    #[test]
    fn common_prefixes() {
        let p = BitPath::from_bits(0b101, 3);
        let q = BitPath::from_bits(0b100, 3);
        assert_eq!(p.common_prefix(q), 2);
        assert_eq!(p.common_prefix(p), 3);
        assert_eq!(p.common_prefix(BitPath::EMPTY), 0);
        let k = Key::from_bits(0b1000);
        assert_eq!(p.common_prefix_with_key(k, 4), 2);
        assert_eq!(q.common_prefix_with_key(k, 4), 3);
    }

    #[test]
    fn key_prefix_matches_manual_bits() {
        let key = Key::from_bits(0b1011_0010_1100_0110);
        for len in 0..=16u8 {
            let p = BitPath::key_prefix(key, len, 16);
            assert_eq!(p.len(), len);
            for i in 0..len {
                assert_eq!(p.bit(i), key.bit(i, 16), "len {len} bit {i}");
            }
            assert!(p.is_prefix_of_key(key, 16));
        }
        assert_eq!(BitPath::key_prefix(key, 0, 16), BitPath::EMPTY);
    }

    #[test]
    fn ordering_is_lexicographic_dfs() {
        let e = BitPath::EMPTY;
        let p0 = BitPath::from_bits(0b0, 1);
        let p00 = BitPath::from_bits(0b00, 2);
        let p01 = BitPath::from_bits(0b01, 2);
        let p1 = BitPath::from_bits(0b1, 1);
        let p10 = BitPath::from_bits(0b10, 2);
        // Depth-first order: a prefix sorts before its extensions, and
        // sibling subtrees sort 0-side first.
        let mut v = vec![p10, p01, p1, e, p00, p0];
        v.sort();
        assert_eq!(v, vec![e, p0, p00, p01, p1, p10]);
    }

    #[test]
    fn prefix_truncates() {
        let p = BitPath::from_bits(0b10110, 5);
        assert_eq!(p.prefix(0), BitPath::EMPTY);
        assert_eq!(p.prefix(3), BitPath::from_bits(0b101, 3));
        assert_eq!(p.prefix(5), p);
        for len in 0..=5u8 {
            assert_eq!(p.common_prefix(p.prefix(len)), len);
        }
    }

    #[test]
    #[should_panic(expected = "prefix longer than path")]
    fn prefix_past_len_panics() {
        BitPath::from_bits(0b1, 1).prefix(2);
    }

    #[test]
    fn packed_orders_like_cmp_and_slot_is_injective() {
        // Every path of depth ≤ 6: packed() must induce exactly the
        // DFS order of `Ord`, and slot() must be a bijection into
        // [1, 2^(d+1)) with the heap child structure.
        let mut all = vec![BitPath::EMPTY];
        for len in 1u8..=6 {
            for bits in 0..(1u32 << len) {
                all.push(BitPath::from_bits(bits, len));
            }
        }
        let mut slots = std::collections::HashSet::new();
        for &p in &all {
            assert!(p.slot() >= 1 && p.slot() < 1 << 7);
            assert!(slots.insert(p.slot()), "slot collision for {p}");
            if p.len() < 6 {
                assert_eq!(p.child(false).slot(), p.slot() << 1);
                assert_eq!(p.child(true).slot(), (p.slot() << 1) | 1);
            }
            for &q in &all {
                assert_eq!(p.cmp(&q), p.packed().cmp(&q.packed()), "{p} vs {q}");
            }
        }
    }

    #[test]
    fn from_packed_round_trips_and_rejects_junk() {
        let mut all = vec![BitPath::EMPTY];
        for len in 1u8..=8 {
            for bits in 0..(1u32 << len) {
                all.push(BitPath::from_bits(bits, len));
            }
        }
        for &p in &all {
            assert_eq!(BitPath::from_packed(p.packed()), Some(p), "{p}");
        }
        // Non-canonical packings must be rejected.
        assert_eq!(BitPath::from_packed(33), None); // len > 32
        assert_eq!(BitPath::from_packed(u64::MAX), None);
        // Bits set below the left-aligned region for the given length.
        let p = BitPath::from_bits(0b1, 1);
        assert_eq!(BitPath::from_packed(p.packed() | (1 << 8)), None);
        // Non-zero bits with zero length.
        assert_eq!(BitPath::from_packed(1 << 40), None);
    }

    #[test]
    fn from_bits_masks_extra() {
        let p = BitPath::from_bits(0b111111, 2);
        assert_eq!(p.len(), 2);
        assert_eq!(format!("{p}"), "11");
    }

    #[test]
    fn complaint_display() {
        let c = Complaint {
            by: PeerId(1),
            about: PeerId(2),
            round: 7,
        };
        assert_eq!(format!("{c}"), "complaint(peer#1 → peer#2 @ 7)");
    }
}
