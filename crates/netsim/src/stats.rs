//! Small statistics helpers used throughout the experiment harness.
//!
//! * [`OnlineStats`] — streaming mean/variance/min/max (Welford).
//! * [`Sample`] — stored samples with exact quantiles.
//! * [`Histogram`] — fixed-width bucket counts for report rendering.
//! * [`Counters`] — named event counters.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Streaming mean and variance via Welford's algorithm.
///
/// # Examples
///
/// ```
/// use trustex_netsim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 when fewer than 2 obs).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean(),
            self.std_dev(),
            if self.count == 0 { 0.0 } else { self.min },
            if self.count == 0 { 0.0 } else { self.max },
        )
    }
}

/// A stored sample supporting exact quantiles.
///
/// Keeps all values; intended for experiment-scale data (≤ millions).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    values: Vec<f64>,
    sorted: bool,
}

impl Sample {
    /// Creates an empty sample.
    pub fn new() -> Self {
        Sample {
            values: Vec::new(),
            sorted: true,
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN — quantiles over NaN are meaningless.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "Sample does not accept NaN");
        self.values.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN by construction"));
            self.sorted = true;
        }
    }

    /// Exact quantile by the nearest-rank method; `None` when empty.
    ///
    /// `q` is clamped to `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.values.len() as f64).ceil() as usize).saturating_sub(1);
        Some(self.values[idx.min(self.values.len() - 1)])
    }

    /// Median; `None` when empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Read-only access to the raw values (insertion order not guaranteed
    /// after a quantile query).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl FromIterator<f64> for Sample {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Sample::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for Sample {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range clamping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `n_buckets` equal buckets spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, n_buckets: usize) -> Self {
        assert!(n_buckets > 0 && lo < hi);
        Histogram {
            lo,
            hi,
            buckets: vec![0; n_buckets],
        }
    }

    /// Records an observation; values outside `[lo, hi)` land in the
    /// nearest edge bucket.
    ///
    /// # Panics
    ///
    /// Panics on NaN (matching [`Sample::push`]) — `NaN as usize` is 0,
    /// so it would otherwise be silently filed into bucket 0.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "Histogram does not accept NaN");
        let n = self.buckets.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.buckets[idx.min(n - 1)] += 1;
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// `(bucket_lower_bound, count)` pairs for rendering.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, c)| (self.lo + width * i as f64, *c))
    }
}

/// Named monotonic counters, ordered by name for stable reporting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to the named counter.
    pub fn add(&mut self, name: &str, n: u64) {
        *self.map.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of the named counter (0 if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_known_values() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.population_variance() - 1.25).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.population_variance() - whole.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let empty = OnlineStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn sample_quantiles() {
        let mut s: Sample = (1..=100).map(|i| i as f64).collect();
        assert_eq!(s.quantile(0.5), Some(50.0));
        assert_eq!(s.quantile(0.99), Some(99.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.median(), Some(50.0));
    }

    #[test]
    fn sample_empty_quantile() {
        let mut s = Sample::new();
        assert_eq!(s.quantile(0.5), None);
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn sample_rejects_nan() {
        Sample::new().push(f64::NAN);
    }

    #[test]
    fn sample_mean_and_extend() {
        let mut s = Sample::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert!(h.buckets().iter().all(|&c| c == 1));
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn histogram_clamps_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(99.0);
        h.record(1.0); // hi is exclusive -> last bucket
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[3], 2);
    }

    /// Regression: NaN fails both range guards and `NaN as usize == 0`,
    /// so it used to be filed silently into bucket 0 while the sibling
    /// `Sample::push` panics. The two must be consistent.
    #[test]
    #[should_panic(expected = "Histogram does not accept NaN")]
    fn histogram_rejects_nan_like_sample() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(f64::NAN);
    }

    #[test]
    fn histogram_iter_bounds() {
        let h = Histogram::new(0.0, 4.0, 4);
        let lows: Vec<f64> = h.iter().map(|(lo, _)| lo).collect();
        assert_eq!(lows, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn counters_basic() {
        let mut c = Counters::new();
        c.incr("a");
        c.add("a", 2);
        c.incr("b");
        assert_eq!(c.get("a"), 3);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("missing"), 0);
        let items: Vec<_> = c.iter().collect();
        assert_eq!(items, vec![("a", 3), ("b", 1)]);
    }

    #[test]
    fn counters_merge() {
        let mut a = Counters::new();
        a.add("x", 1);
        let mut b = Counters::new();
        b.add("x", 2);
        b.add("y", 5);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 5);
    }

    #[test]
    fn online_stats_display() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        let txt = format!("{s}");
        assert!(txt.contains("n=1"), "{txt}");
    }
}
