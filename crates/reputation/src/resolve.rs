//! Resolution of conflicting replica answers.
//!
//! Storage peers can lie: a *suppressor* hides complaints about its
//! accomplices, a *fabricator* invents complaints about its victims.
//! Queries therefore ask the whole replica group and resolve the answers.
//! The CIKM 2001 analysis shows that with independent liars, taking a
//! robust statistic over replicas bounds the error; we implement
//! per-complaint **majority voting** and per-count **median** resolution.

use crate::record::Complaint;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a storage peer answers queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum StorageBehavior {
    /// Returns exactly what it stores.
    #[default]
    Faithful,
    /// Returns nothing (hides all complaints it stores).
    Suppressor,
    /// Returns its store plus the contained number of fabricated
    /// complaints about the queried subject. Fabricators collude: they
    /// all invent the *same* fake complaints, so fabrications reach
    /// quorum whenever liars dominate a replica group.
    Fabricator(u8),
}

impl StorageBehavior {
    /// Whether the behaviour is faithful.
    pub fn is_faithful(self) -> bool {
        matches!(self, StorageBehavior::Faithful)
    }
}

/// Resolves replica answers by per-complaint majority voting: a
/// complaint is accepted when strictly more than half of the answering
/// replicas report it.
///
/// Returns the accepted complaints in deterministic (ordered) form.
pub fn majority_vote(answers: &[Vec<Complaint>]) -> Vec<Complaint> {
    if answers.is_empty() {
        return Vec::new();
    }
    let quorum = answers.len() / 2 + 1;
    let mut counts: BTreeMap<Complaint, usize> = BTreeMap::new();
    for answer in answers {
        // A malicious replica could duplicate entries; count each
        // complaint at most once per replica.
        let mut seen = std::collections::BTreeSet::new();
        for c in answer {
            if seen.insert(*c) {
                *counts.entry(*c).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .filter(|(_, n)| *n >= quorum)
        .map(|(c, _)| c)
        .collect()
}

/// Resolves scalar per-replica counts by the median (lower median for
/// even sizes) — robust to a minority of arbitrarily lying replicas.
pub fn median_count(counts: &[u64]) -> u64 {
    if counts.is_empty() {
        return 0;
    }
    let mut sorted = counts.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_trust::model::PeerId;

    fn c(by: u32, about: u32) -> Complaint {
        Complaint {
            by: PeerId(by),
            about: PeerId(about),
            round: 0,
        }
    }

    #[test]
    fn majority_accepts_consistent_answers() {
        let answers = vec![vec![c(1, 2)], vec![c(1, 2)], vec![c(1, 2)]];
        assert_eq!(majority_vote(&answers), vec![c(1, 2)]);
    }

    #[test]
    fn majority_rejects_minority_fabrication() {
        let answers = vec![
            vec![c(1, 2)],
            vec![c(1, 2)],
            vec![c(1, 2), c(9, 2)], // fabricator adds c(9,2)
        ];
        assert_eq!(majority_vote(&answers), vec![c(1, 2)]);
    }

    #[test]
    fn majority_survives_minority_suppression() {
        let answers = vec![
            vec![c(1, 2)],
            vec![], // suppressor
            vec![c(1, 2)],
        ];
        assert_eq!(majority_vote(&answers), vec![c(1, 2)]);
    }

    #[test]
    fn majority_fails_when_liars_dominate() {
        let answers = vec![vec![], vec![], vec![c(1, 2)]];
        assert!(majority_vote(&answers).is_empty());
    }

    #[test]
    fn duplicates_within_one_replica_count_once() {
        let answers = vec![vec![c(1, 2), c(1, 2), c(1, 2)], vec![], vec![]];
        assert!(majority_vote(&answers).is_empty(), "1/3 is not a majority");
    }

    #[test]
    fn empty_input() {
        assert!(majority_vote(&[]).is_empty());
        assert_eq!(median_count(&[]), 0);
    }

    #[test]
    fn median_robust_to_outliers() {
        assert_eq!(median_count(&[3, 3, 250]), 3);
        assert_eq!(median_count(&[0, 3, 3]), 3);
        assert_eq!(median_count(&[5]), 5);
        assert_eq!(median_count(&[1, 9]), 1, "lower median for even sizes");
    }

    #[test]
    fn storage_behavior_predicates() {
        assert!(StorageBehavior::Faithful.is_faithful());
        assert!(!StorageBehavior::Suppressor.is_faithful());
        assert!(!StorageBehavior::Fabricator(3).is_faithful());
        assert_eq!(StorageBehavior::default(), StorageBehavior::Faithful);
    }
}
