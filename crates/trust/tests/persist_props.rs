//! Property suite for the durable-evidence codec on the trust side.
//!
//! Three contracts, pinned across all four model kinds on random
//! evidence histories:
//!
//! 1. **Round-trip identity** — `decode(encode(m))` serves the exact
//!    same predictions as `m`, bit for bit, and re-encodes to the exact
//!    same bytes (the format is canonical, not merely invertible).
//! 2. **Engine capture** — persisting a [`TrustEngine`] mid-window
//!    preserves the published epoch *and* the pending seq-tagged delta:
//!    the restored engine publishes to the same row the live one does.
//! 3. **Total decoding** — every single-byte corruption and every
//!    truncation of a real snapshot is a typed error, never a panic and
//!    never an `Ok`.

use proptest::prelude::*;
use trustex_persist::snapshot::{from_bytes, to_bytes, Persistable};
use trustex_trust::baselines::{EwmaTrust, MeanTrust};
use trustex_trust::beta::BetaTrust;
use trustex_trust::complaints::ComplaintTrust;
use trustex_trust::engine::{TrustEngine, TrustEvent};
use trustex_trust::evidence_log::{EvidenceLog, EvidenceRecord};
use trustex_trust::model::{Conduct, PeerId, TrustEstimate, TrustModel, WitnessReport};

const POP: u32 = 10;

#[derive(Debug, Clone, Copy)]
struct Obs {
    witness: u32, // == subject ⇒ direct experience
    subject: u32,
    honest: bool,
    round: u64,
}

fn observations(max_len: usize) -> impl Strategy<Value = Vec<Obs>> {
    prop::collection::vec(
        (0u32..POP, 0u32..POP, any::<bool>(), 0u64..50).prop_map(|(w, s, honest, round)| Obs {
            witness: w,
            subject: s,
            honest,
            round,
        }),
        0..max_len,
    )
}

fn apply(model: &mut dyn TrustModel, obs: &[Obs]) {
    for o in obs {
        if o.witness == o.subject {
            model.record_direct(PeerId(o.subject), Conduct::from_honest(o.honest), o.round);
        } else {
            model.record_witness(WitnessReport {
                witness: PeerId(o.witness),
                subject: PeerId(o.subject),
                conduct: Conduct::from_honest(o.honest),
                round: o.round,
            });
        }
    }
}

/// encode → decode → identical rows, identical bytes.
fn check_round_trip<M>(model: &M)
where
    M: TrustModel + Persistable,
{
    let blob = to_bytes(model);
    let restored: M = from_bytes(&blob).expect("own snapshot must restore");
    let mut live = vec![TrustEstimate::UNKNOWN; POP as usize];
    let mut back = vec![TrustEstimate::UNKNOWN; POP as usize];
    model.predict_row_into(&mut live);
    restored.predict_row_into(&mut back);
    for (i, (l, b)) in live.iter().zip(&back).enumerate() {
        assert_eq!(
            (l.p_honest, l.confidence),
            (b.p_honest, b.confidence),
            "subject {i} diverged after restore"
        );
    }
    assert_eq!(to_bytes(&restored), blob, "re-encode must be canonical");
}

/// Every prefix cut and every byte flip of a real snapshot must fail
/// typed. Run on a handful of blobs per test, not in the proptest loop —
/// the matrix is O(len · 8) decodes.
fn check_corruption_matrix(blob: &[u8], decode: &dyn Fn(&[u8]) -> bool) {
    for cut in 0..blob.len() {
        assert!(!decode(&blob[..cut]), "truncation at {cut} must fail");
    }
    for i in 0..blob.len() {
        for bit in 0..8 {
            let mut corrupt = blob.to_vec();
            corrupt[i] ^= 1 << bit;
            assert!(!decode(&corrupt), "flip of byte {i} bit {bit} must fail");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn beta_round_trips(obs in observations(120), graded in prop::collection::vec((0u32..POP, any::<bool>()), 0..10)) {
        let mut model = BetaTrust::with_population(POP as usize);
        apply(&mut model, &obs);
        for (w, ok) in graded {
            model.grade_witness(PeerId(w), ok, 7);
        }
        check_round_trip(&model);
    }

    #[test]
    fn complaint_round_trips(obs in observations(120)) {
        let mut model = ComplaintTrust::with_population(POP as usize);
        apply(&mut model, &obs);
        check_round_trip(&model);
    }

    #[test]
    fn mean_round_trips(obs in observations(120)) {
        let mut model = MeanTrust::with_population(POP as usize);
        apply(&mut model, &obs);
        check_round_trip(&model);
    }

    #[test]
    fn ewma_round_trips(obs in observations(120), rate in 0.05f64..1.0) {
        let mut model = EwmaTrust::with_population(rate, POP as usize);
        apply(&mut model, &obs);
        check_round_trip(&model);
    }

    /// Snapshot an engine mid-window: restored engine must serve the
    /// same published row now, and fold the preserved pending delta to
    /// the same row on the next publish.
    #[test]
    fn engine_round_trips_with_pending_delta(
        published in observations(60),
        pending in observations(20),
    ) {
        let engine = TrustEngine::new(BetaTrust::with_population(POP as usize));
        engine.submit_batch(published.iter().enumerate().map(|(i, o)| (i as u64, event_of(*o))));
        engine.publish();
        engine.submit_batch(
            pending
                .iter()
                .enumerate()
                .map(|(i, o)| ((published.len() + i) as u64, event_of(*o))),
        );

        let blob = to_bytes(&engine);
        let restored: TrustEngine<BetaTrust> = from_bytes(&blob).expect("engine snapshot");

        let mut live = vec![TrustEstimate::UNKNOWN; POP as usize];
        let mut back = vec![TrustEstimate::UNKNOWN; POP as usize];
        let live_snap = engine.snapshot();
        let back_snap = restored.snapshot();
        prop_assert_eq!(live_snap.epoch(), back_snap.epoch());
        live_snap.predict_row_into(&mut live);
        back_snap.predict_row_into(&mut back);
        for (l, b) in live.iter().zip(&back) {
            prop_assert_eq!((l.p_honest, l.confidence), (b.p_honest, b.confidence));
        }

        // The pending window crossed the snapshot intact.
        prop_assert_eq!(engine.publish(), restored.publish());
        engine.snapshot().predict_row_into(&mut live);
        restored.snapshot().predict_row_into(&mut back);
        for (l, b) in live.iter().zip(&back) {
            prop_assert_eq!((l.p_honest, l.confidence), (b.p_honest, b.confidence));
        }
        prop_assert_eq!(to_bytes(&restored), to_bytes(&engine));
    }

    /// Replay folds duplicates first-wins, whatever the interleaving.
    #[test]
    fn evidence_log_replay_dedups(
        obs in observations(40),
        dup_every in 1usize..5,
    ) {
        let mut log = EvidenceLog::new();
        let mut expect = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (i, o) in obs.iter().enumerate() {
            let rec = EvidenceRecord {
                issuer: PeerId(o.witness),
                seq: (i / dup_every) as u64, // collides every `dup_every` records
                event: event_of(*o),
            };
            log.append(&rec);
            if seen.insert((rec.issuer, rec.seq)) {
                expect.push(rec);
            }
        }
        let replay = EvidenceLog::replay(log.as_bytes()).unwrap();
        prop_assert_eq!(replay.records, expect);
        prop_assert_eq!(replay.duplicates + replay_len(&log), obs.len());
    }
}

fn replay_len(log: &EvidenceLog) -> usize {
    EvidenceLog::replay(log.as_bytes()).unwrap().records.len()
}

fn event_of(o: Obs) -> TrustEvent {
    if o.witness == o.subject {
        TrustEvent::direct(PeerId(o.subject), Conduct::from_honest(o.honest), o.round)
    } else {
        TrustEvent::Witness(WitnessReport {
            witness: PeerId(o.witness),
            subject: PeerId(o.subject),
            conduct: Conduct::from_honest(o.honest),
            round: o.round,
        })
    }
}

fn workout<M: TrustModel>(mut model: M) -> M {
    let obs: Vec<Obs> = (0..60)
        .map(|i| Obs {
            witness: i % POP,
            subject: (i * 7 + 3) % POP,
            honest: i % 3 != 0,
            round: i as u64,
        })
        .collect();
    apply(&mut model, &obs);
    model
}

#[test]
fn beta_corruption_matrix() {
    let model = workout(BetaTrust::with_population(POP as usize));
    let blob = to_bytes(&model);
    check_corruption_matrix(&blob, &|b| from_bytes::<BetaTrust>(b).is_ok());
}

#[test]
fn complaint_corruption_matrix() {
    let model = workout(ComplaintTrust::with_population(POP as usize));
    let blob = to_bytes(&model);
    check_corruption_matrix(&blob, &|b| from_bytes::<ComplaintTrust>(b).is_ok());
}

#[test]
fn mean_corruption_matrix() {
    let model = workout(MeanTrust::with_population(POP as usize));
    let blob = to_bytes(&model);
    check_corruption_matrix(&blob, &|b| from_bytes::<MeanTrust>(b).is_ok());
}

#[test]
fn ewma_corruption_matrix() {
    let model = workout(EwmaTrust::with_population(0.3, POP as usize));
    let blob = to_bytes(&model);
    check_corruption_matrix(&blob, &|b| from_bytes::<EwmaTrust>(b).is_ok());
}

#[test]
fn engine_corruption_matrix() {
    let engine = TrustEngine::new(workout(BetaTrust::with_population(POP as usize)));
    engine.publish();
    engine.submit(0, TrustEvent::direct(PeerId(1), Conduct::Dishonest, 9));
    let blob = to_bytes(&engine);
    check_corruption_matrix(&blob, &|b| from_bytes::<TrustEngine<BetaTrust>>(b).is_ok());
}

/// A snapshot from a hypothetical newer format version must be refused,
/// not guessed at.
#[test]
fn future_version_is_refused() {
    use trustex_persist::PersistError;
    let blob = to_bytes(&workout(MeanTrust::new()));
    let mut future = blob.clone();
    future[4] = future[4].wrapping_add(1); // version lives after the 4-byte magic
    assert!(matches!(
        from_bytes::<MeanTrust>(&future),
        Err(PersistError::UnsupportedVersion { .. })
    ));
}
