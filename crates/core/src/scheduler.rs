//! Exchange schedulers: the paper's quadratic algorithm (kept as a
//! reference oracle), an indexed `O(n log n)` equivalent, an optimal
//! `O(n log n)` greedy with an allocation-free hot path, and two exact
//! ground-truth solvers (subset DP and branch-and-bound).
//!
//! # Theory
//!
//! Fix a delivery order `x₁ … xₙ`. Because payments are arbitrarily
//! divisible and irreversible, the order admits a (relaxed-)safe payment
//! interleaving **iff** for every position `j`
//!
//! ```text
//!   req(j)  :=  Vs(x_j) − Σ_{i>j} s(x_i)   ≤   ε           (†)
//! ```
//!
//! where `s(x) = Vc(x) − Vs(x)` is the item's surplus and
//! `ε = ε_s + ε_c` is the total window widening of
//! [`SafetyMargins`]. Intuition: when item `x_j` is handed over, the only
//! collateral keeping both parties honest is the surplus still to come;
//! the supplier's remaining production cost `Vs(x_j)` may exceed it by at
//! most the tolerated exposure.
//!
//! *Proof sketch (⇐).* Pay before each delivery down to
//! `min(R, U_next)`; (†) guarantees the admissible range is non-empty and
//! the invariants `L ≤ R ≤ U` are restored after every atomic action.
//! *(⇒)* At the moment `x_j` is delivered the window must contain the
//! outstanding `R`, which forces (†). ∎
//!
//! With `ε = 0` and `j = n`, (†) reads `Vs(xₙ) ≤ 0`: **an isolated
//! exchange with strictly positive delivery costs admits no fully safe
//! sequence** — the impossibility the paper cites from Sandholm, and the
//! reason reputation/trust must widen the window.
//!
//! # The implementations
//!
//! * [`greedy_order`] — sorts negative-surplus items by ascending `Vc`,
//!   then positive-surplus items by descending `Vs`. An adjacent-exchange
//!   argument (see `min_required_margin`) shows this order minimises
//!   `max_j req(j)` — *simultaneously for every ε* — so it is feasible
//!   whenever any order is. `O(n log n)`; [`greedy_order_into`] and the
//!   [`Scheduler`] scratch struct expose the same computation with zero
//!   per-call allocation, which is what takes it to `n = 10⁶`.
//! * [`sandholm_order`] — the step-by-step construction in the style of
//!   the algorithm the paper cites: build the order from the **last**
//!   delivery backwards, at each step taking the best placeable item.
//!   Two ordered candidate indexes (minimum-`Vs` positives, then
//!   maximum-`Vc` negatives) walked behind a budget-threshold cursor
//!   replace the quadratic per-step scan, giving `O(n log n)` with output
//!   bit-identical to [`sandholm_order_scan`], the original `O(n²)` scan
//!   kept as a test oracle.
//! * [`branch_and_bound_order`] — exact feasibility by depth-first
//!   search over delivery suffixes with surplus-based pruning, failed-
//!   state memoisation and a greedy completion bound; the ground truth
//!   for optimality claims, practical to `n ≈ 30` (and far beyond on
//!   feasible instances, where the completion bound fires at the root).
//! * [`subset_dp_order`] — exact feasibility by breadth-first dynamic
//!   programming over item subsets (`O(2ⁿ·n)` time *and* memory), kept
//!   as an independent cross-check oracle for small `n`.

use crate::deal::Deal;
use crate::goods::{Goods, Item, ItemId};
use crate::money::Money;
use crate::policy::PaymentPolicy;
use crate::safety::SafetyMargins;
use crate::sequence::{verify, Action, ExchangeSequence, VerifiedSequence};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;

/// Which scheduling algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Algorithm {
    /// Optimal `O(n log n)` sort (default).
    #[default]
    Greedy,
    /// Indexed `O(n log n)` stepwise construction (paper-style; output
    /// bit-identical to the original quadratic scan).
    Sandholm,
    /// Exponential subset DP (cross-check oracle; ≤
    /// [`SUBSET_DP_MAX_ITEMS`] items).
    SubsetDp,
    /// Branch-and-bound exact solver (ground truth; ≤
    /// [`BRANCH_AND_BOUND_MAX_ITEMS`] items).
    BranchAndBound,
}

impl Algorithm {
    /// All algorithms, for cross-validation sweeps.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Greedy,
        Algorithm::Sandholm,
        Algorithm::SubsetDp,
        Algorithm::BranchAndBound,
    ];

    /// Stable label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Greedy => "greedy",
            Algorithm::Sandholm => "sandholm",
            Algorithm::SubsetDp => "subset-dp",
            Algorithm::BranchAndBound => "bnb",
        }
    }
}

/// Largest item count accepted by [`subset_dp_order`].
pub const SUBSET_DP_MAX_ITEMS: usize = 24;

/// Largest item count accepted by [`branch_and_bound_order`].
///
/// The search is exact, and therefore worst-case exponential in the
/// number of *negative-surplus* items (rotation dominance makes
/// non-negative-surplus items forced moves): an adversarial all-negative
/// instance probed just under its exact boundary really does visit
/// `~2^n` masks. The cap keeps that accidental worst case in the same
/// ballpark as the subset DP's instead of unbounded, while still
/// reaching the `n = 30` the differential suite certifies.
pub const BRANCH_AND_BOUND_MAX_ITEMS: usize = 30;

/// Error from the schedulers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// No delivery order satisfies the margins; `required` is the
    /// smallest total margin `ε_s + ε_c` that would make the deal
    /// schedulable, `available` is what the parties granted.
    Infeasible {
        /// Minimal total margin for which a sequence exists.
        required: Money,
        /// The margin that was available (`ε_s + ε_c`).
        available: Money,
    },
    /// The exact solvers refuse instances beyond their caps
    /// ([`SUBSET_DP_MAX_ITEMS`] / [`BRANCH_AND_BOUND_MAX_ITEMS`]).
    TooManyItems {
        /// Items in the deal.
        n_items: usize,
        /// The hard limit.
        limit: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Infeasible {
                required,
                available,
            } => write!(
                f,
                "no feasible exchange sequence: requires total margin {required}, available {available}"
            ),
            ScheduleError::TooManyItems { n_items, limit } => {
                write!(f, "exact solver limited to {limit} items, got {n_items}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// The greedy delivery order: non-positive-surplus items first (ascending
/// `Vc`, ties by id), then positive-surplus items (descending `Vs`, ties
/// by id).
fn greedy_cmp(a: &Item, b: &Item) -> Ordering {
    match (a.surplus().is_positive(), b.surplus().is_positive()) {
        (false, true) => Ordering::Less,
        (true, false) => Ordering::Greater,
        (false, false) => a
            .consumer_value()
            .cmp(&b.consumer_value())
            .then(a.id().cmp(&b.id())),
        (true, true) => b
            .supplier_cost()
            .cmp(&a.supplier_cost())
            .then(a.id().cmp(&b.id())),
    }
}

/// The Sandholm *placement* order (the reverse of the emitted delivery
/// order): positive-surplus items by ascending `Vs` (they enlarge the
/// collateral for everything placed earlier), then non-positive-surplus
/// items by descending `Vc`; ties by id, matching the quadratic scan's
/// selection rule exactly.
fn sandholm_placement_cmp(a: &Item, b: &Item) -> Ordering {
    match (a.surplus().is_positive(), b.surplus().is_positive()) {
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (true, true) => a
            .supplier_cost()
            .cmp(&b.supplier_cost())
            .then(a.id().cmp(&b.id())),
        (false, false) => b
            .consumer_value()
            .cmp(&a.consumer_value())
            .then(a.id().cmp(&b.id())),
    }
}

/// The greedy delivery order: negative-surplus items first (ascending
/// `Vc`), then positive-surplus items (descending `Vs`). Ties break by
/// item id so the order is deterministic.
///
/// This order minimises `max_j req(j)` over all orders (see module docs),
/// independent of the margins.
pub fn greedy_order(goods: &Goods) -> Vec<ItemId> {
    let mut order = Vec::new();
    greedy_order_into(goods, &mut order);
    order
}

/// [`greedy_order`] into a caller-reusable buffer: a single index-based
/// unstable sort, no allocation once `out` has warmed to capacity.
pub fn greedy_order_into(goods: &Goods, out: &mut Vec<ItemId>) {
    out.clear();
    out.extend(goods.ids());
    out.sort_unstable_by(|a, b| greedy_cmp(goods.item(*a), goods.item(*b)));
}

/// The per-position requirement profile of a delivery order:
/// `req(j) = Vs(x_j) − Σ_{i>j} s(x_i)` for each position `j` (0-based).
///
/// # Panics
///
/// Panics if `order` is not a permutation of the goods' item ids (checked
/// via length and per-item lookup).
pub fn requirement_profile(goods: &Goods, order: &[ItemId]) -> Vec<Money> {
    let mut reqs = Vec::new();
    requirement_profile_into(goods, order, &mut reqs);
    reqs
}

/// [`requirement_profile`] into a caller-reusable buffer: one reverse
/// suffix-sum pass, no allocation once `out` has warmed to capacity.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the goods' item ids.
pub fn requirement_profile_into(goods: &Goods, order: &[ItemId], out: &mut Vec<Money>) {
    assert_eq!(order.len(), goods.len(), "order must cover all items");
    out.clear();
    out.resize(order.len(), Money::ZERO);
    // Suffix surpluses: suffix[j] = Σ_{i>j} s(x_i).
    let mut suffix = Money::ZERO;
    for j in (0..order.len()).rev() {
        let item = goods.item(order[j]);
        out[j] = item.supplier_cost() - suffix;
        suffix += item.surplus();
    }
}

/// The margin a given delivery order requires:
/// `max(0, max_j req(j))`, evaluated in one suffix-sum pass without
/// materialising the profile.
///
/// # Panics
///
/// Panics if `order` is not a permutation of the goods' item ids.
pub fn required_margin_of_order(goods: &Goods, order: &[ItemId]) -> Money {
    assert_eq!(order.len(), goods.len(), "order must cover all items");
    let mut suffix = Money::ZERO;
    let mut worst = Money::ZERO;
    for &id in order.iter().rev() {
        let item = goods.item(id);
        worst = worst.max(item.supplier_cost() - suffix);
        suffix += item.surplus();
    }
    worst
}

/// The minimal total margin `ε_s + ε_c` for which *any* feasible delivery
/// order exists — evaluated on the greedy order, which is minimax-optimal.
///
/// A fully safe exchange exists iff this is zero.
///
/// One-shot convenience over [`Scheduler::min_required_margin`]; callers
/// probing many instances (or one instance at many margins) should hold a
/// [`Scheduler`] to skip the per-call allocation.
///
/// # Examples
///
/// ```
/// use trustex_core::goods::Goods;
/// use trustex_core::money::Money;
/// use trustex_core::scheduler::min_required_margin;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Single item with positive cost: isolated safe exchange impossible —
/// // the required margin equals the cost of the last delivery.
/// let goods = Goods::from_f64_pairs(&[(3.0, 10.0)])?;
/// assert_eq!(min_required_margin(&goods), Money::from_units(3));
/// # Ok(())
/// # }
/// ```
pub fn min_required_margin(goods: &Goods) -> Money {
    Scheduler::new().min_required_margin(goods)
}

/// Whether the goods admit any delivery order under the given margins.
pub fn feasible(goods: &Goods, margins: SafetyMargins) -> bool {
    min_required_margin(goods) <= margins.total()
}

/// Reusable scratch buffers for the scheduler hot path.
///
/// [`min_required_margin`](Scheduler::min_required_margin),
/// [`feasible`](Scheduler::feasible) and
/// [`sandholm_order_into`](Scheduler::sandholm_order_into) perform zero
/// per-call heap allocation once the buffers have warmed to the largest
/// instance size seen, which is what lets the greedy hot path stream
/// `n = 10⁶` instances. The struct is cheap to create; hold one per
/// worker and feed it every instance.
///
/// # Examples
///
/// ```
/// use trustex_core::goods::Goods;
/// use trustex_core::money::Money;
/// use trustex_core::safety::SafetyMargins;
/// use trustex_core::scheduler::Scheduler;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sched = Scheduler::new();
/// let goods = Goods::from_f64_pairs(&[(3.0, 10.0), (2.0, 1.0)])?;
/// // One derivation answers any number of margin checks.
/// let req = sched.min_required_margin(&goods);
/// assert!(!sched.feasible(&goods, SafetyMargins::fully_safe()));
/// assert!(sched.feasible(&goods, SafetyMargins::new(req, Money::ZERO)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Scheduler {
    order: Vec<ItemId>,
}

impl Scheduler {
    /// A scheduler with empty scratch buffers.
    pub fn new() -> Scheduler {
        Scheduler::default()
    }

    /// [`min_required_margin`] without per-call allocation: derives the
    /// greedy order into the internal scratch buffer and folds the
    /// requirement profile in the same pass.
    pub fn min_required_margin(&mut self, goods: &Goods) -> Money {
        let mut order = std::mem::take(&mut self.order);
        greedy_order_into(goods, &mut order);
        let req = required_margin_of_order(goods, &order);
        self.order = order;
        req
    }

    /// [`feasible`] without per-call allocation. Callers checking one
    /// instance against a batch of margins should call
    /// [`min_required_margin`](Scheduler::min_required_margin) once and
    /// compare totals themselves — the requirement does not depend on the
    /// margin.
    pub fn feasible(&mut self, goods: &Goods, margins: SafetyMargins) -> bool {
        self.min_required_margin(goods) <= margins.total()
    }

    /// [`sandholm_order`] into a caller-reusable buffer; zero per-call
    /// allocation on the success path once the buffers have warmed.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::Infeasible`] when no order fits the margins; the
    /// exact `required` margin is derived once, from the scratch buffers.
    pub fn sandholm_order_into(
        &mut self,
        goods: &Goods,
        margins: SafetyMargins,
        out: &mut Vec<ItemId>,
    ) -> Result<(), ScheduleError> {
        let eps = margins.total();
        // The quadratic scan provably interleaves nothing: while any
        // positive-surplus item remains it either places the placeable
        // positive with minimal (Vs, id) or fails (an unplaceable
        // minimal-Vs positive means no positive is placeable, and placing
        // a negative first shrinks the budget and can never help); only
        // then come negatives by maximal (Vc, −id). So the whole
        // construction is the placement-order sort walked once behind a
        // budget cursor. The budget grows monotonically through the
        // positive phase and shrinks monotonically through the negative
        // phase, so the first unplaced index is always the scan's pick,
        // and a blocked head item can never become placeable later —
        // failure here is exactly the scan's eventual failure.
        out.clear();
        out.extend(goods.ids());
        out.sort_unstable_by(|a, b| sandholm_placement_cmp(goods.item(*a), goods.item(*b)));
        let mut budget = eps;
        for &id in out.iter() {
            let item = goods.item(id);
            if item.supplier_cost() > budget {
                return Err(ScheduleError::Infeasible {
                    required: self.min_required_margin(goods),
                    available: eps,
                });
            }
            budget += item.surplus();
        }
        out.reverse();
        Ok(())
    }
}

/// Paper-style stepwise construction: chooses deliveries from the last
/// position backwards. An item `x` is *placeable* at the current last
/// free position when `Vs(x) ≤ ε + s(W)`, `W` being the set already
/// placed after it. Among placeable items the rule prefers
/// positive-surplus items with minimal `Vs` (they enlarge the collateral
/// for everything placed earlier); once no positive-surplus item remains,
/// negative-surplus items with maximal `Vc`.
///
/// This is the indexed `O(n log n)` form: two ordered candidate indexes
/// (minimum-`Vs` positives, maximum-`Vc` negatives) walked once behind a
/// budget cursor. Output — success order, error, and error payload — is
/// bit-identical to [`sandholm_order_scan`], the original `O(n²)`
/// formulation kept as a test oracle.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when at some step nothing is placeable.
pub fn sandholm_order(goods: &Goods, margins: SafetyMargins) -> Result<Vec<ItemId>, ScheduleError> {
    let mut order = Vec::new();
    Scheduler::new().sandholm_order_into(goods, margins, &mut order)?;
    Ok(order)
}

/// The original `O(n²)` per-step scan formulation of [`sandholm_order`],
/// kept verbatim as the reference oracle the indexed version is pinned
/// against — the complexity the paper quotes, and the baseline the E2
/// scaling experiment measures.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when at some step nothing is placeable.
pub fn sandholm_order_scan(
    goods: &Goods,
    margins: SafetyMargins,
) -> Result<Vec<ItemId>, ScheduleError> {
    let eps = margins.total();
    let mut remaining: Vec<ItemId> = goods.ids().collect();
    let mut placed_surplus = Money::ZERO; // s(W)
    let mut reversed: Vec<ItemId> = Vec::with_capacity(goods.len());

    while !remaining.is_empty() {
        let budget = eps + placed_surplus;
        // Scan remaining items for the best placeable candidate: O(n) per
        // step, O(n²) total.
        let mut best: Option<(usize, ItemId)> = None;
        let mut any_positive_left = false;
        for (pos, &id) in remaining.iter().enumerate() {
            let item = goods.item(id);
            if item.surplus().is_positive() {
                any_positive_left = true;
            }
            if item.supplier_cost() > budget {
                continue; // not placeable
            }
            let better = match best {
                None => true,
                Some((_, cur)) => {
                    let c = goods.item(cur);
                    let cand_pos_surplus = item.surplus().is_positive();
                    let cur_pos_surplus = c.surplus().is_positive();
                    match (cand_pos_surplus, cur_pos_surplus) {
                        (true, false) => true,
                        (false, true) => false,
                        (true, true) => {
                            // Prefer smaller Vs (keeps cheap tail deliveries).
                            (item.supplier_cost(), id) < (c.supplier_cost(), cur)
                        }
                        (false, false) => {
                            // Prefer larger Vc (big-value items late).
                            (item.consumer_value(), std::cmp::Reverse(id))
                                > (c.consumer_value(), std::cmp::Reverse(cur))
                        }
                    }
                }
            };
            if better {
                best = Some((pos, id));
            }
        }
        // A positive-surplus item must be placed while positive-surplus
        // items remain: placing a negative-surplus item first shrinks the
        // budget and can never help. If the best candidate is negative-
        // surplus while positives are still pending, the positives are
        // unplaceable now and forever.
        match best {
            Some((pos, id)) if !any_positive_left || goods.item(id).surplus().is_positive() => {
                placed_surplus += goods.item(id).surplus();
                reversed.push(id);
                remaining.swap_remove(pos);
            }
            _ => {
                return Err(ScheduleError::Infeasible {
                    required: min_required_margin(goods),
                    available: eps,
                });
            }
        }
    }
    reversed.reverse();
    Ok(reversed)
}

/// Exact feasibility by subset DP, returning a feasible delivery order if
/// one exists (`Ok(None)` when infeasible).
///
/// State: set `T` of still-undelivered items. `T` is reachable iff the
/// full set can be reduced to `T` respecting (†) at every step; an item
/// `x ∈ T` can be delivered from `T` iff `Vs(x) − (s(T) − s(x)) ≤ ε`.
/// The DP explores reachable states breadth-first. Superseded as the
/// primary ground truth by [`branch_and_bound_order`]; kept as an
/// independent cross-check oracle for small instances.
///
/// # Errors
///
/// [`ScheduleError::TooManyItems`] beyond [`SUBSET_DP_MAX_ITEMS`] items.
pub fn subset_dp_order(
    goods: &Goods,
    margins: SafetyMargins,
) -> Result<Option<Vec<ItemId>>, ScheduleError> {
    let n = goods.len();
    if n > SUBSET_DP_MAX_ITEMS {
        return Err(ScheduleError::TooManyItems {
            n_items: n,
            limit: SUBSET_DP_MAX_ITEMS,
        });
    }
    let eps = margins.total();
    let ids: Vec<ItemId> = goods.ids().collect();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // surplus_of[mask] computed incrementally would need 2^n memory anyway
    // for `visited`; keep per-item surpluses and accumulate on the fly.
    let surplus: Vec<Money> = ids.iter().map(|id| goods.item(*id).surplus()).collect();
    let cost: Vec<Money> = ids
        .iter()
        .map(|id| goods.item(*id).supplier_cost())
        .collect();

    let mut visited = vec![false; 1usize << n];
    // predecessor[mask] = item removed to reach `mask` from mask|bit.
    let mut predecessor: Vec<u8> = vec![u8::MAX; 1usize << n];
    let mut frontier: Vec<(u32, Money)> = vec![(full, surplus.iter().copied().sum())];
    visited[full as usize] = true;

    while let Some((mask, s_mask)) = frontier.pop() {
        if mask == 0 {
            continue;
        }
        for i in 0..n {
            let bit = 1u32 << i;
            if mask & bit == 0 {
                continue;
            }
            // Deliver item i from state `mask`.
            if cost[i] - (s_mask - surplus[i]) <= eps {
                let next = mask & !bit;
                if !visited[next as usize] {
                    visited[next as usize] = true;
                    predecessor[next as usize] = i as u8;
                    frontier.push((next, s_mask - surplus[i]));
                }
            }
        }
    }

    if !visited[0] {
        return Ok(None);
    }
    // Reconstruct the order by walking predecessors from the empty set up.
    let mut order_rev: Vec<ItemId> = Vec::with_capacity(n);
    let mut mask = 0u32;
    while mask != full {
        let i = predecessor[mask as usize];
        debug_assert_ne!(i, u8::MAX, "broken predecessor chain");
        order_rev.push(ids[i as usize]);
        mask |= 1u32 << i;
    }
    order_rev.reverse();
    Ok(Some(order_rev))
}

/// Cheap multiplicative hasher for the `u64` state masks of the
/// branch-and-bound memo — the memo lookup sits on the hottest search
/// path and needs no DoS resistance.
#[derive(Default)]
struct MaskHasher(u64);

impl std::hash::Hasher for MaskHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        self.0 = h;
    }
}

type MaskSet = HashSet<u64, std::hash::BuildHasherDefault<MaskHasher>>;

/// Depth-first branch-and-bound search state for
/// [`branch_and_bound_order`].
struct BnbSearch<'a> {
    ids: &'a [ItemId],
    cost: &'a [Money],
    surplus: &'a [Money],
    /// Indexes of items with `s ≥ 0`, sorted by ascending `(Vs, id)` —
    /// the forced-move queue.
    gainers: &'a [usize],
    /// Indexes of items with `s < 0`, sorted by descending `(Vc, −id)` —
    /// the branch heuristic (try big-value items last-in-delivery first).
    drainers: &'a [usize],
    /// All indexes in global greedy delivery order. The greedy order of
    /// *any* subset is a subsequence of this, so the completion bound is
    /// a sortless masked pass.
    greedy_idx: &'a [usize],
    eps: Money,
    total_surplus: Money,
    /// Masks proven to admit no completion (the budget is a function of
    /// the mask alone, so failure memoisation is sound).
    failed: MaskSet,
    /// Items placed so far, backwards: `chosen[0]` is the last delivery.
    chosen: Vec<usize>,
    /// Greedy completion (in delivery order) recorded on early success.
    completion: Vec<ItemId>,
}

impl BnbSearch<'_> {
    /// Can `remaining` be fully placed, given that everything outside it
    /// is already placed at later positions? `rem_surplus = s(remaining)`
    /// and `pos_surplus = Σ_{x ∈ remaining} max(s(x), 0)` are threaded to
    /// keep each node O(k) before branching.
    fn solve(&mut self, remaining: u64, rem_surplus: Money, pos_surplus: Money) -> bool {
        if remaining == 0 {
            return true;
        }
        if self.failed.contains(&remaining) {
            return false;
        }
        // Budget for the current last free position: ε + s(placed).
        let budget = self.eps + (self.total_surplus - rem_surplus);

        // Dominance (rotation lemma): if a placeable item `a` with
        // s(a) ≥ 0 exists and *any* completion σ of this state exists,
        // then moving `a` to the front of σ is also a completion — `a`'s
        // own constraint is exactly placeability, and every other item's
        // collateral either keeps its placed-after set or gains `a`
        // (+s(a) ≥ 0). So such an item can be placed as a forced move,
        // no branching. The cheapest-to-place candidate is the minimal-
        // (Vs, id) remaining gainer: if even it is blocked, none is —
        // and if gainers remain while only budget-shrinking drainers are
        // placeable, no gainer can ever become placeable again, so the
        // state is dead. (An exchange argument, not an appeal to greedy
        // optimality: the oracle stays independent of the code under
        // differential test.)
        let mut gainers_left = false;
        for &i in self.gainers {
            if remaining & (1u64 << i) == 0 {
                continue;
            }
            gainers_left = true;
            if self.cost[i] <= budget {
                self.chosen.push(i);
                if self.solve(
                    remaining & !(1u64 << i),
                    rem_surplus - self.surplus[i],
                    pos_surplus - self.surplus[i],
                ) {
                    return true;
                }
                self.chosen.pop();
            }
            break; // minimal-(Vs, id) gainer blocked or subtree failed
        }
        if gainers_left {
            self.failed.insert(remaining);
            return false;
        }

        // Drainers only from here (pos_surplus == 0): the budget can only
        // shrink. Surplus-based pruning: wherever item x ends up, the
        // items delivered after it contribute at most the positive
        // surpluses of the other remaining items (none, here) on top of
        // s(placed) — any remaining item priced above that ceiling kills
        // the state. Sound and independent of greedy optimality.
        let mut bits = remaining;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let own_pos = self.surplus[i].max(Money::ZERO);
            if self.cost[i] > budget + (pos_surplus - own_pos) {
                self.failed.insert(remaining);
                return false;
            }
        }

        // Greedy completion bound: if the greedy order of `remaining`
        // fits the budget, that concrete order *is* a valid completion —
        // no optimality assumption, the profile check verifies it
        // outright. On feasible instances this fires at the root.
        if self.greedy_completion_fits(remaining, budget) {
            return true;
        }

        for &i in self.drainers {
            let bit = 1u64 << i;
            if remaining & bit == 0 || self.cost[i] > budget {
                continue;
            }
            self.chosen.push(i);
            if self.solve(remaining & !bit, rem_surplus - self.surplus[i], pos_surplus) {
                return true;
            }
            self.chosen.pop();
        }
        self.failed.insert(remaining);
        false
    }

    /// Checks whether the greedy order of `remaining` keeps every
    /// position's requirement within `budget`; records it as the
    /// completion when it does.
    fn greedy_completion_fits(&mut self, remaining: u64, budget: Money) -> bool {
        let mut suffix = Money::ZERO;
        let mut worst = Money::MIN;
        for &i in self.greedy_idx.iter().rev() {
            if remaining & (1u64 << i) == 0 {
                continue;
            }
            worst = worst.max(self.cost[i] - suffix);
            suffix += self.surplus[i];
        }
        if worst <= budget {
            self.completion.clear();
            self.completion.extend(
                self.greedy_idx
                    .iter()
                    .filter(|&&i| remaining & (1u64 << i) != 0)
                    .map(|&i| self.ids[i]),
            );
            true
        } else {
            false
        }
    }
}

/// Exact feasibility by branch-and-bound, returning a feasible delivery
/// order if one exists (`Ok(None)` when infeasible).
///
/// The search mirrors the stepwise construction: it assigns deliveries
/// from the **last** position backwards (so each node's constraint is
/// just `Vs(x) ≤ ε + s(placed)`). Four devices make it exact *and* fast:
///
/// * **rotation dominance** — a placeable item with non-negative surplus
///   can always be moved to the front of any completion (every other
///   item's collateral only gains), so such items are forced moves and
///   branching happens only among the budget-shrinking negative-surplus
///   items — `2^#negatives` worst-case states instead of `2^n`;
/// * **surplus-based pruning** — a node is cut when some remaining item
///   could not satisfy (†) even if every other remaining item with
///   positive surplus were delivered after it;
/// * **greedy completion bound** — when the greedy order of the
///   remaining set fits the node's budget, that order is spliced in as
///   the completion (its requirement profile is checked directly, so no
///   optimality assumption leaks into the oracle); on feasible instances
///   this fires at the root;
/// * **failed-state memoisation** — a mask's budget is a function of the
///   mask, so a subtree that failed once can never succeed; the search
///   therefore visits at most the subset-DP state count, and in practice
///   orders of magnitude fewer.
///
/// Infeasibility verdicts rest on exchange arguments and exhaustive
/// search, never on the greedy comparator under differential test, which
/// is what lets the suite use this oracle to *prove* the paper's claim
/// that the greedy margin is the exact minimum at sizes the subset DP
/// cannot reach (`n ≈ 30` against the DP's hard cap of
/// [`SUBSET_DP_MAX_ITEMS`]).
///
/// # Errors
///
/// [`ScheduleError::TooManyItems`] beyond
/// [`BRANCH_AND_BOUND_MAX_ITEMS`] items.
pub fn branch_and_bound_order(
    goods: &Goods,
    margins: SafetyMargins,
) -> Result<Option<Vec<ItemId>>, ScheduleError> {
    let n = goods.len();
    if n > BRANCH_AND_BOUND_MAX_ITEMS {
        return Err(ScheduleError::TooManyItems {
            n_items: n,
            limit: BRANCH_AND_BOUND_MAX_ITEMS,
        });
    }
    let ids: Vec<ItemId> = goods.ids().collect();
    let cost: Vec<Money> = ids
        .iter()
        .map(|id| goods.item(*id).supplier_cost())
        .collect();
    let surplus: Vec<Money> = ids.iter().map(|id| goods.item(*id).surplus()).collect();
    let mut gainers: Vec<usize> = (0..n).filter(|&i| !surplus[i].is_negative()).collect();
    gainers.sort_unstable_by_key(|&i| (cost[i], ids[i]));
    let mut drainers: Vec<usize> = (0..n).filter(|&i| surplus[i].is_negative()).collect();
    drainers.sort_unstable_by(|&a, &b| {
        goods
            .item(ids[b])
            .consumer_value()
            .cmp(&goods.item(ids[a]).consumer_value())
            .then(ids[a].cmp(&ids[b]))
    });
    let mut greedy_idx: Vec<usize> = (0..n).collect();
    greedy_idx.sort_unstable_by(|&a, &b| greedy_cmp(goods.item(ids[a]), goods.item(ids[b])));

    let total_surplus: Money = surplus.iter().copied().sum();
    let pos_surplus: Money = surplus.iter().copied().filter(|s| s.is_positive()).sum();
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };

    let mut search = BnbSearch {
        ids: &ids,
        cost: &cost,
        surplus: &surplus,
        gainers: &gainers,
        drainers: &drainers,
        greedy_idx: &greedy_idx,
        eps: margins.total(),
        total_surplus,
        failed: MaskSet::default(),
        chosen: Vec::with_capacity(n),
        completion: Vec::new(),
    };
    if !search.solve(full, total_surplus, pos_surplus) {
        return Ok(None);
    }
    // Delivery order: the greedy completion covers the earliest
    // positions, then the chosen stack unwinds backwards.
    let mut order = search.completion;
    order.extend(search.chosen.iter().rev().map(|&i| ids[i]));
    debug_assert_eq!(order.len(), n);
    Ok(Some(order))
}

/// Interleaves payments into a delivery order according to `policy`,
/// producing a complete exchange sequence.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] if the order violates (†) — callers that
/// obtained the order from a scheduler under the same margins never see
/// this.
pub fn interleave_payments(
    deal: &Deal,
    margins: SafetyMargins,
    order: &[ItemId],
    policy: PaymentPolicy,
) -> Result<ExchangeSequence, ScheduleError> {
    let goods = deal.goods();
    assert_eq!(order.len(), goods.len(), "order must cover all items");

    let mut actions = Vec::with_capacity(order.len() * 2 + 1);
    let mut outstanding = deal.price();
    // Remaining cost/value *before* each delivery.
    let mut remaining_cost = goods.total_supplier_cost();
    let mut remaining_value = goods.total_consumer_value();

    for &id in order {
        let item = goods.item(id);
        // Admissible outstanding balance after an optional payment, such
        // that delivering `id` right after stays within the window.
        let lower_now = remaining_cost - margins.eps_consumer();
        let upper_after = (remaining_value - item.consumer_value()) + margins.eps_supplier();
        let lo = lower_now.max(Money::ZERO);
        let hi = outstanding.min(upper_after);
        if lo > hi {
            return Err(ScheduleError::Infeasible {
                required: min_required_margin(goods),
                available: margins.total(),
            });
        }
        let target = policy.choose_outstanding(lo, hi);
        let payment = outstanding - target;
        if payment.is_positive() {
            actions.push(Action::Pay(payment));
            outstanding = target;
        }
        actions.push(Action::Deliver(id));
        remaining_cost -= item.supplier_cost();
        remaining_value -= item.consumer_value();
    }
    if outstanding.is_positive() {
        actions.push(Action::Pay(outstanding));
    }
    Ok(ExchangeSequence::new(actions))
}

/// Runs the chosen algorithm end to end: order the deliveries, interleave
/// payments, and independently [`verify`] the result.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when the margins are too tight, or
/// [`ScheduleError::TooManyItems`] for [`Algorithm::SubsetDp`] /
/// [`Algorithm::BranchAndBound`] on large deals.
///
/// # Panics
///
/// Panics if the internally produced sequence fails verification — that
/// would be a bug in this crate, not a caller error.
///
/// # Examples
///
/// ```
/// use trustex_core::deal::Deal;
/// use trustex_core::goods::Goods;
/// use trustex_core::money::Money;
/// use trustex_core::policy::PaymentPolicy;
/// use trustex_core::safety::SafetyMargins;
/// use trustex_core::scheduler::{schedule, Algorithm};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let goods = Goods::from_f64_pairs(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)])?;
/// let deal = Deal::new(goods, Money::from_units(9))?;
/// // Fully safe is impossible (every item costs the supplier something)…
/// let margins = SafetyMargins::fully_safe();
/// assert!(schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy).is_err());
/// // …but a small trust-backed margin makes the deal schedulable.
/// let margins = SafetyMargins::symmetric(Money::from_units(1))?;
/// let verified = schedule(&deal, margins, PaymentPolicy::Lazy, Algorithm::Greedy)?;
/// assert!(verified.max_consumer_temptation() <= margins.eps_supplier());
/// # Ok(())
/// # }
/// ```
pub fn schedule(
    deal: &Deal,
    margins: SafetyMargins,
    policy: PaymentPolicy,
    algorithm: Algorithm,
) -> Result<VerifiedSequence, ScheduleError> {
    let goods = deal.goods();
    let order = match algorithm {
        Algorithm::Greedy => {
            let order = greedy_order(goods);
            let required = required_margin_of_order(goods, &order);
            if required > margins.total() {
                return Err(ScheduleError::Infeasible {
                    required,
                    available: margins.total(),
                });
            }
            order
        }
        Algorithm::Sandholm => sandholm_order(goods, margins)?,
        Algorithm::SubsetDp => match subset_dp_order(goods, margins)? {
            Some(order) => order,
            None => {
                return Err(ScheduleError::Infeasible {
                    required: min_required_margin(goods),
                    available: margins.total(),
                });
            }
        },
        Algorithm::BranchAndBound => match branch_and_bound_order(goods, margins)? {
            Some(order) => order,
            None => {
                return Err(ScheduleError::Infeasible {
                    required: min_required_margin(goods),
                    available: margins.total(),
                });
            }
        },
    };
    let sequence = interleave_payments(deal, margins, &order, policy)?;
    Ok(verify(deal, margins, &sequence)
        .expect("scheduler produced a sequence rejected by the verifier (bug)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goods(pairs: &[(f64, f64)]) -> Goods {
        Goods::from_f64_pairs(pairs).unwrap()
    }

    fn margins(eps: f64) -> SafetyMargins {
        SafetyMargins::symmetric(Money::from_f64(eps / 2.0)).unwrap()
    }

    // --- impossibility & existence -------------------------------------

    #[test]
    fn isolated_exchange_impossible_with_positive_costs() {
        // Every item has Vs > 0 ⇒ the last delivery always violates (†)
        // with ε = 0, whatever the order.
        let g = goods(&[(2.0, 5.0), (1.0, 4.0), (3.0, 6.0)]);
        assert!(min_required_margin(&g).is_positive());
        assert!(!feasible(&g, SafetyMargins::fully_safe()));
    }

    #[test]
    fn zero_cost_last_item_enables_fully_safe() {
        // A zero-cost item can be delivered last; here every prefix works.
        let g = goods(&[(0.0, 5.0), (2.0, 4.0)]);
        assert_eq!(min_required_margin(&g), Money::ZERO);
        assert!(feasible(&g, SafetyMargins::fully_safe()));
    }

    #[test]
    fn min_margin_single_item_equals_cost() {
        let g = goods(&[(3.0, 10.0)]);
        assert_eq!(min_required_margin(&g), Money::from_units(3));
        assert!(feasible(&g, margins(3.0)));
        assert!(!feasible(&g, margins(2.9)));
    }

    #[test]
    fn feasibility_monotone_in_margin() {
        let g = goods(&[(2.0, 3.0), (4.0, 1.0), (1.0, 6.0)]);
        let req = min_required_margin(&g);
        let below = SafetyMargins::new(req - Money::from_micros(1), Money::ZERO).unwrap();
        let exact = SafetyMargins::new(req, Money::ZERO).unwrap();
        assert!(!feasible(&g, below));
        assert!(feasible(&g, exact));
    }

    // --- greedy order structure ----------------------------------------

    #[test]
    fn greedy_puts_negative_surplus_first() {
        let g = goods(&[(1.0, 5.0), (5.0, 1.0), (2.0, 6.0), (6.0, 2.0)]);
        let order = greedy_order(&g);
        let surpluses: Vec<bool> = order
            .iter()
            .map(|id| g.item(*id).surplus().is_positive())
            .collect();
        // All `false` (non-positive surplus) before all `true`.
        let first_true = surpluses.iter().position(|b| *b).unwrap();
        assert!(surpluses[first_true..].iter().all(|b| *b));
        assert!(surpluses[..first_true].iter().all(|b| !*b));
    }

    #[test]
    fn greedy_negative_sorted_by_value_positive_by_cost_desc() {
        let g = goods(&[
            (5.0, 1.0), // neg, Vc=1
            (9.0, 3.0), // neg, Vc=3
            (1.0, 8.0), // pos, Vs=1
            (4.0, 9.0), // pos, Vs=4
        ]);
        let order = greedy_order(&g);
        let idx: Vec<usize> = order.iter().map(|id| id.index()).collect();
        assert_eq!(idx, vec![0, 1, 3, 2]);
    }

    #[test]
    fn greedy_order_into_reuses_buffer() {
        let g1 = goods(&[(5.0, 1.0), (1.0, 8.0)]);
        let g2 = goods(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0)]);
        let mut buf = Vec::new();
        greedy_order_into(&g1, &mut buf);
        assert_eq!(buf, greedy_order(&g1));
        greedy_order_into(&g2, &mut buf);
        assert_eq!(buf, greedy_order(&g2));
    }

    #[test]
    fn requirement_profile_matches_manual() {
        // Two items: a (Vs=2, Vc=5, s=3), b (Vs=1, Vc=4, s=3).
        // Order [a, b]: req(a) = 2 - s(b) = -1 ; req(b) = 1 - 0 = 1.
        let g = goods(&[(2.0, 5.0), (1.0, 4.0)]);
        let ids: Vec<ItemId> = g.ids().collect();
        let reqs = requirement_profile(&g, &ids);
        assert_eq!(reqs, vec![Money::from_units(-1), Money::from_units(1)]);
        assert_eq!(required_margin_of_order(&g, &ids), Money::from_units(1));
    }

    #[test]
    fn scheduler_scratch_matches_free_functions() {
        let mut sched = Scheduler::new();
        let gs = [
            goods(&[(3.0, 10.0)]),
            goods(&[(2.0, 6.0), (5.0, 6.0)]),
            goods(&[(0.0, 5.0), (2.0, 4.0), (7.0, 1.0)]),
        ];
        for g in &gs {
            assert_eq!(sched.min_required_margin(g), min_required_margin(g));
            for eps in [0.0, 1.5, 4.0] {
                assert_eq!(sched.feasible(g, margins(eps)), feasible(g, margins(eps)));
            }
        }
    }

    // --- cross-validation of the algorithms -----------------------------

    #[test]
    fn all_algorithms_agree_on_feasibility_small() {
        // Deterministic pseudo-random instances, n ≤ 6, several margins.
        let mut x = 2u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..60 {
            let n = 1 + (trial % 6);
            let pairs: Vec<(f64, f64)> = (0..n).map(|_| (next() * 8.0, next() * 8.0)).collect();
            let g = goods(&pairs);
            for eps_units in [0.0, 0.5, 1.5, 4.0, 10.0] {
                let m = margins(eps_units);
                let greedy_ok = feasible(&g, m);
                let sandholm_ok = sandholm_order(&g, m).is_ok();
                let dp_ok = subset_dp_order(&g, m).unwrap().is_some();
                let bnb_ok = branch_and_bound_order(&g, m).unwrap().is_some();
                assert_eq!(greedy_ok, dp_ok, "greedy vs dp: {pairs:?} eps={eps_units}");
                assert_eq!(
                    sandholm_ok, dp_ok,
                    "sandholm vs dp: {pairs:?} eps={eps_units}"
                );
                assert_eq!(bnb_ok, dp_ok, "bnb vs dp: {pairs:?} eps={eps_units}");
            }
        }
    }

    #[test]
    fn indexed_sandholm_matches_scan_exactly() {
        let mut x = 7u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..80 {
            let n = 1 + (trial % 8);
            let pairs: Vec<(f64, f64)> = (0..n).map(|_| (next() * 8.0, next() * 8.0)).collect();
            let g = goods(&pairs);
            for eps_units in [0.0, 0.5, 1.5, 4.0, 10.0] {
                let m = margins(eps_units);
                assert_eq!(
                    sandholm_order(&g, m),
                    sandholm_order_scan(&g, m),
                    "{pairs:?} eps={eps_units}"
                );
            }
        }
    }

    #[test]
    fn schedulers_produce_verified_sequences() {
        let g = goods(&[(2.0, 5.0), (1.0, 4.0), (3.0, 3.0), (0.5, 2.0)]);
        let deal = Deal::with_split_surplus(g).unwrap();
        let m = margins(4.0);
        for alg in Algorithm::ALL {
            for policy in PaymentPolicy::ALL {
                let v = schedule(&deal, m, policy, alg)
                    .unwrap_or_else(|e| panic!("{alg:?}/{policy:?}: {e}"));
                assert_eq!(v.sequence().delivery_count(), 4, "{alg:?}/{policy:?}");
                assert_eq!(
                    v.sequence().total_paid(),
                    deal.price(),
                    "{alg:?}/{policy:?}"
                );
            }
        }
    }

    #[test]
    fn infeasible_error_reports_required_margin() {
        let g = goods(&[(3.0, 10.0)]);
        let deal = Deal::with_split_surplus(g).unwrap();
        let err = schedule(
            &deal,
            SafetyMargins::fully_safe(),
            PaymentPolicy::Lazy,
            Algorithm::Greedy,
        )
        .unwrap_err();
        match err {
            ScheduleError::Infeasible {
                required,
                available,
            } => {
                assert_eq!(required, Money::from_units(3));
                assert_eq!(available, Money::ZERO);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("requires total margin"));
    }

    #[test]
    fn exact_margin_schedules() {
        let g = goods(&[(3.0, 10.0), (2.0, 8.0)]);
        let req = min_required_margin(&g);
        let deal = Deal::with_split_surplus(g).unwrap();
        let m = SafetyMargins::new(req, Money::ZERO).unwrap();
        for alg in Algorithm::ALL {
            assert!(
                schedule(&deal, m, PaymentPolicy::Lazy, alg).is_ok(),
                "{alg:?} must schedule at the exact margin"
            );
        }
    }

    #[test]
    fn subset_dp_rejects_large_instances() {
        let pairs: Vec<(f64, f64)> = (0..25).map(|i| (1.0, 2.0 + i as f64)).collect();
        let g = goods(&pairs);
        let err = subset_dp_order(&g, margins(100.0)).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::TooManyItems { n_items: 25, .. }
        ));
        assert!(err.to_string().contains("24 items"));
    }

    #[test]
    fn branch_and_bound_rejects_beyond_cap() {
        let over = BRANCH_AND_BOUND_MAX_ITEMS + 1;
        let pairs: Vec<(f64, f64)> = (0..over).map(|i| (1.0, 2.0 + i as f64)).collect();
        let g = goods(&pairs);
        let err = branch_and_bound_order(&g, margins(1000.0)).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::TooManyItems {
                n_items: over,
                limit: BRANCH_AND_BOUND_MAX_ITEMS
            }
        );
        // At the cap itself a wide margin solves instantly via the
        // greedy completion bound at the root.
        let pairs: Vec<(f64, f64)> = (0..BRANCH_AND_BOUND_MAX_ITEMS)
            .map(|i| (1.0, 2.0 + i as f64))
            .collect();
        let g = goods(&pairs);
        let order = branch_and_bound_order(&g, margins(1000.0))
            .unwrap()
            .unwrap();
        assert_eq!(order.len(), BRANCH_AND_BOUND_MAX_ITEMS);
    }

    #[test]
    fn branch_and_bound_order_respects_margin() {
        let g = goods(&[(2.0, 6.0), (5.0, 6.0), (3.0, 1.0)]);
        let req = min_required_margin(&g);
        let m = SafetyMargins::new(req, Money::ZERO).unwrap();
        let order = branch_and_bound_order(&g, m).unwrap().expect("feasible");
        assert!(required_margin_of_order(&g, &order) <= req);
        if req > Money::ZERO {
            let below = SafetyMargins::new(req - Money::from_micros(1), Money::ZERO).unwrap();
            assert!(branch_and_bound_order(&g, below).unwrap().is_none());
        }
    }

    #[test]
    fn sandholm_is_margin_sensitive() {
        let g = goods(&[(2.0, 6.0), (5.0, 6.0)]);
        // min margin: deliver Vs=2 last? req profile for [1(Vs5), 0(Vs2)]:
        // req(x1)=5 - s(x0)=5-4=1; req(x0)=2 ⇒ margin 2. Order [0,1]:
        // req(x0)=2-1=1; req(x1)=5 ⇒ 5. Optimal = 2.
        assert_eq!(min_required_margin(&g), Money::from_units(2));
        assert!(sandholm_order(&g, margins(2.0)).is_ok());
        assert!(sandholm_order(&g, margins(1.9)).is_err());
    }

    #[test]
    fn interleave_lazy_defers_final_payment() {
        let g = goods(&[(1.0, 4.0), (2.0, 5.0)]);
        let deal = Deal::with_split_surplus(g).unwrap();
        let m = margins(6.0);
        let order = greedy_order(deal.goods());
        let seq = interleave_payments(&deal, m, &order, PaymentPolicy::Lazy).unwrap();
        // Lazy: the last action must be a payment (consumer pays last).
        assert!(matches!(seq.actions().last(), Some(Action::Pay(_))));
    }

    #[test]
    fn interleave_eager_prepays() {
        let g = goods(&[(1.0, 4.0), (2.0, 5.0)]);
        let deal = Deal::with_split_surplus(g).unwrap();
        let m = margins(20.0); // wide margins: eager pays everything upfront
        let order = greedy_order(deal.goods());
        let seq = interleave_payments(&deal, m, &order, PaymentPolicy::Eager).unwrap();
        assert!(
            matches!(seq.actions().first(), Some(Action::Pay(_))),
            "eager should front-load payments: {:?}",
            seq.actions()
        );
        // With margins that wide the whole price is paid before delivery.
        match seq.actions().first() {
            Some(Action::Pay(m0)) => assert_eq!(*m0, deal.price()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn algorithm_labels() {
        assert_eq!(Algorithm::Greedy.label(), "greedy");
        assert_eq!(Algorithm::default(), Algorithm::Greedy);
        assert_eq!(Algorithm::ALL.len(), 4);
        assert_eq!(Algorithm::Sandholm.label(), "sandholm");
        assert_eq!(Algorithm::SubsetDp.label(), "subset-dp");
        assert_eq!(Algorithm::BranchAndBound.label(), "bnb");
    }

    #[test]
    fn required_margin_zero_for_all_zero_cost() {
        let g = goods(&[(0.0, 3.0), (0.0, 1.0)]);
        assert_eq!(min_required_margin(&g), Money::ZERO);
        let deal = Deal::new(g, Money::from_units(2)).unwrap();
        let v = schedule(
            &deal,
            SafetyMargins::fully_safe(),
            PaymentPolicy::Lazy,
            Algorithm::Greedy,
        )
        .unwrap();
        assert_eq!(v.max_consumer_temptation(), Money::ZERO);
        assert_eq!(v.max_supplier_temptation(), Money::ZERO);
    }
}
