//! P-Grid: the distributed binary-trie storage of Aberer et al., used by
//! the CIKM 2001 reputation system (the paper's reference \[2\]).
//!
//! Each peer owns a binary *path*; it stores the data items whose keys
//! the path prefixes, and it keeps, for every level `l` of its path, a
//! small bucket of *references* to peers on the other side of the trie
//! at that level (same first `l` bits, opposite bit `l`). Queries
//! greedily resolve one more key bit per hop, giving `O(log N)` routing
//! messages. Peers sharing the same full path are *replicas* of each
//! other.
//!
//! The grid is built by the emergent pairwise-meeting protocol: peers
//! repeatedly meet — uniformly at random for cross-subtree references
//! and, in alternation, within their own subspace (the recursive
//! meeting cascade, sampled through the leaf directory) so that
//! identical-path peers keep splitting the key space even at 10^5-peer
//! populations. Splitting stops at a configured depth so that each leaf
//! retains a replica group.
//!
//! # Flat-arena layout (10^5–10^6-peer populations)
//!
//! Everything the hot paths touch lives in flat, index-addressed
//! storage — no per-peer allocation graph, no tree-shaped directory:
//!
//! * **Peer state is struct-of-arrays.** Paths, departure flags,
//!   reference tables and complaint stores are parallel `Vec`s indexed
//!   by the dense peer index. The per-level reference buckets of *all*
//!   peers share one flat `Vec<RefEntry>` arena with a fixed
//!   `max_depth × max_refs` stride per peer, so a meeting touches two
//!   short cache lines instead of chasing nested `Vec`s.
//! * **Heap-slot leaf directory.** The directory mapping every occupied
//!   path to its owners is a flat arena of `2^(max_depth+1)` buckets
//!   indexed by [`BitPath::slot`] (the u64-bit-packed heap layout of the
//!   complete trie: root = 1, children of `s` = `2s`/`2s+1`). Lookup is
//!   one shift — replica-group resolution probes `max_depth + 1` slots
//!   directly ([`PGrid::responsible_peers`] is `O(depth)`), replacing
//!   first the naive O(n) population scan and then the `BTreeMap`
//!   directory of earlier revisions. Bucket membership moves are O(1)
//!   positional swap-removes patched through `dir_pos`.
//! * **Subtree counts.** A second heap-indexed arena counts the live
//!   peers at-or-below every trie node, maintained in O(1) per path
//!   extension and O(depth) per leave. [`PGrid::join`] uses it to sample
//!   uniform meeting partners from the newcomer's shrinking subspace in
//!   O(depth) per draw, so admissions stay cheap at any population.
//! * **Bounded reference buckets.** Each per-level bucket holds at most
//!   `max_refs` entries stamped with the meeting tick that last
//!   confirmed them; when a full bucket must admit a new peer, the
//!   *stalest* entry is overwritten in place (recency as a liveness
//!   proxy — O(1), no shifting), and entries pointing at departed peers
//!   are evicted lazily on the next bucket touch.
//! * **Complaint compaction.** A peer's store keeps one entry per
//!   `(by, about)` pair — the latest round wins — so repeated inserts
//!   about the same relationship never grow a replica's store beyond
//!   the number of distinct complaining pairs in its subspace. Replica
//!   synchronisation merges stores under the same latest-round rule.
//!
//! # Membership dynamics
//!
//! The overlay supports true joins and leaves, not just availability
//! masks over a bootstrap-time population:
//!
//! * [`PGrid::join`] admits a newcomer at the trie root and descends by
//!   the ordinary meeting protocol — each meeting with a peer of its
//!   current subspace extends its path one bit — finishing with a
//!   replica handoff that copies the store of its new group (or of the
//!   deepest remaining owner of its subspace), so coverage moves with
//!   responsibility.
//! * [`PGrid::leave`] removes a peer from the directory and releases
//!   its subtree counts; references other peers hold to it die lazily
//!   (routing treats departed peers as down, bucket touches and
//!   [`PGrid::repair`] evict them).
//!
//! Admission pacing (join backoff, bounded admission rate, stale-peer
//! eviction) lives one layer up, in [`crate::lifecycle`].

use crate::record::{BitPath, Complaint, Key};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use trustex_netsim::backoff::RetryPolicy;
use trustex_netsim::net::{Delivery, Network, NodeId};
use trustex_netsim::rng::SimRng;
use trustex_netsim::time::SimTime;
use trustex_persist::codec::{ByteReader, ByteWriter};
use trustex_persist::snapshot::Persistable;
use trustex_persist::PersistError;
use trustex_trust::model::PeerId;

/// Upper bound on `max_depth`: the leaf directory and subtree counts
/// are flat arenas of `2^(max_depth+1)` slots each.
const ARENA_DEPTH_LIMIT: u8 = 20;

/// Upper bound on `max_refs`: the reference arena allocates
/// `n · max_depth · max_refs` entries up front, so the per-bucket
/// capacity must stay bounded for the allocation to stay proportional
/// to the population (and for snapshot restore to stay safe against a
/// corrupted config declaring an absurd capacity).
const REFS_LIMIT: usize = 256;

/// Configuration of a [`PGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PGridConfig {
    /// Width of the key space in bits (1..=32).
    pub key_bits: u8,
    /// Maximum trie depth; `2^max_depth` leaves. Choosing
    /// `max_depth ≈ log2(n_peers / replication)` yields the target
    /// replica-group size. At most 20 (the directory arena holds
    /// `2^(max_depth+1)` slots).
    pub max_depth: u8,
    /// Maximum references kept per level.
    pub max_refs: usize,
    /// Global-mixing bootstrap meetings per peer (more meetings =
    /// better-filled reference tables). The split-cascade and
    /// replica-mixing phases of [`PGrid::build`] are fixed-budget and
    /// not counted here.
    pub meetings_per_peer: usize,
}

impl Default for PGridConfig {
    fn default() -> Self {
        PGridConfig {
            key_bits: 16,
            max_depth: 6,
            max_refs: 4,
            meetings_per_peer: 48,
        }
    }
}

impl PGridConfig {
    /// A configuration sized for `n` peers targeting a replica-group size
    /// of roughly `replication` (≥ 1).
    pub fn for_population(n: usize, replication: usize) -> PGridConfig {
        let repl = replication.max(1);
        let leaves = (n / repl).max(1);
        let depth = (usize::BITS - leaves.leading_zeros())
            .saturating_sub(1)
            .clamp(1, 16) as u8;
        PGridConfig {
            max_depth: depth,
            ..PGridConfig::default()
        }
    }

    fn validate(&self) {
        assert!(self.key_bits >= 1 && self.key_bits <= 32);
        assert!(self.max_depth >= 1 && self.max_depth <= self.key_bits);
        assert!(
            self.max_depth <= ARENA_DEPTH_LIMIT,
            "max_depth {} exceeds the directory-arena limit {}",
            self.max_depth,
            ARENA_DEPTH_LIMIT
        );
        assert!(self.max_refs >= 1 && self.max_refs <= REFS_LIMIT);
    }
}

/// One bounded-bucket reference entry: a peer and the meeting tick that
/// last confirmed it (higher = fresher). 8 bytes, so a whole bucket of
/// the default `max_refs = 4` is half a cache line in the flat arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RefEntry {
    peer: u32,
    stamp: u32,
}

impl RefEntry {
    const VACANT: RefEntry = RefEntry { peer: 0, stamp: 0 };
}

/// Jitter salt for a retry on the `from → to` link, so concurrent
/// retries on distinct links desynchronize deterministically.
fn link_salt(from: usize, to: usize) -> u64 {
    ((from as u64) << 32) | (to as u64 & 0xFFFF_FFFF)
}

/// Receipt for an insert: how it travelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertReceipt {
    /// Routing hops to the first responsible replica.
    pub hops: u32,
    /// Replicas that stored the item (0 = insert failed).
    pub replicas_reached: usize,
    /// Total latency accumulated along the routing path.
    pub latency: SimTime,
}

/// Result of a key query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryResult {
    /// Routing hops to the first responsible replica.
    pub hops: u32,
    /// Per-replica answers: the complaints each reachable replica holds
    /// for the queried key (dense peer index, complaint list).
    pub answers: Vec<(usize, Vec<Complaint>)>,
    /// Total latency of routing plus the slowest replica round-trip.
    pub latency: SimTime,
}

impl QueryResult {
    /// Whether at least one replica answered.
    pub fn is_resolved(&self) -> bool {
        !self.answers.is_empty()
    }
}

/// The distributed trie, laid out as a flat struct-of-arrays arena (see
/// the module docs for the layout rationale).
#[derive(Debug, Clone)]
pub struct PGrid {
    cfg: PGridConfig,
    /// `paths[i]` = peer `i`'s trie position (kept after departure for
    /// diagnostics; departed peers are excluded from the directory).
    paths: Vec<BitPath>,
    /// Departure flags: `true` once [`PGrid::leave`] removed the peer.
    departed: Vec<bool>,
    /// Number of non-departed peers.
    live: usize,
    /// Flat reference arena: peer `i`'s level-`l` bucket occupies
    /// `refs[(i·D + l)·R .. (i·D + l)·R + ref_len[i·D + l]]` where
    /// `D = max_depth`, `R = max_refs`.
    refs: Vec<RefEntry>,
    /// Occupancy of each `(peer, level)` bucket in the arena.
    ref_len: Vec<u8>,
    /// Compacted complaint stores: latest round per `(by, about)` pair.
    stores: Vec<BTreeMap<(PeerId, PeerId), u64>>,
    /// Leaf-directory arena: `buckets[path.slot()]` = dense indices of
    /// the live peers at exactly that path.
    buckets: Vec<Vec<u32>>,
    /// `subtree[slot]` = live peers whose path is at or below the slot.
    subtree: Vec<u32>,
    /// Number of non-empty directory buckets.
    occupied: usize,
    /// `dir_pos[i]` = position of peer `i` inside its directory bucket
    /// (makes directory moves O(1) via swap-remove).
    dir_pos: Vec<u32>,
    /// Meeting tick, stamps reference entries for recency eviction.
    clock: u64,
}

impl PGrid {
    /// Builds a grid of `n` peers by the emergent meeting protocol.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the configuration is invalid.
    pub fn build(n: usize, cfg: PGridConfig, rng: &mut SimRng) -> PGrid {
        assert!(n > 0, "need at least one peer");
        cfg.validate();
        let d = cfg.max_depth as usize;
        let slots = 1usize << (cfg.max_depth + 1);
        let mut grid = PGrid {
            cfg,
            paths: vec![BitPath::EMPTY; n],
            departed: vec![false; n],
            live: n,
            refs: vec![RefEntry::VACANT; n * d * cfg.max_refs],
            ref_len: vec![0; n * d],
            stores: vec![BTreeMap::new(); n],
            buckets: {
                let mut b = vec![Vec::new(); slots];
                b[BitPath::EMPTY.slot()] = (0..n as u32).collect();
                b
            },
            subtree: {
                let mut s = vec![0u32; slots];
                s[BitPath::EMPTY.slot()] = n as u32;
                s
            },
            occupied: 1,
            dir_pos: (0..n as u32).collect(),
            clock: 0,
        };
        // Phase 1 — split cascade: every round pairs up the peers inside
        // each occupied bucket (shuffled), so identical-path peers keep
        // meeting and splitting all the way to `max_depth`. Uniform
        // random pairs alone almost never share a path once the
        // population is large, which stalled the trie a few levels deep;
        // the cascade matures it in `O(n · depth)` meetings.
        for _ in 0..cfg.max_depth {
            grid.bucket_pairing_round(rng);
        }
        // Phase 2 — global mixing: uniform random meetings between
        // distinct peers fill the cross-subtree (shallow-level)
        // reference buckets and gossip them around.
        if n >= 2 {
            let meetings = cfg.meetings_per_peer.saturating_mul(n) / 2;
            for _ in 0..meetings {
                let a = rng.index(n);
                let mut b = rng.index(n - 1);
                if b >= a {
                    b += 1;
                }
                grid.meet(a, b, rng);
            }
        }
        // Phase 3 — replica mixing: a few more bucket-pairing rounds.
        // Same-path meetings gossip across *every* level, so the deep
        // reference buckets (unreachable by random pairing) spread
        // through each replica group, and replica stores synchronise.
        for _ in 0..4 {
            grid.bucket_pairing_round(rng);
        }
        grid
    }

    /// One cascade round: pair up (shuffled) the members of every bucket
    /// with at least two peers and run the pairwise meetings. The bucket
    /// snapshot is taken up front, in slot (level) order: meetings move
    /// peers into deeper slots, and freshly split peers must not pair
    /// again within the same round.
    fn bucket_pairing_round(&mut self, rng: &mut SimRng) {
        let snapshot: Vec<Vec<u32>> = self
            .buckets
            .iter()
            .filter(|b| b.len() >= 2)
            .cloned()
            .collect();
        for mut members in snapshot {
            rng.shuffle(&mut members);
            for pair in members.chunks_exact(2) {
                self.meet(pair[0] as usize, pair[1] as usize, rng);
            }
        }
    }

    /// The active configuration.
    pub fn config(&self) -> PGridConfig {
        self.cfg
    }

    /// Number of peer slots currently allocated, including departed
    /// peers' tombstones. Dense indices are never reused between
    /// compactions; [`PGrid::compact`] reclaims the tombstones and
    /// renumbers (returning the mapping).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether the grid has no peers (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of peers currently in the overlay (not departed).
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Whether the peer at a dense index is still in the overlay.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn is_live(&self, peer: usize) -> bool {
        !self.departed[peer]
    }

    /// The trie path of the peer at a dense index.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn path(&self, peer: usize) -> BitPath {
        self.paths[peer]
    }

    /// Complaints currently stored at a peer (one per `(by, about)`
    /// pair, carrying the latest round seen).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn stored(&self, peer: usize) -> impl ExactSizeIterator<Item = Complaint> + '_ {
        self.stores[peer]
            .iter()
            .map(|(&(by, about), &round)| Complaint { by, about, round })
    }

    /// Number of complaints stored at a peer (distinct `(by, about)`
    /// pairs).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn store_len(&self, peer: usize) -> usize {
        self.stores[peer].len()
    }

    /// Number of distinct occupied paths in the leaf directory.
    pub fn leaf_count(&self) -> usize {
        self.occupied
    }

    /// Total meetings held so far (the reference-stamp clock). Each
    /// bootstrap, repair or join meeting advances it by exactly one, so
    /// deltas count executed meetings.
    pub fn meetings_held(&self) -> u64 {
        self.clock
    }

    /// The defensive routing hop bound: greedy routing resolves at least
    /// one key bit per hop, so anything past this indicates a
    /// reference-table inconsistency.
    pub fn hop_limit(&self) -> u32 {
        4 * self.cfg.key_bits as u32 + 8
    }

    /// The flat-arena index of peer `peer`'s level-`level` bucket.
    #[inline]
    fn bucket_index(&self, peer: usize, level: usize) -> usize {
        peer * self.cfg.max_depth as usize + level
    }

    /// Peer `peer`'s level-`level` reference bucket as a slice.
    #[inline]
    fn ref_bucket(&self, peer: usize, level: usize) -> &[RefEntry] {
        let li = self.bucket_index(peer, level);
        let base = li * self.cfg.max_refs;
        &self.refs[base..base + self.ref_len[li] as usize]
    }

    /// Compacting upsert: keeps the latest round per `(by, about)` pair.
    fn store_insert(&mut self, peer: usize, item: Complaint) {
        self.stores[peer]
            .entry((item.by, item.about))
            .and_modify(|r| *r = (*r).max(item.round))
            .or_insert(item.round);
    }

    /// Unions two peers' stores under the compaction rule (latest round
    /// per pair wins); both end up with the merged store.
    fn merge_stores(&mut self, a: usize, b: usize) {
        if self.stores[a].is_empty() && self.stores[b].is_empty() {
            return;
        }
        let taken = std::mem::take(&mut self.stores[a]);
        let mut merged = std::mem::take(&mut self.stores[b]);
        for (pair, round) in taken {
            merged
                .entry(pair)
                .and_modify(|r| *r = (*r).max(round))
                .or_insert(round);
        }
        self.stores[a] = merged.clone();
        self.stores[b] = merged;
    }

    /// The pairwise-meeting exchange at the heart of P-Grid construction.
    fn meet(&mut self, a: usize, b: usize, rng: &mut SimRng) {
        debug_assert!(a != b, "a peer cannot meet itself");
        debug_assert!(
            !self.departed[a] && !self.departed[b],
            "departed peers do not meet"
        );
        self.clock += 1;
        let (pa, pb) = (self.paths[a], self.paths[b]);
        let l = pa.common_prefix(pb);
        if l == pa.len() && l == pb.len() {
            // Identical paths: the two peers cover the same subspace, so
            // they union their stores first — after a split, whichever
            // side ends up responsible for an item keeps a copy — and
            // then split the subspace if depth remains (at max depth
            // they stay replicas and the union *is* the sync).
            self.merge_stores(a, b);
            if pa.len() < self.cfg.max_depth {
                let bit_a = rng.chance(0.5);
                self.extend_path(a, bit_a);
                self.extend_path(b, !bit_a);
                self.add_ref(a, l, b);
                self.add_ref(b, l, a);
            }
        } else if l == pa.len() {
            // a's path is a proper prefix of b's: a specialises to the
            // complement of b's next bit, and they reference each other.
            let bit_b = pb.bit(l);
            self.extend_path(a, !bit_b);
            self.add_ref(a, l, b);
            self.add_ref(b, l, a);
        } else if l == pb.len() {
            let bit_a = pa.bit(l);
            self.extend_path(b, !bit_a);
            self.add_ref(a, l, b);
            self.add_ref(b, l, a);
        } else {
            // Paths diverge at level l: mutual references at that level.
            self.add_ref(a, l, b);
            self.add_ref(b, l, a);
        }
        // Reference gossip: share one random reference per common level so
        // tables fill beyond the direct meeting partners.
        let common = self.paths[a].common_prefix(self.paths[b]) as usize;
        for level in 0..common {
            let shared = rng.pick(self.ref_bucket(a, level)).map(|e| e.peer);
            if let Some(shared) = shared {
                self.add_ref(b, level as u8, shared as usize);
            }
            let shared = rng.pick(self.ref_bucket(b, level)).map(|e| e.peer);
            if let Some(shared) = shared {
                self.add_ref(a, level as u8, shared as usize);
            }
        }
    }

    fn extend_path(&mut self, peer: usize, bit: bool) {
        let old = self.paths[peer];
        let new = old.child(bit);
        self.dir_remove(peer, old);
        self.paths[peer] = new;
        self.dir_insert(peer, new);
        // The peer stays inside every ancestor's subtree; only the new
        // node gains it.
        self.subtree[new.slot()] += 1;
    }

    /// Removes `peer` from its directory bucket in O(1) (positional
    /// swap-remove; the displaced peer's position is patched).
    fn dir_remove(&mut self, peer: usize, path: BitPath) {
        let bucket = &mut self.buckets[path.slot()];
        let pos = self.dir_pos[peer] as usize;
        debug_assert_eq!(bucket[pos], peer as u32, "directory position out of sync");
        bucket.swap_remove(pos);
        if let Some(&moved) = bucket.get(pos) {
            self.dir_pos[moved as usize] = pos as u32;
        }
        if bucket.is_empty() {
            self.occupied -= 1;
        }
    }

    fn dir_insert(&mut self, peer: usize, path: BitPath) {
        let bucket = &mut self.buckets[path.slot()];
        if bucket.is_empty() {
            self.occupied += 1;
        }
        self.dir_pos[peer] = bucket.len() as u32;
        bucket.push(peer as u32);
    }

    fn add_ref(&mut self, peer: usize, level: u8, target: usize) {
        if peer == target || self.departed[target] {
            return;
        }
        // The invariant: target's path agrees with peer's on `level` bits
        // and (when long enough) differs at bit `level`.
        let (pp, tp) = (self.paths[peer], self.paths[target]);
        if pp.len() <= level || tp.len() <= level {
            return;
        }
        if pp.common_prefix(tp) != level || pp.bit(level) == tp.bit(level) {
            return;
        }
        let max_refs = self.cfg.max_refs;
        let stamp = self.clock as u32;
        let li = self.bucket_index(peer, level as usize);
        let base = li * max_refs;
        let mut len = self.ref_len[li] as usize;
        // One scan: refresh the target if present, and lazily evict
        // entries whose peer has departed (order within a bucket is
        // routing-irrelevant — candidates are sampled uniformly — so
        // eviction is a positional overwrite from the tail, never a
        // shift; pinned by the same-seed determinism test).
        let mut i = 0;
        while i < len {
            let e = self.refs[base + i];
            if self.departed[e.peer as usize] {
                len -= 1;
                self.refs[base + i] = self.refs[base + len];
                continue;
            }
            if e.peer as usize == target {
                self.refs[base + i].stamp = stamp;
                self.ref_len[li] = len as u8;
                return;
            }
            i += 1;
        }
        if len >= max_refs {
            // Bucket full: overwrite the stalest entry in place (recency
            // as a liveness proxy) — O(1) in the slot, replacing the old
            // `Vec::remove` which shifted the bucket on the bootstrap
            // hot path.
            let victim = (0..len)
                .min_by_key(|&i| self.refs[base + i].stamp)
                .expect("bucket non-empty");
            self.refs[base + victim] = RefEntry {
                peer: target as u32,
                stamp,
            };
        } else {
            self.refs[base + len] = RefEntry {
                peer: target as u32,
                stamp,
            };
            len += 1;
        }
        self.ref_len[li] = len as u8;
    }

    /// Dense indices of all live peers responsible for `key` (ground
    /// truth, not a network operation), in ascending index order.
    ///
    /// Resolved through the leaf-directory arena: one slot probe per
    /// candidate depth, `O(max_depth)` instead of the naive full
    /// population scan.
    pub fn responsible_peers(&self, key: Key) -> Vec<usize> {
        let w = self.cfg.key_bits;
        let mut out = Vec::new();
        for len in 0..=self.cfg.max_depth {
            let bucket = &self.buckets[BitPath::key_prefix(key, len, w).slot()];
            out.extend(bucket.iter().map(|&i| i as usize));
        }
        out.sort_unstable();
        out
    }

    /// Greedy routing from `origin` towards a peer responsible for `key`.
    ///
    /// Each hop sends one message through `net`; unavailable peers
    /// (per `alive`, `None` = everyone up) and departed peers are
    /// skipped among the level's references. Returns the responsible
    /// peer index, hop count and accumulated latency, or `None` when
    /// routing dead-ends.
    pub fn route(
        &self,
        origin: usize,
        key: Key,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> Option<(usize, u32, SimTime)> {
        self.route_at(origin, key, alive, net, rng, SimTime::ZERO, None)
    }

    /// [`PGrid::route`] with an explicit virtual start time and an
    /// optional per-hop retry policy.
    ///
    /// `start` anchors every hop's send on the virtual clock (the
    /// fault plane's partition episodes are time-gated); accumulated
    /// latency advances it hop by hop. When a hop's message is dropped
    /// and `retry` is set, the sender waits the policy's timeout
    /// (exponential backoff + deterministic jitter, accrued into the
    /// reported latency), fails over to the *next* live reference at
    /// the same level (alternate-reference failover, wrapping round the
    /// bucket), and tries again until the policy's attempt budget runs
    /// out. Because the wait advances the virtual clock, retries can
    /// straddle a partition's heal time and succeed where the first
    /// attempt was blocked. With `retry == None` the first drop aborts
    /// the route exactly as before.
    #[allow(clippy::too_many_arguments)]
    pub fn route_at(
        &self,
        origin: usize,
        key: Key,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
        start: SimTime,
        retry: Option<&RetryPolicy>,
    ) -> Option<(usize, u32, SimTime)> {
        let w = self.cfg.key_bits;
        let up = |i: usize| !self.departed[i] && alive.is_none_or(|a| a[i]);
        if !up(origin) {
            return None;
        }
        let mut current = origin;
        let mut hops = 0u32;
        let mut latency = SimTime::ZERO;
        let hop_limit = self.hop_limit();
        loop {
            let path = self.paths[current];
            if path.is_prefix_of_key(key, w) {
                return Some((current, hops, latency));
            }
            let level = path.common_prefix_with_key(key, w) as usize;
            // Uniform draw over the live candidates without collecting
            // them: count, then index the same filtered order.
            let bucket = self.ref_bucket(current, level);
            let live = bucket.iter().filter(|e| up(e.peer as usize)).count();
            if live == 0 {
                return None; // dead end: no live reference at this level
            }
            let pick = rng.index(live);
            let mut attempts = 0u32;
            let next = loop {
                let candidate = bucket
                    .iter()
                    .filter(|e| up(e.peer as usize))
                    .nth((pick + attempts as usize) % live)
                    .expect("picked within the live count")
                    .peer as usize;
                match net.send_link(
                    "route",
                    NodeId(current as u32),
                    NodeId(candidate as u32),
                    start + latency,
                    rng,
                ) {
                    Delivery::Delivered(d) => {
                        latency += d;
                        break candidate;
                    }
                    Delivery::Dropped => {
                        attempts += 1;
                        let policy = retry?;
                        if !policy.allows(attempts) {
                            return None;
                        }
                        latency += policy.timeout(attempts, link_salt(current, candidate));
                    }
                }
            };
            hops += 1;
            if hops > hop_limit {
                return None; // defensive: reference-table inconsistency
            }
            current = next;
        }
    }

    /// The live replica group for a key: every live peer responsible for
    /// it. Peers with shorter paths covering the key count as members —
    /// in a real deployment the landing peer reaches them by continuing
    /// to route within its subtree, which costs the same one message per
    /// member this model charges.
    fn replica_group_for_key(&self, key: Key, alive: Option<&[bool]>) -> Vec<usize> {
        let up = |i: usize| alive.is_none_or(|a| a[i]);
        let mut group = self.responsible_peers(key);
        group.retain(|&i| up(i));
        group
    }

    /// One replica fan-out message with optional bounded retry; returns
    /// the member's total wait (accrued timeouts + final delivery) or
    /// `None` when the attempt budget is exhausted.
    #[allow(clippy::too_many_arguments)]
    fn fanout_send(
        &self,
        kind: &'static str,
        from: usize,
        to: usize,
        at: SimTime,
        retry: Option<&RetryPolicy>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> Option<SimTime> {
        let mut waited = SimTime::ZERO;
        let mut attempts = 0u32;
        loop {
            match net.send_link(
                kind,
                NodeId(from as u32),
                NodeId(to as u32),
                at + waited,
                rng,
            ) {
                Delivery::Delivered(d) => return Some(waited + d),
                Delivery::Dropped => {
                    attempts += 1;
                    let policy = retry?;
                    if !policy.allows(attempts) {
                        return None;
                    }
                    waited += policy.timeout(attempts, link_salt(from, to));
                }
            }
        }
    }

    /// Inserts a complaint under `key`: routes to a responsible replica,
    /// then pushes the item to the live members of its replica group.
    pub fn insert(
        &mut self,
        origin: usize,
        key: Key,
        item: Complaint,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> InsertReceipt {
        self.insert_at(origin, key, item, alive, net, rng, SimTime::ZERO, None)
    }

    /// [`PGrid::insert`] with a virtual start time and optional retry
    /// (see [`PGrid::route_at`]); replica pushes retry independently,
    /// each on its own backoff schedule.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_at(
        &mut self,
        origin: usize,
        key: Key,
        item: Complaint,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
        start: SimTime,
        retry: Option<&RetryPolicy>,
    ) -> InsertReceipt {
        let Some((landing, hops, latency)) =
            self.route_at(origin, key, alive, net, rng, start, retry)
        else {
            return InsertReceipt {
                hops: 0,
                replicas_reached: 0,
                latency: SimTime::ZERO,
            };
        };
        let group = self.replica_group_for_key(key, alive);
        let mut reached = 0;
        let mut max_extra = SimTime::ZERO;
        for member in group {
            if member != landing {
                match self.fanout_send(
                    "replicate",
                    landing,
                    member,
                    start + latency,
                    retry,
                    net,
                    rng,
                ) {
                    Some(d) => max_extra = max_extra.max(d),
                    None => continue,
                }
            }
            self.store_insert(member, item);
            reached += 1;
        }
        InsertReceipt {
            hops,
            replicas_reached: reached,
            latency: latency + max_extra,
        }
    }

    /// Queries all live replicas for the items stored under `key`.
    pub fn query(
        &self,
        origin: usize,
        key: Key,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
    ) -> QueryResult {
        self.query_at(origin, key, alive, net, rng, SimTime::ZERO, None)
    }

    /// [`PGrid::query`] with a virtual start time and optional retry
    /// (see [`PGrid::route_at`]); replica probes retry independently,
    /// each on its own backoff schedule.
    #[allow(clippy::too_many_arguments)]
    pub fn query_at(
        &self,
        origin: usize,
        key: Key,
        alive: Option<&[bool]>,
        net: &mut Network,
        rng: &mut SimRng,
        start: SimTime,
        retry: Option<&RetryPolicy>,
    ) -> QueryResult {
        let Some((landing, hops, latency)) =
            self.route_at(origin, key, alive, net, rng, start, retry)
        else {
            return QueryResult {
                hops: 0,
                answers: Vec::new(),
                latency: SimTime::ZERO,
            };
        };
        let w = self.cfg.key_bits;
        let mut answers = Vec::new();
        let mut max_extra = SimTime::ZERO;
        for member in self.replica_group_for_key(key, alive) {
            if member != landing {
                match self.fanout_send(
                    "replica_query",
                    landing,
                    member,
                    start + latency,
                    retry,
                    net,
                    rng,
                ) {
                    Some(d) => max_extra = max_extra.max(d),
                    None => continue,
                }
            }
            let items: Vec<Complaint> = self
                .stored(member)
                .filter(|c| {
                    // Only items indexed under the queried key — a peer's
                    // store can hold items for every key in its subspace.
                    crate::record::key_for_peer(c.by, w) == key
                        || crate::record::key_for_peer(c.about, w) == key
                })
                .collect();
            answers.push((member, items));
        }
        QueryResult {
            hops,
            answers,
            latency: latency + max_extra,
        }
    }

    /// Admits a new peer into the overlay and returns its dense index.
    ///
    /// The newcomer starts at the trie root and descends by the regular
    /// meeting protocol: each meeting with a peer sampled uniformly from
    /// its current subspace (O(depth) via the subtree counts) extends
    /// its path by one bit — splitting an equal-path partner, or
    /// specialising against a deeper one — until it reaches the
    /// configured depth or is alone in its subspace. Splits hand the
    /// partner's store to the newcomer (the store union in [`meet`]), and
    /// a final handoff syncs from its new replica group — or from the
    /// deepest remaining owner of its subspace — so an admitted peer
    /// answers queries with the data its group already holds.
    pub fn join(&mut self, rng: &mut SimRng) -> usize {
        let d = self.cfg.max_depth as usize;
        let idx = self.paths.len();
        assert!(idx < u32::MAX as usize, "dense index space exhausted");
        self.paths.push(BitPath::EMPTY);
        self.departed.push(false);
        self.stores.push(BTreeMap::new());
        let new_refs = self.refs.len() + d * self.cfg.max_refs;
        self.refs.resize(new_refs, RefEntry::VACANT);
        self.ref_len.resize(self.ref_len.len() + d, 0);
        self.dir_pos.push(0);
        self.live += 1;
        self.dir_insert(idx, BitPath::EMPTY);
        self.subtree[BitPath::EMPTY.slot()] += 1;

        // Descent: every iteration extends the newcomer's path by one
        // bit, so this loop runs at most `max_depth` times.
        while self.paths[idx].len() < self.cfg.max_depth {
            let Some(partner) = self.sample_in_subtree(self.paths[idx], idx, rng) else {
                break; // alone in the subspace: nobody left to split with
            };
            self.meet(idx, partner, rng);
        }

        // Replica handoff: sync the store from the new group.
        if let Some(donor) = self.handoff_donor(idx, rng) {
            if self.paths[donor] == self.paths[idx] {
                // Same path ⇒ descent stopped at max depth: a full
                // replica meeting (two-way store union + references).
                self.meet(idx, donor, rng);
            } else {
                // Deepest remaining owner of the newcomer's subspace —
                // its store covers a superspace, copy it one way.
                let donor_store = self.stores[donor].clone();
                for ((by, about), round) in donor_store {
                    self.store_insert(idx, Complaint { by, about, round });
                }
            }
        }
        idx
    }

    /// Samples a uniform peer from the subtree rooted at `path` (peers
    /// whose path equals or extends it), excluding `exclude` — which
    /// must itself sit at exactly `path`. O(depth) via the subtree
    /// counts.
    fn sample_in_subtree(&self, path: BitPath, exclude: usize, rng: &mut SimRng) -> Option<usize> {
        debug_assert_eq!(
            self.paths[exclude], path,
            "exclude sits at the subtree root"
        );
        let total = self.subtree[path.slot()] as usize;
        if total <= 1 {
            return None;
        }
        let mut r = rng.index(total - 1);
        // Walk down: at each node the bucket's own members come first
        // (skipping `exclude`, which only appears in the root bucket),
        // then the 0-subtree, then the 1-subtree.
        let mut node = path;
        loop {
            let bucket = &self.buckets[node.slot()];
            let skip = bucket.iter().position(|&m| m as usize == exclude);
            let local = bucket.len() - usize::from(skip.is_some());
            if r < local {
                let mut pos = r;
                if let Some(s) = skip {
                    if pos >= s {
                        pos += 1;
                    }
                }
                return Some(bucket[pos] as usize);
            }
            r -= local;
            assert!(
                node.len() < self.cfg.max_depth,
                "subtree counts out of sync with buckets"
            );
            let left = node.child(false);
            let lcount = self.subtree[left.slot()] as usize;
            node = if r < lcount {
                left
            } else {
                r -= lcount;
                node.child(true)
            };
        }
    }

    /// The peer a joining newcomer syncs its store from: a random member
    /// of its own bucket (a replica) when one exists, else a random
    /// member of the deepest occupied proper prefix of its path — the
    /// closest remaining owner of its new subspace. `None` when the
    /// newcomer is the only peer covering its subspace.
    fn handoff_donor(&self, idx: usize, rng: &mut SimRng) -> Option<usize> {
        let path = self.paths[idx];
        let bucket = &self.buckets[path.slot()];
        if bucket.len() > 1 {
            let mut pos = rng.index(bucket.len() - 1);
            if pos >= self.dir_pos[idx] as usize {
                pos += 1;
            }
            return Some(bucket[pos] as usize);
        }
        for len in (0..path.len()).rev() {
            let bucket = &self.buckets[path.prefix(len).slot()];
            if !bucket.is_empty() {
                return rng.pick(bucket).map(|&m| m as usize);
            }
        }
        None
    }

    /// Removes a peer from the overlay: its directory entry disappears
    /// (it stops being responsible for any key), its subtree counts are
    /// released along its path prefixes, and its own references and
    /// store are dropped. References other peers hold to it die lazily:
    /// routing treats departed peers as permanently down, bucket touches
    /// evict them opportunistically, and [`PGrid::repair`] sweeps them
    /// out eagerly. The vacated slot stays as a tombstone — dense
    /// indices are never reused — until [`PGrid::compact`] reclaims it.
    ///
    /// # Panics
    ///
    /// Panics if `peer` is out of range or already departed.
    pub fn leave(&mut self, peer: usize) {
        assert!(!self.departed[peer], "peer {peer} already departed");
        let path = self.paths[peer];
        self.dir_remove(peer, path);
        for len in 0..=path.len() {
            self.subtree[path.prefix(len).slot()] -= 1;
        }
        self.departed[peer] = true;
        self.live -= 1;
        self.stores[peer].clear();
        let d = self.cfg.max_depth as usize;
        for li in peer * d..(peer + 1) * d {
            self.ref_len[li] = 0;
        }
    }

    /// Compacts the arena: departed peers' slots — kept as tombstones by
    /// [`PGrid::leave`] so dense indices stay stable between compactions
    /// — are reclaimed, and the surviving peers are renumbered densely
    /// in their old relative order. All arenas (paths, reference
    /// buckets, stores, directory) shrink to the live population, so a
    /// long-running overlay under churn holds memory proportional to
    /// its *live* size, not its all-time admission count.
    ///
    /// Returns the old→new index mapping (`None` for departed slots) so
    /// callers holding dense indices — the lifecycle layer's activity
    /// clocks ([`crate::lifecycle::Lifecycle::compacted`]), experiment
    /// bookkeeping — can follow the renumbering. Reference entries
    /// pointing at departed peers (lazily evicted otherwise) are
    /// dropped during the sweep; directory buckets, subtree counts and
    /// the meeting clock are preserved, so routing behaviour is
    /// unchanged.
    pub fn compact(&mut self) -> Vec<Option<u32>> {
        let n = self.paths.len();
        let d = self.cfg.max_depth as usize;
        let r = self.cfg.max_refs;
        let mut mapping = vec![None; n];
        let mut next = 0u32;
        for (old, slot) in mapping.iter_mut().enumerate() {
            if !self.departed[old] {
                *slot = Some(next);
                next += 1;
            }
        }
        let live = next as usize;
        debug_assert_eq!(live, self.live, "departure flags out of sync");
        if live < n {
            // Slide every surviving peer's rows down in index order (the
            // destination is always at or before the source, so forward
            // copies never clobber unread rows).
            let mut write = 0usize;
            for (old, slot) in mapping.iter().enumerate().take(n) {
                if slot.is_none() {
                    continue;
                }
                if write != old {
                    self.paths[write] = self.paths[old];
                    self.dir_pos[write] = self.dir_pos[old];
                    self.stores[write] = std::mem::take(&mut self.stores[old]);
                    self.refs
                        .copy_within(old * d * r..(old + 1) * d * r, write * d * r);
                    self.ref_len.copy_within(old * d..(old + 1) * d, write * d);
                }
                write += 1;
            }
            self.paths.truncate(live);
            self.dir_pos.truncate(live);
            self.stores.truncate(live);
            self.refs.truncate(live * d * r);
            self.ref_len.truncate(live * d);
            self.departed.truncate(live);
            self.departed.fill(false);
            // Reclaim, not just truncate: the point of compaction is that
            // memory tracks the live population.
            self.paths.shrink_to_fit();
            self.dir_pos.shrink_to_fit();
            self.stores.shrink_to_fit();
            self.refs.shrink_to_fit();
            self.ref_len.shrink_to_fit();
            self.departed.shrink_to_fit();
        }
        // Renumber reference targets; entries pointing at departed peers
        // die here (tail overwrite, the bucket-order-irrelevant idiom of
        // `add_ref`). Vacated tail slots are reset so equal histories
        // keep bit-identical arenas.
        for li in 0..live * d {
            let base = li * r;
            let orig = self.ref_len[li] as usize;
            let mut len = orig;
            let mut i = 0;
            while i < len {
                match mapping[self.refs[base + i].peer as usize] {
                    Some(new) => {
                        self.refs[base + i].peer = new;
                        i += 1;
                    }
                    None => {
                        len -= 1;
                        self.refs[base + i] = self.refs[base + len];
                    }
                }
            }
            self.refs[base + len..base + orig].fill(RefEntry::VACANT);
            self.ref_len[li] = len as u8;
        }
        // Directory buckets hold only live peers; renumber in place.
        // Bucket positions are unchanged, so `dir_pos` stays valid, and
        // subtree counts already track live peers only.
        for bucket in &mut self.buckets {
            for member in bucket.iter_mut() {
                *member = mapping[*member as usize].expect("directory members are live");
            }
        }
        mapping
    }

    /// Repairs reference tables after churn: every live peer evicts its
    /// references to peers `alive` reports down or departed
    /// (liveness-aware eviction), then **exactly** `meetings` additional
    /// random meetings between distinct live peers refill the buckets
    /// and re-synchronise replica stores.
    ///
    /// The meeting pair is sampled without replacement (second index
    /// drawn from the remaining positions and shifted over the first),
    /// so the full meeting budget is always delivered — the old
    /// draw-with-replacement loop silently dropped every `a == b`
    /// collision, under-delivering worst for small live populations.
    ///
    /// Down peers keep their state untouched — when they return, the
    /// regular meeting protocol reintegrates them.
    ///
    /// # Panics
    ///
    /// Panics if `alive.len() != self.len()`.
    pub fn repair(&mut self, alive: &[bool], meetings: usize, rng: &mut SimRng) {
        assert_eq!(alive.len(), self.paths.len(), "mask length mismatch");
        let d = self.cfg.max_depth as usize;
        let r = self.cfg.max_refs;
        for peer in 0..self.paths.len() {
            if !alive[peer] || self.departed[peer] {
                continue;
            }
            for li in peer * d..(peer + 1) * d {
                let base = li * r;
                let mut len = self.ref_len[li] as usize;
                let mut i = 0;
                while i < len {
                    let t = self.refs[base + i].peer as usize;
                    if !alive[t] || self.departed[t] {
                        len -= 1;
                        self.refs[base + i] = self.refs[base + len];
                    } else {
                        i += 1;
                    }
                }
                self.ref_len[li] = len as u8;
            }
        }
        let live: Vec<usize> = (0..alive.len())
            .filter(|&i| alive[i] && !self.departed[i])
            .collect();
        if live.len() < 2 {
            return;
        }
        for _ in 0..meetings {
            let a = rng.index(live.len());
            let mut b = rng.index(live.len() - 1);
            if b >= a {
                b += 1;
            }
            self.meet(live[a], live[b], rng);
        }
    }

    /// Distribution of live peers' path depths — diagnostics for the
    /// bootstrap and for join integration.
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.cfg.max_depth as usize + 1];
        for (i, p) in self.paths.iter().enumerate() {
            if !self.departed[i] {
                h[p.len() as usize] += 1;
            }
        }
        h
    }

    /// Fraction of live peers whose path reached the configured depth.
    pub fn maturity(&self) -> f64 {
        if self.live == 0 {
            return 0.0;
        }
        let full = self
            .paths
            .iter()
            .enumerate()
            .filter(|&(i, p)| !self.departed[i] && p.len() == self.cfg.max_depth)
            .count();
        full as f64 / self.live as f64
    }

    /// Asserts every structural invariant of the flat arena: directory
    /// membership and `dir_pos` sync, occupied-bucket and subtree
    /// counts, reference-bucket bounds and the level/divergence contract
    /// of every entry. Test-suite hook, not part of the public contract.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let n = self.paths.len();
        let d = self.cfg.max_depth as usize;
        let mut indexed = 0usize;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            for (pos, &m) in bucket.iter().enumerate() {
                let m = m as usize;
                assert!(!self.departed[m], "departed peer {m} still indexed");
                assert_eq!(self.paths[m].slot(), slot, "peer {m} in the wrong bucket");
                assert_eq!(self.dir_pos[m] as usize, pos, "dir_pos out of sync for {m}");
                indexed += 1;
            }
        }
        assert_eq!(
            indexed, self.live,
            "directory must index every live peer once"
        );
        assert_eq!(
            self.occupied,
            self.buckets.iter().filter(|b| !b.is_empty()).count(),
            "occupied-bucket count out of sync"
        );
        for slot in 1..self.buckets.len() {
            let children = if (slot << 1) < self.buckets.len() {
                self.subtree[slot << 1] + self.subtree[(slot << 1) | 1]
            } else {
                0
            };
            assert_eq!(
                self.subtree[slot],
                self.buckets[slot].len() as u32 + children,
                "subtree count wrong at slot {slot}"
            );
        }
        for peer in 0..n {
            let plen = self.paths[peer].len();
            for level in 0..d {
                let li = peer * d + level;
                let len = self.ref_len[li] as usize;
                assert!(len <= self.cfg.max_refs, "bucket over capacity");
                if self.departed[peer] || level as u8 >= plen {
                    assert_eq!(len, 0, "peer {peer} level {level} must be empty");
                    continue;
                }
                for e in self.ref_bucket(peer, level) {
                    let t = e.peer as usize;
                    assert!(t < n && t != peer, "bad reference target");
                    let tp = self.paths[t];
                    assert!(
                        tp.len() > level as u8 && self.paths[peer].common_prefix(tp) == level as u8,
                        "peer {peer} level {level} reference {t} violates divergence"
                    );
                }
            }
        }
    }

    /// Non-panicking mirror of [`PGrid::check_invariants`], run on every
    /// restore: a snapshot that decodes structurally but describes an
    /// inconsistent arena (crafted or miscomputed) must surface as
    /// [`PersistError::Invalid`], never as a silently-wrong grid or a
    /// later panic deep inside routing.
    fn validate_restored(&self) -> Result<(), PersistError> {
        fn invalid(context: &'static str) -> PersistError {
            PersistError::Invalid { context }
        }
        let n = self.paths.len();
        let d = self.cfg.max_depth as usize;
        let mut seen = vec![false; n];
        let mut indexed = 0usize;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            for (pos, &m) in bucket.iter().enumerate() {
                let m = m as usize;
                if m >= n || self.departed[m] {
                    return Err(invalid("directory indexes a departed or unknown peer"));
                }
                if std::mem::replace(&mut seen[m], true) {
                    return Err(invalid("directory indexes a peer twice"));
                }
                if self.paths[m].slot() != slot {
                    return Err(invalid("directory member filed under the wrong path"));
                }
                if self.dir_pos[m] as usize != pos {
                    return Err(invalid("dir_pos out of sync with the directory"));
                }
                indexed += 1;
            }
        }
        if indexed != self.live {
            return Err(invalid("directory does not index every live peer"));
        }
        if self.occupied != self.buckets.iter().filter(|b| !b.is_empty()).count() {
            return Err(invalid("occupied-bucket count out of sync"));
        }
        for slot in 1..self.buckets.len() {
            let children = if (slot << 1) < self.buckets.len() {
                self.subtree[slot << 1] + self.subtree[(slot << 1) | 1]
            } else {
                0
            };
            if self.subtree[slot] != self.buckets[slot].len() as u32 + children {
                return Err(invalid("subtree count out of sync"));
            }
        }
        for peer in 0..n {
            let plen = self.paths[peer].len();
            if plen > self.cfg.max_depth {
                return Err(invalid("path deeper than max_depth"));
            }
            for level in 0..d {
                let li = peer * d + level;
                let len = self.ref_len[li] as usize;
                if len > self.cfg.max_refs {
                    return Err(invalid("reference bucket over capacity"));
                }
                if (self.departed[peer] || level as u8 >= plen) && len != 0 {
                    return Err(invalid("departed or shallow peer holds references"));
                }
                for e in self.ref_bucket(peer, level) {
                    let t = e.peer as usize;
                    if t >= n || t == peer {
                        return Err(invalid("reference targets an unknown peer or self"));
                    }
                    let tp = self.paths[t];
                    if tp.len() <= level as u8 || self.paths[peer].common_prefix(tp) != level as u8
                    {
                        return Err(invalid("reference violates the divergence contract"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// ## Wire layout (section tag `PGRD`)
///
/// ```text
/// cfg       := key_bits:u8 max_depth:u8 max_refs:u64 meetings_per_peer:u64
/// state     := cfg clock:u64
///              n:len (path_packed:u64 departed:u8)*n
///              (ref_len:u8 (peer:u32 stamp:u32)*ref_len)*(n·max_depth)
///              (store_len:len (by:u32 about:u32 round:u64)*store_len)*n
///              bucket_count:len (slot:u64 members:len member:u32*)*
/// ```
///
/// Only the occupied prefix of each reference bucket is serialized — the
/// arena beyond `ref_len` is lazy-eviction garbage; restore refills it
/// with vacant entries, so a restored grid re-encodes bit-identically.
/// Directory buckets travel in ascending slot order with their member
/// order preserved (replica sampling reads it), and `live` / `dir_pos` /
/// `occupied` / `subtree` are derived, then the whole arena passes the
/// restore-time invariant re-check.
impl Persistable for PGrid {
    const TAG: [u8; 4] = *b"PGRD";

    fn encode_state(&self, w: &mut ByteWriter) {
        let d = self.cfg.max_depth as usize;
        w.put_u8(self.cfg.key_bits);
        w.put_u8(self.cfg.max_depth);
        w.put_u64(self.cfg.max_refs as u64);
        w.put_u64(self.cfg.meetings_per_peer as u64);
        w.put_u64(self.clock);
        w.put_len(self.paths.len());
        for (i, p) in self.paths.iter().enumerate() {
            w.put_u64(p.packed());
            w.put_bool(self.departed[i]);
        }
        for peer in 0..self.paths.len() {
            for level in 0..d {
                let li = self.bucket_index(peer, level);
                w.put_u8(self.ref_len[li]);
                for e in self.ref_bucket(peer, level) {
                    w.put_u32(e.peer);
                    w.put_u32(e.stamp);
                }
            }
        }
        for store in &self.stores {
            w.put_len(store.len());
            for (&(by, about), &round) in store {
                w.put_u32(by.0);
                w.put_u32(about.0);
                w.put_u64(round);
            }
        }
        w.put_len(self.occupied);
        for (slot, bucket) in self.buckets.iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            w.put_u64(slot as u64);
            w.put_len(bucket.len());
            for &m in bucket {
                w.put_u32(m);
            }
        }
    }

    fn decode_state(r: &mut ByteReader) -> Result<PGrid, PersistError> {
        let cfg = PGridConfig {
            key_bits: r.take_u8()?,
            max_depth: r.take_u8()?,
            max_refs: r.take_u64()? as usize,
            meetings_per_peer: r.take_u64()? as usize,
        };
        if cfg.key_bits < 1
            || cfg.key_bits > 32
            || cfg.max_depth < 1
            || cfg.max_depth > cfg.key_bits
            || cfg.max_depth > ARENA_DEPTH_LIMIT
            || cfg.max_refs < 1
            || cfg.max_refs > REFS_LIMIT
        {
            return Err(PersistError::Invalid {
                context: "grid configuration out of range",
            });
        }
        let d = cfg.max_depth as usize;
        let clock = r.take_u64()?;
        let n = r.take_len(9)?;
        if n == 0 {
            return Err(PersistError::Invalid {
                context: "a grid has at least one peer",
            });
        }
        let mut paths = Vec::with_capacity(n);
        let mut departed = Vec::with_capacity(n);
        for _ in 0..n {
            let path = BitPath::from_packed(r.take_u64()?).ok_or(PersistError::Malformed {
                context: "non-canonical packed path",
            })?;
            paths.push(path);
            departed.push(r.take_bool()?);
        }
        // Bound the arena allocations by the declared ref lengths still
        // to be read: each of the n·d buckets costs at least 1 byte.
        if n.saturating_mul(d) > r.remaining() {
            return Err(PersistError::Malformed {
                context: "length prefix exceeds remaining input",
            });
        }
        let mut refs = vec![RefEntry::VACANT; n * d * cfg.max_refs];
        let mut ref_len = vec![0u8; n * d];
        for li in 0..n * d {
            let len = r.take_u8()?;
            if len as usize > cfg.max_refs {
                return Err(PersistError::Invalid {
                    context: "reference bucket over capacity",
                });
            }
            ref_len[li] = len;
            for k in 0..len as usize {
                refs[li * cfg.max_refs + k] = RefEntry {
                    peer: r.take_u32()?,
                    stamp: r.take_u32()?,
                };
            }
        }
        let mut stores = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.take_len(16)?;
            let mut store = BTreeMap::new();
            for _ in 0..len {
                let by = PeerId(r.take_u32()?);
                let about = PeerId(r.take_u32()?);
                let round = r.take_u64()?;
                if store.insert((by, about), round).is_some() {
                    return Err(PersistError::Invalid {
                        context: "duplicate complaint pair in a store",
                    });
                }
            }
            stores.push(store);
        }
        let slots = 1usize << (cfg.max_depth + 1);
        let mut buckets = vec![Vec::new(); slots];
        let mut dir_pos = vec![0u32; n];
        let occupied = r.take_len(13)?;
        let mut live = 0usize;
        let mut prev_slot = 0usize;
        for _ in 0..occupied {
            let slot = r.take_u64()? as usize;
            if slot == 0 || slot >= slots || slot <= prev_slot {
                return Err(PersistError::Invalid {
                    context: "directory slots not strictly ascending",
                });
            }
            prev_slot = slot;
            let members = r.take_len(4)?;
            if members == 0 {
                return Err(PersistError::Invalid {
                    context: "empty bucket serialized as occupied",
                });
            }
            let mut bucket = Vec::with_capacity(members);
            for pos in 0..members {
                let m = r.take_u32()?;
                if m as usize >= n {
                    return Err(PersistError::Invalid {
                        context: "directory indexes a departed or unknown peer",
                    });
                }
                dir_pos[m as usize] = pos as u32;
                bucket.push(m);
                live += 1;
            }
            buckets[slot] = bucket;
        }
        let mut subtree = vec![0u32; slots];
        for slot in (1..slots).rev() {
            let children = if (slot << 1) < slots {
                subtree[slot << 1] + subtree[(slot << 1) | 1]
            } else {
                0
            };
            subtree[slot] = buckets[slot].len() as u32 + children;
        }
        let grid = PGrid {
            cfg,
            paths,
            departed,
            live,
            refs,
            ref_len,
            stores,
            buckets,
            subtree,
            occupied,
            dir_pos,
            clock,
        };
        grid.validate_restored()?;
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trustex_netsim::net::NetConfig;

    fn grid(n: usize, depth: u8, seed: u64) -> (PGrid, SimRng, Network) {
        let mut rng = SimRng::new(seed);
        let cfg = PGridConfig {
            max_depth: depth,
            ..PGridConfig::default()
        };
        let g = PGrid::build(n, cfg, &mut rng);
        (g, rng, Network::new(NetConfig::default()))
    }

    #[test]
    fn bootstrap_reaches_full_depth() {
        let (g, _, _) = grid(128, 5, 1);
        assert!(
            g.maturity() > 0.85,
            "bootstrap should mature: {:?}",
            g.depth_histogram()
        );
        // Residual shallow peers are tolerable (they hold larger
        // subspaces) but must be rare and near-full-depth.
        let hist = g.depth_histogram();
        assert_eq!(hist[..4].iter().sum::<usize>(), 0, "{hist:?}");
    }

    #[test]
    fn replica_groups_nonempty_at_depth() {
        let (g, _, _) = grid(128, 4, 2);
        // 128 peers over 16 leaves: every leaf should have ~8 replicas.
        for leaf in 0..16u32 {
            let count = (0..g.len())
                .filter(|&i| g.path(i) == BitPath::from_bits(leaf, 4))
                .count();
            assert!(count >= 1, "leaf {leaf:04b} unpopulated");
        }
    }

    #[test]
    fn leaf_directory_matches_naive_scan() {
        let (g, mut rng, _) = grid(160, 5, 21);
        let w = g.config().key_bits;
        for _ in 0..300 {
            let key = Key::from_bits(rng.next_u64() as u32 & 0xFFFF);
            let naive: Vec<usize> = (0..g.len())
                .filter(|&i| g.is_live(i) && g.path(i).is_prefix_of_key(key, w))
                .collect();
            assert_eq!(g.responsible_peers(key), naive, "key {:#x}", key.bits());
        }
        g.check_invariants();
        // Occupied paths: all 2^d leaves plus possibly a few shallower
        // stragglers — never more than the whole trie.
        assert!(g.leaf_count() < 1 << (g.config().max_depth + 1));
    }

    #[test]
    fn reference_buckets_stay_bounded() {
        let (g, _, _) = grid(256, 6, 22);
        g.check_invariants(); // includes the per-bucket capacity bound
    }

    #[test]
    fn routing_reaches_responsible_peer() {
        let (g, mut rng, mut net) = grid(128, 5, 3);
        let mut failures = 0;
        for t in 0..200u32 {
            let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
            let origin = rng.index(g.len());
            match g.route(origin, key, None, &mut net, &mut rng) {
                Some((peer, _hops, _)) => {
                    assert!(
                        g.path(peer).is_prefix_of_key(key, g.config().key_bits),
                        "landed on non-responsible peer"
                    );
                }
                None => failures += 1,
            }
        }
        assert!(failures <= 4, "too many routing failures: {failures}/200");
    }

    #[test]
    fn routing_cost_is_logarithmic() {
        let (g, mut rng, mut net) = grid(256, 6, 4);
        let mut total_hops = 0u32;
        let mut resolved = 0u32;
        for t in 0..300u32 {
            let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
            let origin = rng.index(g.len());
            if let Some((_, hops, _)) = g.route(origin, key, None, &mut net, &mut rng) {
                total_hops += hops;
                resolved += 1;
            }
        }
        assert!(resolved > 280);
        let mean = total_hops as f64 / resolved as f64;
        assert!(
            mean <= 6.5,
            "mean hops {mean} should be ≈ depth (6) or less"
        );
    }

    #[test]
    fn insert_then_query_roundtrip() {
        let (mut g, mut rng, mut net) = grid(64, 4, 5);
        let subject = PeerId(42);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(1),
            about: subject,
            round: 3,
        };
        let receipt = g.insert(0, key, c, None, &mut net, &mut rng);
        assert!(receipt.replicas_reached >= 1, "insert must reach a replica");
        let result = g.query(17, key, None, &mut net, &mut rng);
        assert!(result.is_resolved());
        assert!(
            result.answers.iter().any(|(_, items)| items.contains(&c)),
            "stored complaint must be retrievable"
        );
    }

    #[test]
    fn insert_replicates_to_group() {
        let (mut g, mut rng, mut net) = grid(64, 3, 6);
        let subject = PeerId(9);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(2),
            about: subject,
            round: 0,
        };
        let receipt = g.insert(1, key, c, None, &mut net, &mut rng);
        // 64 peers over 8 leaves: replica groups of ~8.
        assert!(
            receipt.replicas_reached >= 3,
            "expected multi-replica insert, got {}",
            receipt.replicas_reached
        );
        let holders = (0..g.len())
            .filter(|&i| g.stored(i).any(|x| x == c))
            .count();
        assert_eq!(holders, receipt.replicas_reached);
    }

    #[test]
    fn complaint_compaction_keeps_latest_round() {
        let (mut g, mut rng, mut net) = grid(64, 3, 13);
        let subject = PeerId(7);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let pair = |round| Complaint {
            by: PeerId(2),
            about: subject,
            round,
        };
        // Repeated inserts for the same (by, about) pair never grow the
        // stores; the latest round wins regardless of arrival order.
        for round in [1u64, 5, 3] {
            g.insert(0, key, pair(round), None, &mut net, &mut rng);
        }
        let holders: Vec<usize> = (0..g.len()).filter(|&i| g.store_len(i) > 0).collect();
        assert!(!holders.is_empty());
        for i in holders {
            assert_eq!(g.store_len(i), 1, "store must stay compacted");
            assert_eq!(g.stored(i).next().expect("one item"), pair(5));
        }
        // A different pair is a separate entry.
        g.insert(
            0,
            key,
            Complaint {
                by: PeerId(3),
                about: subject,
                round: 0,
            },
            None,
            &mut net,
            &mut rng,
        );
        assert!((0..g.len()).any(|i| g.store_len(i) == 2));
    }

    #[test]
    fn repair_restores_routing_after_churn() {
        let (mut g, mut rng, mut net) = grid(192, 5, 14);
        // Take down 40% of peers.
        let alive: Vec<bool> = (0..g.len()).map(|_| !rng.chance(0.4)).collect();
        let success = |g: &PGrid, rng: &mut SimRng, net: &mut Network| {
            let mut ok = 0;
            for t in 0..100u32 {
                let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
                let origin = (0..g.len()).find(|&i| alive[i]).expect("someone is up");
                if g.route(origin, key, Some(&alive), net, rng).is_some() {
                    ok += 1;
                }
            }
            ok
        };
        let before = success(&g, &mut rng, &mut net);
        g.repair(&alive, 8 * g.len(), &mut rng);
        let after = success(&g, &mut rng, &mut net);
        assert!(
            after >= before && after >= 95,
            "repair should restore routing: {before} -> {after}"
        );
        g.check_invariants();
    }

    #[test]
    fn repair_executes_exactly_the_requested_meetings() {
        // Regression: the old repair drew both endpoints with
        // replacement and skipped a == b collisions, so fewer than
        // `meetings` meetings actually happened — acute for small live
        // populations, where collisions are frequent.
        let (mut g, mut rng, _) = grid(24, 3, 33);
        let alive: Vec<bool> = (0..g.len()).map(|i| i % 4 != 0).collect();
        let before = g.meetings_held();
        g.repair(&alive, 500, &mut rng);
        assert_eq!(
            g.meetings_held() - before,
            500,
            "repair must deliver its full meeting budget"
        );
        // Tiny live population: collisions would have eaten most of the
        // budget under sampling with replacement.
        let mut tiny_alive = vec![false; g.len()];
        tiny_alive[1] = true;
        tiny_alive[2] = true;
        let before = g.meetings_held();
        g.repair(&tiny_alive, 64, &mut rng);
        assert_eq!(g.meetings_held() - before, 64);
        // Fewer than two live peers: nobody to meet, zero meetings.
        let solo = {
            let mut m = vec![false; g.len()];
            m[0] = true;
            m
        };
        let before = g.meetings_held();
        g.repair(&solo, 64, &mut rng);
        assert_eq!(g.meetings_held(), before);
    }

    #[test]
    fn query_with_down_replicas_still_resolves() {
        let (mut g, mut rng, mut net) = grid(96, 3, 7);
        let subject = PeerId(5);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(3),
            about: subject,
            round: 1,
        };
        g.insert(0, key, c, None, &mut net, &mut rng);
        // Take down 30% of peers (but keep the origin up).
        let mut alive = vec![true; g.len()];
        for (i, up) in alive.iter_mut().enumerate() {
            if i != 4 && rng.chance(0.3) {
                *up = false;
            }
        }
        let mut resolved = 0;
        for _ in 0..20 {
            let r = g.query(4, key, Some(&alive), &mut net, &mut rng);
            if r.is_resolved() {
                resolved += 1;
            }
        }
        assert!(resolved >= 15, "churn resilience too low: {resolved}/20");
    }

    #[test]
    fn down_origin_cannot_route() {
        let (g, mut rng, mut net) = grid(16, 2, 8);
        let key = crate::record::key_for_peer(PeerId(0), g.config().key_bits);
        let mut alive = vec![true; g.len()];
        alive[3] = false;
        assert!(g.route(3, key, Some(&alive), &mut net, &mut rng).is_none());
    }

    #[test]
    fn join_descends_to_depth_and_integrates() {
        let (mut g, mut rng, mut net) = grid(96, 4, 40);
        let n0 = g.len();
        let idx = g.join(&mut rng);
        assert_eq!(idx, n0);
        assert_eq!(g.len(), n0 + 1);
        assert_eq!(g.live_len(), n0 + 1);
        assert!(g.is_live(idx));
        // 96 peers over 16 leaves: the newcomer always finds partners
        // all the way down.
        assert_eq!(g.path(idx).len(), g.config().max_depth);
        g.check_invariants();
        // The newcomer is part of the responsible set for keys under its
        // path, and routing still lands on prefix-owners.
        for t in 200..260u32 {
            let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
            if let Some((peer, _, _)) = g.route(idx, key, None, &mut net, &mut rng) {
                assert!(g.path(peer).is_prefix_of_key(key, g.config().key_bits));
            }
        }
    }

    #[test]
    fn join_handoff_carries_stored_complaints() {
        let (mut g, mut rng, mut net) = grid(64, 3, 41);
        let subject = PeerId(23);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(4),
            about: subject,
            round: 9,
        };
        let receipt = g.insert(0, key, c, None, &mut net, &mut rng);
        assert!(receipt.replicas_reached >= 1);
        // Every admitted peer that becomes responsible for the key must
        // hold the complaint (replica handoff), so the query round-trip
        // keeps the "every answering replica has it" contract.
        for _ in 0..24 {
            g.join(&mut rng);
        }
        g.check_invariants();
        let result = g.query(5, key, None, &mut net, &mut rng);
        assert!(result.is_resolved());
        for (member, items) in &result.answers {
            assert!(
                items.contains(&c),
                "replica {member} (joined: {}) lost the complaint",
                *member >= 64
            );
        }
    }

    #[test]
    fn leave_removes_peer_from_directory_and_routing() {
        let (mut g, mut rng, mut net) = grid(96, 4, 42);
        let victim = 17;
        g.leave(victim);
        assert!(!g.is_live(victim));
        assert_eq!(g.live_len(), 95);
        assert_eq!(g.len(), 96, "dense indices are never reused");
        g.check_invariants();
        // Departed peers are neither responsible nor routable.
        for t in 0..120u32 {
            let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
            assert!(!g.responsible_peers(key).contains(&victim));
            if let Some((peer, _, _)) = g.route(3, key, None, &mut net, &mut rng) {
                assert_ne!(peer, victim, "routing landed on a departed peer");
            }
        }
        assert!(g
            .route(victim, Key::from_bits(0), None, &mut net, &mut rng)
            .is_none());
        assert_eq!(g.store_len(victim), 0);
    }

    #[test]
    #[should_panic(expected = "already departed")]
    fn double_leave_panics() {
        let (mut g, _, _) = grid(16, 2, 43);
        g.leave(3);
        g.leave(3);
    }

    #[test]
    fn join_leave_interleaving_keeps_invariants() {
        let (mut g, mut rng, _) = grid(48, 3, 44);
        for step in 0..60usize {
            if step % 3 == 0 && g.live_len() > 4 {
                // Leave a random live peer.
                let live: Vec<usize> = (0..g.len()).filter(|&i| g.is_live(i)).collect();
                let pick = live[rng.index(live.len())];
                g.leave(pick);
            } else {
                g.join(&mut rng);
            }
        }
        g.check_invariants();
        assert!(g.live_len() >= 4);
    }

    #[test]
    fn compact_reclaims_departed_slots_and_preserves_behaviour() {
        let (mut g, mut rng, mut net) = grid(96, 4, 45);
        let subject = PeerId(31);
        let key = crate::record::key_for_peer(subject, g.config().key_bits);
        let c = Complaint {
            by: PeerId(6),
            about: subject,
            round: 2,
        };
        g.insert(0, key, c, None, &mut net, &mut rng);
        for victim in [3usize, 17, 17 + 1, 40, 95] {
            g.leave(victim);
        }
        let responsible_before: Vec<BitPath> = g
            .responsible_peers(key)
            .iter()
            .map(|&i| g.path(i))
            .collect();
        let mapping = g.compact();
        // Mapping shape: departed slots are None, survivors are renumbered
        // densely in their old order.
        assert_eq!(mapping.len(), 96);
        assert!([3usize, 17, 18, 40, 95]
            .iter()
            .all(|&v| mapping[v].is_none()));
        let survivors: Vec<u32> = mapping.iter().filter_map(|m| *m).collect();
        assert_eq!(survivors, (0..91).collect::<Vec<u32>>());
        assert_eq!(g.len(), 91, "tombstones reclaimed");
        assert_eq!(g.live_len(), 91);
        g.check_invariants();
        // The same replica group (by path) serves the key, and the stored
        // complaint survived the renumbering.
        let responsible_after: Vec<BitPath> = g
            .responsible_peers(key)
            .iter()
            .map(|&i| g.path(i))
            .collect();
        assert_eq!(responsible_after, responsible_before);
        let result = g.query(1, key, None, &mut net, &mut rng);
        assert!(result.is_resolved());
        assert!(result.answers.iter().any(|(_, items)| items.contains(&c)));
        // Compacting an all-live grid is the identity.
        let idmap = g.compact();
        assert!(idmap.iter().enumerate().all(|(i, m)| *m == Some(i as u32)));
        assert_eq!(g.len(), 91);
    }

    /// The bounded-memory contract under long-running churn: with a
    /// compaction every cycle, the arena never grows past the live
    /// population plus one cycle's admissions — it does NOT accumulate
    /// the all-time join count (which reaches 10× the population here).
    #[test]
    fn long_churn_with_compaction_keeps_arena_bounded() {
        let (mut g, mut rng, mut net) = grid(64, 4, 46);
        let per_cycle = 16usize;
        for _ in 0..40 {
            for _ in 0..per_cycle {
                g.join(&mut rng);
            }
            for _ in 0..per_cycle {
                let live: Vec<usize> = (0..g.len()).filter(|&i| g.is_live(i)).collect();
                g.leave(live[rng.index(live.len())]);
            }
            let mapping = g.compact();
            assert_eq!(g.len(), g.live_len(), "no tombstones survive a compact");
            assert!(
                g.len() <= 64 + per_cycle,
                "arena grew past live + one cycle: {}",
                g.len()
            );
            assert_eq!(mapping.iter().filter(|m| m.is_some()).count(), g.len());
            // The ordinary churn response: a repair round against the
            // freshly compacted (renumbered) arena.
            g.repair(&vec![true; g.len()], g.len(), &mut rng);
        }
        g.check_invariants();
        // 640 joins later the overlay still routes.
        let mut resolved = 0;
        for t in 0..60u32 {
            let key = crate::record::key_for_peer(PeerId(t), g.config().key_bits);
            if g.route(0, key, None, &mut net, &mut rng).is_some() {
                resolved += 1;
            }
        }
        assert!(
            resolved >= 55,
            "routing degraded under churn: {resolved}/60"
        );
    }

    #[test]
    fn message_accounting() {
        let (mut g, mut rng, mut net) = grid(64, 4, 9);
        let key = crate::record::key_for_peer(PeerId(1), g.config().key_bits);
        let c = Complaint {
            by: PeerId(0),
            about: PeerId(1),
            round: 0,
        };
        g.insert(0, key, c, None, &mut net, &mut rng);
        g.query(5, key, None, &mut net, &mut rng);
        assert!(net.total_sent() > 0, "operations must send messages");
        assert!(net.sent("route") > 0 || net.sent("replicate") > 0);
    }

    #[test]
    fn config_for_population() {
        let cfg = PGridConfig::for_population(256, 4);
        assert_eq!(cfg.max_depth, 6); // 256/4 = 64 leaves = depth 6
        let cfg = PGridConfig::for_population(10, 100);
        assert_eq!(cfg.max_depth, 1); // clamped at 1
    }

    #[test]
    fn determinism_same_seed() {
        // Same seed ⇒ identical grids down to the reference arena: paths,
        // directory, every bucket's exact entry order and stamps. This
        // pins the in-place stalest-overwrite eviction (bucket order is
        // routing-irrelevant but must stay deterministic).
        let (mut a, mut rng_a, _) = grid(64, 4, 11);
        let (mut b, mut rng_b, _) = grid(64, 4, 11);
        for _ in 0..8 {
            a.join(&mut rng_a);
            b.join(&mut rng_b);
        }
        a.leave(5);
        b.leave(5);
        assert_eq!(a.compact(), b.compact());
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.refs, b.refs);
        assert_eq!(a.ref_len, b.ref_len);
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.subtree, b.subtree);
        assert_eq!(a.stores, b.stores);
        assert_eq!(a.clock, b.clock);
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_build_panics() {
        let mut rng = SimRng::new(0);
        PGrid::build(0, PGridConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "directory-arena limit")]
    fn oversized_depth_panics() {
        let mut rng = SimRng::new(0);
        let cfg = PGridConfig {
            key_bits: 32,
            max_depth: 24,
            ..PGridConfig::default()
        };
        PGrid::build(4, cfg, &mut rng);
    }
}
